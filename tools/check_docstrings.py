#!/usr/bin/env python
"""Docstring-coverage gate for selected packages (CI: the ``docs`` job).

Walks the given files/directories with ``ast`` (no imports, so it runs in
a bare interpreter) and requires a docstring on every public definition:

* the module itself;
* every public top-level function and class;
* every public method of a public class (``__init__`` and other dunders
  are exempt — the class docstring documents construction; private names
  and nested helpers are exempt too).

Exit status is the number of undocumented definitions, so CI fails on any
gap and the output names each one as ``path:line``.

Usage::

    python tools/check_docstrings.py src/repro/serving src/repro/llm
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Default coverage scope: the subsystems whose documentation this gate
#: protects.  Paths are relative to the repository root.
DEFAULT_TARGETS = (
    "src/repro/serving",
    "src/repro/observability",
    "src/repro/llm",
    "src/repro/fuzz",
    "src/repro/scheduling",
    "src/repro/gateway",
    "src/repro/loadtest",
    "src/repro/sharding",
    "src/repro/strategies",
    "src/repro/sweeps",
    "src/repro/adapters",
)

#: Where to look for packages that exist but are *not* gated, so the gap
#: is logged instead of silently ignored.
PACKAGE_ROOT = "src/repro"


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _missing_in_class(node: ast.ClassDef, path: Path) -> list[str]:
    problems = []
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_public(item.name):
            continue
        if ast.get_docstring(item) is None:
            problems.append(
                f"{path}:{item.lineno}: method "
                f"{node.name}.{item.name} lacks a docstring"
            )
    return problems


def check_file(path: Path) -> list[str]:
    """All docstring gaps in one source file, as ``path:line`` messages."""
    tree = ast.parse(path.read_text(), filename=str(path))
    problems = []
    if ast.get_docstring(tree) is None:
        problems.append(f"{path}:1: module lacks a docstring")
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(node.name) and ast.get_docstring(node) is None:
                problems.append(
                    f"{path}:{node.lineno}: function {node.name} "
                    f"lacks a docstring"
                )
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            if ast.get_docstring(node) is None:
                problems.append(
                    f"{path}:{node.lineno}: class {node.name} "
                    f"lacks a docstring"
                )
            problems.extend(_missing_in_class(node, path))
    return problems


def _log_skipped(targets: list[Path]) -> None:
    """Name each package under ``src/repro`` that the gate does not cover.

    A silently-ignored package is how coverage rots: a new subsystem lands,
    nobody adds it to ``DEFAULT_TARGETS``, and the gate keeps passing.
    Logging the skips makes the gap visible in every CI run.
    """
    root = Path(PACKAGE_ROOT)
    if not root.is_dir():
        return
    covered = {target.resolve() for target in targets}
    skipped = sorted(
        child
        for child in root.iterdir()
        if child.is_dir()
        and (child / "__init__.py").exists()
        and child.resolve() not in covered
    )
    for child in skipped:
        print(f"skipped (not gated): {child}")


def main(argv: list[str]) -> int:
    """Check every ``.py`` file under the given targets; return gap count."""
    targets = [Path(arg) for arg in argv] or [Path(t) for t in DEFAULT_TARGETS]
    files: list[Path] = []
    for target in targets:
        if target.is_dir():
            files.extend(sorted(target.rglob("*.py")))
        elif target.suffix == ".py":
            files.append(target)
        else:
            print(f"error: {target} is neither a directory nor a .py file")
            return 2
    _log_skipped(targets)
    problems = [problem for path in files for problem in check_file(path)]
    for problem in problems:
        print(problem)
    checked = len(files)
    if problems:
        print(f"\n{len(problems)} undocumented definitions in {checked} files")
    else:
        print(f"docstring coverage OK: {checked} files fully documented")
    return min(len(problems), 125)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

"""Ecosystem-facing estimator adapters (sktime-style, sktime optional).

The MultiCast pipeline drops into external backtesting suites through
:class:`MultiCastForecaster` — an sktime-flavoured estimator
(``fit``/``predict``, :class:`ForecastingHorizon`-like horizon handling,
``get_params``/``set_params``/``get_test_params``) built on the same
:class:`~repro.core.spec.ForecastSpec` surface as every other entry
point.  sktime itself is a *soft* dependency: nothing here imports it,
and sktime's own ``ForecastingHorizon`` objects are accepted by duck
typing when present.
"""

from repro.adapters.horizon import ForecastingHorizon, coerce_horizon
from repro.adapters.multicast import MultiCastForecaster

__all__ = ["ForecastingHorizon", "coerce_horizon", "MultiCastForecaster"]

"""A minimal, dependency-free ``ForecastingHorizon``.

sktime indexes forecasts by a ``ForecastingHorizon`` — a sorted set of
integer steps, either *relative* to the end of the training series
(``[1, 2, 3]`` = the next three timestamps) or *absolute* (positions on
the training index).  The adapter needs those semantics without
importing sktime, so this module reimplements the tiny subset used here;
:func:`coerce_horizon` also accepts sktime's own objects by duck typing.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.exceptions import ConfigError

__all__ = ["ForecastingHorizon", "coerce_horizon"]


class ForecastingHorizon:
    """A sorted tuple of integer forecast steps, relative or absolute.

    ``ForecastingHorizon([1, 2, 3])`` names the next three timestamps
    after the training cutoff; ``ForecastingHorizon([10, 11],
    is_relative=False)`` names absolute positions on the training index
    (resolved against the cutoff by :meth:`to_relative`).  A bare int
    ``h`` means the full range ``1..h`` — the Estimator-protocol
    convention, so adapter and baselines stay sweepable through one
    surface.
    """

    def __init__(self, values=1, is_relative: bool = True) -> None:
        if isinstance(values, (int, np.integer)):
            if values < 1:
                raise ConfigError(f"horizon must be >= 1, got {values}")
            steps = tuple(range(1, int(values) + 1)) if is_relative else (int(values),)
        elif isinstance(values, Iterable):
            steps = tuple(sorted(int(v) for v in values))
            if not steps:
                raise ConfigError("ForecastingHorizon needs at least one step")
            if len(set(steps)) != len(steps):
                raise ConfigError(f"duplicate horizon steps in {steps}")
        else:
            raise ConfigError(
                f"cannot build a ForecastingHorizon from {type(values).__name__}"
            )
        self._values = steps
        self._is_relative = bool(is_relative)

    @property
    def values(self) -> tuple[int, ...]:
        """The sorted steps."""
        return self._values

    @property
    def is_relative(self) -> bool:
        """Whether the steps count from the training cutoff."""
        return self._is_relative

    def to_relative(self, cutoff: int) -> "ForecastingHorizon":
        """This horizon as steps past ``cutoff`` (the training length)."""
        if self._is_relative:
            relative = self._values
        else:
            relative = tuple(v - int(cutoff) for v in self._values)
        bad = [v for v in relative if v < 1]
        if bad:
            raise ConfigError(
                f"horizon steps must land past the training cutoff "
                f"{cutoff}; offending relative steps: {bad}"
            )
        return ForecastingHorizon(relative, is_relative=True)

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self):
        return iter(self._values)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ForecastingHorizon)
            and self._values == other._values
            and self._is_relative == other._is_relative
        )

    def __repr__(self) -> str:
        return (
            f"ForecastingHorizon({list(self._values)}, "
            f"is_relative={self._is_relative})"
        )


def coerce_horizon(fh, cutoff: int) -> np.ndarray:
    """Resolve any horizon spelling to a sorted array of relative steps.

    Accepts an int (``h`` → ``1..h``), an iterable of steps, one of our
    :class:`ForecastingHorizon` objects, or a duck-typed sktime
    ``ForecastingHorizon`` (anything with ``to_relative``; converted via
    its public API, so the adapter works with sktime installed without
    importing it).
    """
    if isinstance(fh, ForecastingHorizon):
        return np.asarray(fh.to_relative(cutoff).values, dtype=int)
    if hasattr(fh, "to_relative") and hasattr(fh, "is_relative"):
        # Duck-typed sktime ForecastingHorizon.  Its to_relative wants the
        # cutoff as a pandas index value; for integer-indexed series the
        # training length works directly.
        try:
            relative = fh.to_relative(cutoff)
            steps = [int(v) for v in np.asarray(list(relative))]
        except Exception as error:  # pragma: no cover - sktime-specific
            raise ConfigError(
                f"could not resolve foreign ForecastingHorizon {fh!r}: {error}"
            ) from error
        return coerce_horizon(steps, cutoff)
    return np.asarray(
        ForecastingHorizon(fh).to_relative(cutoff).values, dtype=int
    )

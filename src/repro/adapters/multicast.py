"""The sktime-style MultiCast estimator adapter.

:class:`MultiCastForecaster` (adapter flavour — distinct from the core
pipeline class of the same name in :mod:`repro.core`) exposes the whole
MultiCast pipeline as a ``fit``/``predict`` estimator whose constructor
parameters are exactly the :class:`~repro.core.spec.ForecastSpec` knobs.
``predict`` builds the equivalent spec and runs it either through a
caller-supplied serving engine (``engine=``, a
:class:`~repro.serving.engine.ForecastEngine` or
:class:`~repro.sharding.engine.ShardedEngine`) or through the in-process
core forecaster; both paths are bit-identical under a fixed seed, so the
adapter's output equals a direct ``engine.forecast(spec)`` call on the
equivalent spec.
"""

from __future__ import annotations

import numpy as np

from repro.adapters.horizon import coerce_horizon
from repro.core import MultiCastForecaster as _CoreForecaster
from repro.core.estimator import BaseEstimator
from repro.core.spec import ForecastSpec
from repro.exceptions import DataError, FittingError

__all__ = ["MultiCastForecaster"]


class MultiCastForecaster(BaseEstimator):
    """MultiCast as an sktime-flavoured estimator.

    Constructor parameters mirror :class:`~repro.core.spec.ForecastSpec`
    one to one (plus ``engine``, an optional serving engine the requests
    are routed through).  ``fit`` stores the ``(n, d)`` history and the
    cutoff; ``predict`` accepts an int horizon (steps ``1..h``), an
    iterable of steps, or a (native or sktime) ``ForecastingHorizon``.
    sktime is never imported — the adapter round-trips without it.
    """

    _PARAMS = (
        "scheme",
        "num_digits",
        "num_samples",
        "model",
        "aggregation",
        "sax",
        "structured_constraint",
        "deseasonalize",
        "temperature",
        "max_context_tokens",
        "strategy",
        "patch_length",
        "seed",
        "execution",
        "engine",
    )
    _TEST_PARAMS = (
        {"model": "uniform-sim", "num_samples": 1, "num_digits": 2},
        {"model": "uniform-sim", "num_samples": 2, "scheme": "di"},
    )

    def __init__(
        self,
        *,
        scheme: str = "vi",
        num_digits: int = 3,
        num_samples: int = 5,
        model: str = "llama2-7b-sim",
        aggregation: str = "median",
        sax=None,
        structured_constraint: bool = True,
        deseasonalize=None,
        temperature: float | None = None,
        max_context_tokens: int = 4096,
        strategy: str = "default",
        patch_length: int = 6,
        seed: int = 0,
        execution: str = "batched",
        engine=None,
    ) -> None:
        self.scheme = scheme
        self.num_digits = num_digits
        self.num_samples = num_samples
        self.model = model
        self.aggregation = aggregation
        self.sax = sax
        self.structured_constraint = structured_constraint
        self.deseasonalize = deseasonalize
        self.temperature = temperature
        self.max_context_tokens = max_context_tokens
        self.strategy = strategy
        self.patch_length = patch_length
        self.seed = seed
        self.execution = execution
        self.engine = engine
        # Validate the pipeline knobs eagerly, sktime-style: a bad
        # parameter should fail at construction, not at predict time.
        self._template()
        self._history: np.ndarray | None = None
        self._cutoff: int | None = None

    def _template(self) -> ForecastSpec:
        """The unbound spec carrying every pipeline knob of this adapter."""
        return ForecastSpec(
            scheme=self.scheme,
            num_digits=self.num_digits,
            num_samples=self.num_samples,
            model=self.model,
            aggregation=self.aggregation,
            sax=self.sax,
            structured_constraint=self.structured_constraint,
            deseasonalize=self.deseasonalize,
            temperature=self.temperature,
            max_context_tokens=self.max_context_tokens,
            strategy=self.strategy,
            patch_length=self.patch_length,
            seed=self.seed,
            execution=self.execution,
        )

    @property
    def cutoff(self) -> int | None:
        """The training length (``None`` before ``fit``)."""
        return self._cutoff

    def fit(self, y, fh=None) -> "MultiCastForecaster":
        """Store the history; zero-shot, so there is nothing to train.

        ``fh`` is accepted for sktime signature compatibility and ignored
        (the horizon is resolved at :meth:`predict` time).
        """
        del fh
        values = np.asarray(y, dtype=float)
        if values.ndim == 1:
            values = values[:, None]
        if values.ndim != 2 or values.shape[0] < 1:
            raise DataError(
                f"expected a non-empty (n, d) history, got shape {values.shape}"
            )
        self._history = values
        self._cutoff = values.shape[0]
        return self

    def spec_for(self, fh) -> ForecastSpec:
        """The exact executable :class:`ForecastSpec` ``predict(fh)`` runs.

        Exposed so callers can pin bit-identity against a direct
        ``engine.forecast(spec)`` call.
        """
        steps = self._steps(fh)
        return self._template().with_series(
            self._history, horizon=int(steps.max())
        )

    def _steps(self, fh) -> np.ndarray:
        if self._history is None or self._cutoff is None:
            raise FittingError("MultiCastForecaster used before fit()")
        return coerce_horizon(fh, self._cutoff)

    def predict(self, fh) -> np.ndarray:
        """Point forecast at the requested steps, shape ``(len(fh), d)``.

        An int ``h`` means steps ``1..h`` (the Estimator-protocol
        convention); a ``ForecastingHorizon`` or iterable selects
        arbitrary future steps.  The request runs through ``engine`` when
        one was supplied, otherwise through the in-process core
        forecaster — the outputs are bit-identical.
        """
        steps = self._steps(fh)
        spec = self.spec_for(fh)
        if self.engine is not None:
            values = self.engine.forecast(spec).values
        else:
            values = _CoreForecaster().forecast(spec).values
        return np.asarray(values)[steps - 1]

"""Seed-reproducible adversarial case generation for the fuzz harness.

Every case is a plain-data :class:`FuzzCase` that serialises to JSON, so a
failing draw can be written to disk, replayed bit-for-bit, and pinned as a
regression test.  Generation is driven entirely by a
:class:`numpy.random.Generator` seeded from ``(run_seed, case_index)`` —
the same run seed always yields the same case sequence.

The value generators are deliberately adversarial: the menu leans on the
numeric edges where float64 affine maps break down (constant series at any
magnitude, spans near the subnormal floor, values near ``±1.8e308``,
single-timestamp histories) rather than on well-behaved random walks.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

import numpy as np

__all__ = [
    "FAMILIES",
    "SCALERS",
    "CODECS",
    "CORRUPTIONS",
    "FuzzCase",
    "generate_case",
]

#: The eight property families the harness checks (see package docstring).
FAMILIES = (
    "round_trip",
    "mux_identity",
    "constraint_soundness",
    "decode_equivalence",
    "sched_equivalence",
    "sharded_equivalence",
    "decomposition_roundtrip",
    "strategy_equivalence",
)

#: Scaler kinds fuzzed by the ``round_trip`` family.
SCALERS = ("fixed", "percentile", "zscore", "minmax")

#: Cell codecs: raw digits, and SAX with each alphabet kind.
CODECS = ("digit", "sax-alphabetical", "sax-digital")

#: Stream corruption modes applied before demultiplexing.
CORRUPTIONS = ("none", "truncate", "separator")

_SCHEMES = ("di", "vi", "vc", "bi")

# Constant / magnitude menu: zero, units, tiny, huge, subnormal, near-max.
_MAGNITUDES = (
    0.0,
    1.0,
    -1.0,
    1e-9,
    -273.15,
    1e9,
    -1e12,
    1e300,
    -1e300,
    5e-324,
    1.5e308,
    -1.5e308,
)

_DIM_CHOICES = (1, 1, 2, 3, 8, 12)
_STEP_CHOICES = (1, 2, 4, 5, 16, 40)
_DIGIT_CHOICES = (1, 2, 3, 6)
_SEGMENT_CHOICES = (1, 2, 5)


@dataclass
class FuzzCase:
    """One fully-specified fuzz draw: inputs plus every pipeline knob.

    ``values`` always carries the raw ``(n, d)`` float series; families
    that operate on integer code matrices derive codes from it
    deterministically (see :func:`repro.fuzz.properties.codes_for`).
    """

    family: str
    scheme: str
    codec: str
    scaler: str
    num_digits: int
    alphabet_size: int
    segment_length: int
    corruption: str
    cut: float
    seed: int
    values: list[list[float]]

    @property
    def num_steps(self) -> int:
        """Number of timestamps ``n`` in the input series."""
        return len(self.values)

    @property
    def num_dims(self) -> int:
        """Number of dimensions ``d`` in the input series."""
        return len(self.values[0]) if self.values else 0

    def describe(self) -> str:
        """One-line label used in reports and repro file names."""
        return (
            f"{self.family}/{self.scheme}/{self.codec}/{self.scaler}"
            f" n={self.num_steps} d={self.num_dims} b={self.num_digits}"
            f" a={self.alphabet_size} w={self.segment_length}"
            f" corruption={self.corruption}"
        )

    def to_json(self) -> str:
        """Serialise the case as a JSON document."""
        return json.dumps(asdict(self), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FuzzCase":
        """Rebuild a case from :meth:`to_json` output."""
        return cls(**json.loads(text))


def _column(rng: np.random.Generator, n: int) -> list[float]:
    """One adversarial length-``n`` series drawn from the generator menu."""
    kind = rng.integers(0, 8)
    if kind == 0:  # constant at an adversarial magnitude
        c = float(rng.choice(_MAGNITUDES))
        return [c] * n
    if kind == 1:  # near-zero span around an adversarial magnitude
        base = float(rng.choice(_MAGNITUDES))
        eps = float(rng.choice((5e-324, 1e-300, 1e-15)))
        return [base + (eps if i % 2 else 0.0) for i in range(n)]
    if kind == 2:  # linear ramp between two menu magnitudes
        a = float(rng.choice(_MAGNITUDES))
        b = float(rng.choice(_MAGNITUDES))
        if n == 1:
            return [a]
        return [a + (b - a) * i / (n - 1) for i in range(n)]
    if kind == 3:  # small random walk
        steps = rng.standard_normal(n)
        return list(np.cumsum(steps).astype(float))
    if kind == 4:  # one extreme spike in an otherwise tame series
        col = list(rng.standard_normal(n).astype(float))
        col[int(rng.integers(0, n))] = float(rng.choice(_MAGNITUDES))
        return col
    if kind == 5:  # alternation between two extremes
        a = float(rng.choice(_MAGNITUDES))
        b = float(rng.choice(_MAGNITUDES))
        return [a if i % 2 == 0 else b for i in range(n)]
    if kind == 6:  # subnormal territory
        return list((rng.standard_normal(n) * 1e-310).astype(float))
    # plain scaled gaussian, magnitude varied over many decades
    scale = 10.0 ** float(rng.integers(-12, 13))
    return list((rng.standard_normal(n) * scale).astype(float))


def generate_case(
    rng: np.random.Generator, family: str | None = None
) -> FuzzCase:
    """Draw one :class:`FuzzCase` from ``rng`` (optionally pinning a family)."""
    if family is None:
        family = str(rng.choice(FAMILIES))
    if family not in FAMILIES:
        raise ValueError(f"unknown fuzz family {family!r}; choose from {FAMILIES}")
    codec = str(rng.choice(CODECS))
    if codec == "sax-alphabetical":
        alphabet_size = int(rng.choice((2, 3, 5, 26)))
    else:
        alphabet_size = int(rng.choice((2, 3, 5, 10)))
    n = int(rng.choice(_STEP_CHOICES))
    d = int(rng.choice(_DIM_CHOICES))
    columns = [_column(rng, n) for _ in range(d)]
    return FuzzCase(
        family=family,
        scheme=str(rng.choice(_SCHEMES)),
        codec=codec,
        scaler=str(rng.choice(SCALERS)),
        num_digits=int(rng.choice(_DIGIT_CHOICES)),
        alphabet_size=alphabet_size,
        segment_length=int(rng.choice(_SEGMENT_CHOICES)),
        corruption=str(rng.choice(CORRUPTIONS)),
        cut=float(rng.uniform(0.0, 1.0)),
        seed=int(rng.integers(0, 2**31)),
        values=[[columns[k][t] for k in range(d)] for t in range(n)],
    )

"""The eight property families the fuzz harness checks.

Every check takes a :class:`~repro.fuzz.generators.FuzzCase` and returns
``None`` on success or a human-readable failure description.  A property
failure means the *library* broke its contract — adversarial inputs are
expected; NaN codes, silent collapse, crashes, or lossy round-trips are
not.  Scalers may refuse an input with a clean
:class:`~repro.exceptions.ScalingError`, but only when its magnitudes are
genuinely beyond what a float64 affine map can represent; refusing a tame
input is itself a failure.

The ``decode_equivalence`` family pins the batched-decoding contract: for
random prompts, constraints, per-stream budgets, and every registered
simulated model, lockstep :class:`~repro.llm.batch.BatchedDecoder` output
must equal per-stream sequential decoding **bit for bit** — same tokens,
same log-probs, float equality, no tolerance.  ``sched_equivalence``
extends the same contract across requests: the shared
:class:`~repro.scheduling.ContinuousScheduler` must reproduce standalone
per-request batched output exactly, whatever the interleaving.
``sharded_equivalence`` extends it across *processes*: a
:class:`~repro.sharding.ShardedEngine` with 1, 2 or 4 decode workers must
reproduce the in-process engine's forecast values, samples, and
demultiplexed row counts exactly under a fixed seed.

``decomposition_roundtrip`` pins the classical-decomposition contract on
adversarial series: for finite input either the fit succeeds with finite
components that recombine to the input at ulp tolerance (and a zero-sum
seasonal profile), or it refuses with a typed error — and refusing a tame
input is a failure; ``estimate_period`` must never crash on finite input.
``strategy_equivalence`` pins the prompt-strategy determinism contract:
every registered strategy must produce bit-identical forecasts across
``batched`` vs ``continuous`` execution and cold vs warm ingest-state
caches.
"""

from __future__ import annotations

import numpy as np

from repro.core.multiplex import Multiplexer, SaxSymbolCodec, get_multiplexer
from repro.encoding.tokenizer import SEPARATOR, DigitCodec
from repro.exceptions import ReproError, ScalingError
from repro.fuzz.generators import FuzzCase
from repro.llm.constraints import PeriodicPatternConstraint
from repro.sax.encoder import SaxAlphabet, SaxEncoder
from repro.sax.paa import num_segments
from repro.scaling.scalers import (
    FixedDigitScaler,
    MinMaxScaler,
    PercentileScaler,
    ZScoreScaler,
)

__all__ = ["check_case", "codes_for", "make_codec"]

#: Inputs whose magnitudes stay below this are "tame": a scaler must
#: handle them without refusing (float64 has ample headroom at 1e100).
_TAME_MAGNITUDE = 1e100

#: Center-to-span ratio beyond which SAX decode→encode idempotence is
#: not asserted: reconstructing ``mean + level*std`` and re-centering
#: cancels catastrophically once the offset dwarfs the spread.
_SAX_CANCELLATION_RATIO = 1e12


def make_codec(case: FuzzCase):
    """The cell codec a case specifies (digit or SAX symbol)."""
    if case.codec == "digit":
        return DigitCodec(case.num_digits)
    kind = case.codec.split("-", 1)[1]
    return SaxSymbolCodec(SaxAlphabet.of_kind(kind, case.alphabet_size))


def codes_for(case: FuzzCase) -> np.ndarray:
    """A deterministic in-range ``(n, d)`` code matrix for a case."""
    codec = make_codec(case)
    rng = np.random.default_rng(case.seed)
    return rng.integers(
        0, codec.max_value + 1, size=(case.num_steps, case.num_dims), dtype=np.int64
    )


def check_case(case: FuzzCase) -> str | None:
    """Run the case's property family; ``None`` on success, else a reason."""
    try:
        if case.family == "round_trip":
            return _check_round_trip(case)
        if case.family == "mux_identity":
            return _check_mux_identity(case)
        if case.family == "constraint_soundness":
            return _check_constraint_soundness(case)
        if case.family == "decode_equivalence":
            return _check_decode_equivalence(case)
        if case.family == "sched_equivalence":
            return _check_sched_equivalence(case)
        if case.family == "sharded_equivalence":
            return _check_sharded_equivalence(case)
        if case.family == "decomposition_roundtrip":
            return _check_decomposition_roundtrip(case)
        if case.family == "strategy_equivalence":
            return _check_strategy_equivalence(case)
    except ReproError as exc:  # any unexpected library error is a finding
        return f"unexpected {type(exc).__name__}: {exc}"
    except Exception as exc:  # hard crash (numpy/stdlib) is always a finding
        return f"crash {type(exc).__name__}: {exc}"
    return f"unknown fuzz family {case.family!r}"


# -- family 1: scaler / SAX round trips ---------------------------------------


def _fixed_tolerance(
    scaler: FixedDigitScaler, col: np.ndarray, inv: np.ndarray
) -> float:
    """Round-trip bound: half a quantization step plus float rounding.

    The float term scales with the fitted *span* (``resolution * max_int``),
    not just the values: ``inverse_transform`` sums terms of span magnitude,
    so a mathematically-exact half-step error can exceed ``resolution / 2``
    by a few ulp of the span.
    """
    span = scaler.resolution * scaler.max_int
    return 0.5 * scaler.resolution + 8.0 * float(
        np.spacing(max(span, np.abs(col).max(), np.abs(inv).max(), 1e-300))
    )


def _make_scaler(case: FuzzCase):
    if case.scaler == "fixed":
        return FixedDigitScaler(num_digits=case.num_digits)
    if case.scaler == "percentile":
        return PercentileScaler()
    if case.scaler == "zscore":
        return ZScoreScaler()
    return MinMaxScaler()


def _check_fixed_column(case: FuzzCase, col: np.ndarray) -> str | None:
    scaler = FixedDigitScaler(num_digits=case.num_digits)
    tame = float(np.abs(col).max()) <= _TAME_MAGNITUDE
    try:
        codes = scaler.fit(col).transform(col)
    except ScalingError as exc:
        if tame:
            return f"FixedDigitScaler refused a tame series: {exc}"
        return None
    if not np.issubdtype(codes.dtype, np.integer):
        return f"FixedDigitScaler produced non-integer codes ({codes.dtype})"
    if codes.min() < 0 or codes.max() > scaler.max_int:
        return (
            f"FixedDigitScaler codes outside [0, {scaler.max_int}]: "
            f"[{codes.min()}, {codes.max()}]"
        )
    inv = scaler.inverse_transform(codes)
    if not np.isfinite(inv).all():
        return "FixedDigitScaler inverse produced non-finite values"
    tol = _fixed_tolerance(scaler, col, inv)
    err = float(np.abs(col - inv).max())
    if err > tol:
        return (
            f"FixedDigitScaler round-trip error {err:.6g} exceeds "
            f"resolution tolerance {tol:.6g}"
        )
    return None


def _check_float_scaler_column(case: FuzzCase, col: np.ndarray) -> str | None:
    scaler = _make_scaler(case)
    tame = float(np.abs(col).max()) <= _TAME_MAGNITUDE
    try:
        y = scaler.fit_transform(col)
    except ScalingError as exc:
        if tame:
            return f"{type(scaler).__name__} refused a tame series: {exc}"
        return None
    if not np.isfinite(y).all():
        return f"{type(scaler).__name__} produced non-finite transformed values"
    inv = scaler.inverse_transform(y)
    if not np.isfinite(inv).all():
        return f"{type(scaler).__name__} inverse produced non-finite values"
    scale = max(float(np.abs(col).max()), 1.0)
    err = float(np.abs(col - inv).max())
    if err > scale * 1e-9:
        return (
            f"{type(scaler).__name__} round-trip error {err:.6g} "
            f"exceeds rtol 1e-9 at scale {scale:.6g}"
        )
    return None


def _check_sax_column(case: FuzzCase, col: np.ndarray) -> str | None:
    kind = case.codec.split("-", 1)[1]
    alphabet = SaxAlphabet.of_kind(kind, case.alphabet_size)
    encoder = SaxEncoder(case.segment_length, alphabet)
    tame = float(np.abs(col).max()) <= _TAME_MAGNITUDE
    try:
        encoder.fit(col)
        word = encoder.encode(col)
    except ScalingError as exc:
        if tame:
            return f"SaxEncoder refused a tame series: {exc}"
        return None
    n = col.size
    if len(word) != num_segments(n, case.segment_length):
        return (
            f"SAX word length {len(word)} != "
            f"{num_segments(n, case.segment_length)} segments"
        )
    decoded = encoder.decode(word, n)
    if not np.isfinite(decoded).all():
        return "SAX decode produced non-finite values"
    span = float(col.max() - col.min())
    center = float(np.abs(col).max())
    if span == 0.0 or center <= span * _SAX_CANCELLATION_RATIO:
        if encoder.encode(decoded) != word:
            return "SAX decode→encode is not idempotent"
    return None


def _check_round_trip(case: FuzzCase) -> str | None:
    arr = np.asarray(case.values, dtype=float)
    per_column_codes: list[np.ndarray] = []
    scalers: list[FixedDigitScaler] = []
    for k in range(case.num_dims):
        col = arr[:, k]
        if case.codec == "digit":
            failure = (
                _check_fixed_column(case, col)
                if case.scaler == "fixed"
                else _check_float_scaler_column(case, col)
            )
        else:
            failure = _check_sax_column(case, col)
            if failure is None and case.scaler != "fixed":
                failure = _check_float_scaler_column(case, col)
        if failure is not None:
            return f"dim {k}: {failure}"
        if case.scaler == "fixed" and case.codec == "digit":
            scaler = FixedDigitScaler(num_digits=case.num_digits)
            try:
                per_column_codes.append(scaler.fit(col).transform(col))
                scalers.append(scaler)
            except ScalingError:
                per_column_codes = []
                break
    if case.scaler == "fixed" and case.codec == "digit" and per_column_codes:
        # Full chain: scale → mux → demux → descale across all dimensions.
        codes = np.stack(per_column_codes, axis=1)
        codec = DigitCodec(case.num_digits)
        mux = get_multiplexer(case.scheme)
        recovered = mux.demux(mux.mux(codes, codec), case.num_dims, codec)
        if not np.array_equal(recovered, codes):
            return "full-chain mux/demux changed the code matrix"
        for k, scaler in enumerate(scalers):
            inv = scaler.inverse_transform(recovered[:, k])
            tol = _fixed_tolerance(scaler, arr[:, k], inv)
            if float(np.abs(arr[:, k] - inv).max()) > tol:
                return f"dim {k}: full-chain round-trip exceeds resolution"
    return None


# -- family 2: demux ∘ mux identity -------------------------------------------


def _boundary_index(mux: Multiplexer, row: int, num_dims: int, width: int) -> int:
    """Token index where ``row`` starts inside a muxed stream."""
    return row * mux.tokens_per_timestamp(num_dims, width)


def _check_mux_identity(case: FuzzCase) -> str | None:
    codec = make_codec(case)
    codes = codes_for(case)
    d = case.num_dims
    mux = get_multiplexer(case.scheme)
    stream = mux.mux(codes, codec)

    for pad in (False, True):
        recovered = mux.demux(stream, d, codec, pad_incomplete=pad)
        if not np.array_equal(recovered, codes):
            return f"demux(mux(x), pad_incomplete={pad}) != x"

    # Row-offset continuation: parsing the stream's tail from row r must
    # agree with parsing everything and slicing — the contract generated
    # continuations rely on (BI resumes the history's rotation mid-way).
    r = min(case.num_steps, int(round(case.cut * case.num_steps)))
    tail = stream[_boundary_index(mux, r, d, codec.num_digits) :]
    sliced = mux.demux(tail, d, codec, row_offset=r)
    if not np.array_equal(sliced, codes[r:]):
        return f"demux(tail, row_offset={r}) != full demux sliced at {r}"

    if case.corruption == "truncate":
        cut = min(len(stream), int(round(case.cut * len(stream))))
        prefix = mux.demux(stream[:cut], d, codec)
        if prefix.shape[1] != d or prefix.shape[0] > case.num_steps:
            return f"truncated demux shape {prefix.shape} out of bounds"
        if not np.array_equal(prefix, codes[: prefix.shape[0]]):
            return "truncated demux rows are not an exact prefix"
        lenient = mux.demux(stream[:cut], d, codec, pad_incomplete=True)
        if lenient.shape[0] < prefix.shape[0] or (
            prefix.shape[0]
            and not np.array_equal(lenient[: prefix.shape[0]], prefix)
        ):
            return "pad_incomplete=True disagrees with drop mode on full rows"
    elif case.corruption == "separator":
        separators = [i for i, t in enumerate(stream) if t == SEPARATOR]
        if separators:
            at = separators[
                min(len(separators) - 1, int(round(case.cut * (len(separators) - 1))))
            ]
            if case.seed % 2:  # doubled separator: an empty group, skipped
                corrupted = stream[: at + 1] + [SEPARATOR] + stream[at + 1 :]
                if not np.array_equal(mux.demux(corrupted, d, codec), codes):
                    return "doubled separator changed the demuxed matrix"
            else:  # deleted separator: two groups merge; must stay parseable
                corrupted = stream[:at] + stream[at + 1 :]
                merged = mux.demux(corrupted, d, codec)
                if merged.shape[1] != d:
                    return f"separator-deleted demux shape {merged.shape}"
                if merged.size and (
                    merged.min() < 0 or merged.max() > codec.max_value
                ):
                    return "separator-deleted demux left the code range"
    return None


# -- family 3: constraint-pattern soundness -----------------------------------


def _check_constraint_soundness(case: FuzzCase) -> str | None:
    codec = make_codec(case)
    width = codec.num_digits
    d = case.num_dims
    if isinstance(codec, DigitCodec):
        value_tokens = [str(i) for i in range(10)]
    else:
        value_tokens = list(codec.alphabet.symbols)
    sep_id = len(value_tokens)
    mux = get_multiplexer(case.scheme)
    pattern = mux.constraint_pattern(
        d, width, frozenset(range(sep_id)), sep_id
    )
    constraint = PeriodicPatternConstraint(pattern)
    period = constraint.period
    rng = np.random.default_rng(case.seed)

    length = int(rng.integers(0, max(1, case.num_steps) * period + 1))
    ids = [
        int(rng.choice(sorted(constraint.allowed_at(p)))) for p in range(length)
    ]
    if not constraint.admits(ids):
        return "constraint.admits rejects a stream drawn from allowed_at"
    tokens = [SEPARATOR if i == sep_id else value_tokens[i] for i in ids]

    rows = mux.demux(tokens, d, codec)  # must parse without error
    complete_periods = (length + 1) // period
    expected = complete_periods // d if case.scheme == "vc" else complete_periods
    if rows.shape != (expected, d):
        return (
            f"grammar-admitted stream of {length} tokens demuxed to "
            f"{rows.shape}, expected ({expected}, {d})"
        )
    if rows.size and (rows.min() < 0 or rows.max() > codec.max_value):
        return "grammar-admitted stream demuxed outside the code range"

    # The unconstrained ablation: any digits/symbols + separators mix must
    # still demux leniently without raising.
    loose_length = int(rng.integers(0, 4 * period + 1))
    loose_ids = rng.integers(0, sep_id + 1, size=loose_length)
    loose = [SEPARATOR if i == sep_id else value_tokens[i] for i in loose_ids]
    lenient = mux.demux(loose, d, codec, pad_incomplete=True)
    if lenient.shape[1] != d:
        return f"lenient demux shape {lenient.shape} has wrong dimension count"
    if lenient.size and (lenient.min() < 0 or lenient.max() > codec.max_value):
        return "lenient demux left the code range"
    return None


# -- family 4: batched = sequential decoding ----------------------------------


def _check_decode_equivalence(case: FuzzCase) -> str | None:
    """Batched lockstep decoding must match per-stream decoding bit for bit.

    Draws a random prompt over the case's vocabulary, a grammar constraint
    half the time, 2–4 streams with heterogeneous token budgets, and one
    registered simulated model — then decodes the ensemble once through
    :meth:`~repro.llm.simulated.SimulatedLLM.generate_batch` and once
    stream-by-stream through :meth:`~repro.llm.simulated.SimulatedLLM.generate`
    with the same seed-derived generators, asserting exact equality of
    tokens *and* log-probs.
    """
    from repro.llm.sampling import child_seeds
    from repro.llm.simulated import available_models, get_model

    codec = make_codec(case)
    width = codec.num_digits
    d = case.num_dims
    if isinstance(codec, DigitCodec):
        num_values = 10
    else:
        num_values = len(codec.alphabet.symbols)
    sep_id = num_values
    vocab_size = num_values + 1

    rng = np.random.default_rng(case.seed)
    models = available_models()
    model = get_model(
        models[case.seed % len(models)], vocab_size=vocab_size
    )

    constraint = None
    if case.seed % 2:
        mux = get_multiplexer(case.scheme)
        pattern = mux.constraint_pattern(
            d, width, frozenset(range(num_values)), sep_id
        )
        constraint = PeriodicPatternConstraint(pattern)

    prompt_length = int(rng.integers(1, min(60, 4 * max(1, case.num_steps)) + 1))
    prompt = [int(t) for t in rng.integers(0, vocab_size, size=prompt_length)]
    num_streams = 2 + case.seed % 3
    budgets = [int(b) for b in rng.integers(0, 13, size=num_streams)]
    seeds = child_seeds(rng, num_streams)

    session = model.prefill(prompt)
    decoder = model.generate_batch(
        prompt,
        budgets,
        [np.random.default_rng(s) for s in seeds],
        constraint=constraint,
        session=session,
    )
    for index, (seed, budget) in enumerate(zip(seeds, budgets)):
        expected = model.generate(
            prompt,
            budget,
            np.random.default_rng(seed),
            constraint=constraint,
            session=session,
        )
        got = decoder.results[index]
        if got is None:
            return f"stream {index}: batched decode returned no result"
        if got.tokens != expected.tokens:
            return (
                f"stream {index}: batched tokens {got.tokens[:8]}... "
                f"!= sequential {expected.tokens[:8]}..."
            )
        if got.log_probs != expected.log_probs:
            return f"stream {index}: batched log-probs differ from sequential"
    return None


# -- family 5: cross-request scheduler equivalence ----------------------------


def _check_sched_equivalence(case: FuzzCase) -> str | None:
    """Continuous scheduling must match per-request batched decoding bit
    for bit.

    Draws 2–5 concurrent requests over the case's vocabulary — some
    sharing one prompt (exercising the radix tree's fork/extend paths),
    with heterogeneous stream counts, token budgets, and model presets —
    submits them to one :class:`~repro.scheduling.ContinuousScheduler`
    from multiple threads under a random admission cap, and asserts every
    request's tokens *and* log-probs equal a standalone
    :meth:`~repro.llm.simulated.SimulatedLLM.generate_batch` run of the
    same request (float equality, no tolerance).
    """
    import threading

    from repro.llm.sampling import child_seeds
    from repro.llm.simulated import available_models, get_model
    from repro.scheduling import ContinuousScheduler, RadixPrefillTree

    codec = make_codec(case)
    width = codec.num_digits
    d = case.num_dims
    if isinstance(codec, DigitCodec):
        num_values = 10
    else:
        num_values = len(codec.alphabet.symbols)
    sep_id = num_values
    vocab_size = num_values + 1

    rng = np.random.default_rng(case.seed)
    constraint = None
    if case.seed % 2:
        mux = get_multiplexer(case.scheme)
        pattern = mux.constraint_pattern(
            d, width, frozenset(range(num_values)), sep_id
        )
        constraint = PeriodicPatternConstraint(pattern)

    presets = available_models()
    num_requests = int(rng.integers(2, 6))
    prompt_pool = [
        [int(t) for t in rng.integers(0, vocab_size, size=int(rng.integers(1, 48)))]
        for _ in range(max(1, num_requests - 1))
    ]
    requests = []
    for index in range(num_requests):
        num_streams = int(rng.integers(1, 4))
        requests.append(
            {
                "preset": presets[int(rng.integers(0, len(presets)))],
                "prompt": prompt_pool[int(rng.integers(0, len(prompt_pool)))],
                "budgets": [int(b) for b in rng.integers(0, 11, size=num_streams)],
                "seeds": child_seeds(rng, num_streams),
            }
        )

    expected = []
    for req in requests:
        llm = get_model(req["preset"], vocab_size=vocab_size)
        decoder = llm.generate_batch(
            req["prompt"],
            req["budgets"],
            [np.random.default_rng(s) for s in req["seeds"]],
            constraint=constraint,
        )
        expected.append(decoder.results)

    scheduler = ContinuousScheduler(
        max_resident_streams=int(rng.integers(1, 7)),
        prefill_tree=RadixPrefillTree(),
    )
    handles: list = [None] * num_requests
    errors: list = []

    def submit(index: int) -> None:
        req = requests[index]
        try:
            handles[index] = scheduler.submit(
                get_model(req["preset"], vocab_size=vocab_size),
                req["prompt"],
                req["budgets"],
                [np.random.default_rng(s) for s in req["seeds"]],
                constraint=constraint,
            )
        except Exception as exc:  # surfaced as a finding below
            errors.append(f"request {index}: submit raised {exc!r}")

    threads = [
        threading.Thread(target=submit, args=(index,))
        for index in range(num_requests)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    try:
        if errors:
            return errors[0]
        for index, handle in enumerate(handles):
            got = handle.result(timeout=120)
            for stream, (want, have) in enumerate(zip(expected[index], got)):
                if have is None:
                    return (
                        f"request {index} stream {stream}: scheduler "
                        "returned no result"
                    )
                if have.tokens != want.tokens:
                    return (
                        f"request {index} stream {stream}: scheduled tokens "
                        f"{have.tokens[:8]}... != batched {want.tokens[:8]}..."
                    )
                if have.log_probs != want.log_probs:
                    return (
                        f"request {index} stream {stream}: scheduled "
                        "log-probs differ from batched"
                    )
    finally:
        scheduler.close()
    return None


# -- family 6: multi-process sharded engine equivalence -----------------------

#: Shard counts every ``sharded_equivalence`` case is checked against.
_SHARD_COUNTS = (1, 2, 4)

#: Module-cached engines, keyed by shard count (0 = the in-process
#: baseline).  Worker processes cost hundreds of milliseconds to spawn, so
#: they are shared across fuzz cases and closed once at interpreter exit;
#: every request runs with ``use_cache=False`` so no result state leaks
#: between cases.
_shard_engines: dict = {}


def _close_shard_engines() -> None:
    """atexit hook: shut down every cached fuzz engine."""
    for engine in list(_shard_engines.values()):
        engine.close()
    _shard_engines.clear()


def _shard_engine(num_shards: int):
    """The cached engine for ``num_shards`` (0 = in-process), lazily built."""
    import atexit

    from repro.serving.engine import ForecastEngine
    from repro.sharding import ShardedEngine

    engine = _shard_engines.get(num_shards)
    if engine is None:
        if not _shard_engines:
            atexit.register(_close_shard_engines)
        if num_shards == 0:
            engine = ForecastEngine(num_workers=2)
        else:
            engine = ShardedEngine(num_shards=num_shards, worker_threads=2)
        _shard_engines[num_shards] = engine
    return engine


def _check_sharded_equivalence(case: FuzzCase) -> str | None:
    """Multi-process sharding must not change a single forecast bit.

    Derives a tame request from the case's seed and scheme (adversarial
    magnitudes belong to ``round_trip``; this family pins the *serving*
    contract, so the pipeline itself must succeed), runs it through the
    in-process :class:`~repro.serving.engine.ForecastEngine` and through
    :class:`~repro.sharding.ShardedEngine` instances with 1, 2 and 4
    decode worker processes, and asserts the forecast values, the sample
    ensemble, and the demultiplexed row counts are identical across all
    four — float equality, no tolerance.  Execution alternates between
    ``"batched"`` and ``"continuous"`` by seed parity so both in-worker
    decode paths are covered.
    """
    from repro.core.config import MultiCastConfig
    from repro.serving.request import ForecastRequest

    rng = np.random.default_rng(case.seed)
    n = int(rng.integers(8, 24))
    d = int(rng.integers(1, 4))
    history = np.cumsum(rng.standard_normal((n, d)), axis=0)
    request = ForecastRequest(
        history=history,
        horizon=int(rng.integers(2, 6)),
        config=MultiCastConfig(
            scheme=case.scheme,
            num_digits=min(case.num_digits, 3),
            num_samples=int(rng.integers(2, 4)),
            seed=int(rng.integers(0, 2**31)),
        ),
        use_cache=False,
        name=f"fuzz-sharded-{case.seed}",
        execution="batched" if case.seed % 2 == 0 else "continuous",
    )

    baseline = _shard_engine(0).forecast(request)
    if not baseline.ok:
        return f"in-process engine failed: {baseline.error}"
    for num_shards in _SHARD_COUNTS:
        response = _shard_engine(num_shards).forecast(request)
        if not response.ok:
            return f"{num_shards}-shard engine failed: {response.error}"
        if response.output.samples.shape != baseline.output.samples.shape:
            return (
                f"{num_shards}-shard demux row count "
                f"{response.output.samples.shape} != in-process "
                f"{baseline.output.samples.shape}"
            )
        if not np.array_equal(response.output.values, baseline.output.values):
            return f"{num_shards}-shard forecast values differ from in-process"
        if not np.array_equal(response.output.samples, baseline.output.samples):
            return f"{num_shards}-shard sample ensemble differs from in-process"
    return None


# -- family 7: classical decomposition round trip ------------------------------


def _check_decomposition_roundtrip(case: FuzzCase) -> str | None:
    """Decomposition must round-trip at ulp tolerance or refuse cleanly.

    Each dimension of the case's adversarial series is fit with a
    seed-derived period.  Finite input must either decompose into finite
    components whose sum matches the input at ulp-scaled tolerance (with a
    zero-sum seasonal profile), or raise a typed
    :class:`~repro.exceptions.DataError` — and refusing a *tame* series
    (magnitude below 1e100) that is long enough for the period is itself a
    failure.  Non-finite input must always raise the typed error, and
    :func:`~repro.decomposition.estimate_period` must never crash on
    finite input of any magnitude.
    """
    from repro.decomposition import ClassicalDecomposition, estimate_period
    from repro.exceptions import DataError, FittingError

    arr = np.asarray(case.values, dtype=float)
    period = 2 + case.seed % 7
    n = case.num_steps
    for k in range(case.num_dims):
        col = arr[:, k]
        finite = bool(np.isfinite(col).all())
        if finite and n >= 8:
            try:
                detected = estimate_period(col)
            except FittingError:
                return f"dim {k}: estimate_period refused a finite series"
            if not isinstance(detected, int) or detected < 1:
                return f"dim {k}: estimate_period returned {detected!r}"

        try:
            fit = ClassicalDecomposition.fit(col, period)
        except DataError:
            if not finite or n < 2 * period:
                continue  # the typed refusal is the contract here
            if float(np.abs(col).max()) <= _TAME_MAGNITUDE:
                return (
                    f"dim {k}: decomposition refused a tame series "
                    f"(period {period}, n={n})"
                )
            continue  # extreme magnitudes may refuse cleanly
        if not finite:
            return f"dim {k}: decomposition accepted non-finite input"
        if n < 2 * period:
            return f"dim {k}: decomposition accepted n={n} < 2x period {period}"

        seasonal = fit.seasonal_at(np.arange(n))
        components = np.concatenate([fit.trend, seasonal, fit.residual])
        if not np.isfinite(components).all():
            return f"dim {k}: decomposition produced non-finite components"
        scale = max(float(np.abs(col).max()), 1.0)
        profile_sum = abs(float(fit.seasonal_profile.sum()))
        if profile_sum > 64 * np.finfo(float).eps * scale * period:
            return f"dim {k}: seasonal profile sums to {profile_sum:.3g}, not 0"
        with np.errstate(over="ignore", invalid="ignore"):
            recon = fit.trend + seasonal + fit.residual
        err = float(np.abs(recon - col).max())
        if not np.isfinite(err) or err > 64 * np.finfo(float).eps * scale:
            return (
                f"dim {k}: round-trip error {err:.6g} exceeds ulp tolerance "
                f"at scale {scale:.6g}"
            )
    return None


# -- family 8: prompt-strategy determinism -------------------------------------


def _check_strategy_equivalence(case: FuzzCase) -> str | None:
    """Every prompt strategy must be deterministic across execution modes
    and ingest-cache temperature.

    Derives a tame request from the case's seed (adversarial magnitudes
    belong to ``round_trip``/``decomposition_roundtrip``; this family pins
    the *orchestration* contract, so the pipeline itself must succeed),
    selects a strategy from :data:`~repro.core.config.PROMPT_STRATEGIES`
    by seed, and runs the identical spec through ``batched`` and
    ``continuous`` execution, each against a cold and then a warm
    :class:`~repro.llm.state_cache.IngestStateCache`.  All four forecasts
    — point values and the full sample ensemble — must be bit-identical,
    and each must report the selected strategy in its metadata.
    """
    from repro.core.config import PROMPT_STRATEGIES, MultiCastConfig
    from repro.core.forecaster import MultiCastForecaster
    from repro.core.spec import ForecastSpec
    from repro.llm.state_cache import IngestStateCache

    rng = np.random.default_rng(case.seed)
    n = int(rng.integers(12, 40))
    d = int(rng.integers(1, 4))
    history = np.cumsum(rng.standard_normal((n, d)), axis=0)
    strategy = PROMPT_STRATEGIES[case.seed % len(PROMPT_STRATEGIES)]
    sax = None
    if case.codec.startswith("sax"):
        sax = {
            "segment_length": case.segment_length,
            "alphabet_size": max(2, min(case.alphabet_size, 10)),
        }
    spec_fields = dict(
        horizon=int(rng.integers(2, 8)),
        scheme=case.scheme,
        num_digits=min(case.num_digits, 3),
        num_samples=int(rng.integers(2, 4)),
        seed=int(rng.integers(0, 2**31)),
        strategy=strategy,
        patch_length=int(rng.integers(1, 5)),
        sax=sax,
    )

    outputs = {}
    for mode in ("batched", "continuous"):
        cache = IngestStateCache()
        for temperature in ("cold", "warm"):
            forecaster = MultiCastForecaster(state_cache=cache)
            output = forecaster.forecast(
                ForecastSpec(series=history, execution=mode, **spec_fields)
            )
            reported = str(output.metadata.get("strategy", ""))
            if strategy not in ("default", "auto") and reported != strategy:
                return (
                    f"{mode}/{temperature}: metadata reports strategy "
                    f"{reported!r}, spec asked for {strategy!r}"
                )
            if strategy == "auto" and not reported.startswith("auto"):
                return (
                    f"{mode}/{temperature}: auto selection not recorded "
                    f"(metadata strategy {reported!r})"
                )
            outputs[(mode, temperature)] = output

    baseline = outputs[("batched", "cold")]
    for key, output in outputs.items():
        if output.samples.shape != baseline.samples.shape:
            return (
                f"{key[0]}/{key[1]}: sample shape {output.samples.shape} "
                f"!= batched/cold {baseline.samples.shape}"
            )
        if not np.array_equal(output.values, baseline.values):
            return f"{key[0]}/{key[1]}: forecast values differ from batched/cold"
        if not np.array_equal(output.samples, baseline.samples):
            return f"{key[0]}/{key[1]}: sample ensemble differs from batched/cold"
    return None

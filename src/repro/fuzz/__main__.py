"""Command-line entry point: ``python -m repro.fuzz --cases 500 --seed 0``.

Exit status is the number of surviving counterexamples (capped at 99), so
CI can gate directly on the process result.  Repro files for failures are
written under ``--out`` (default ``results/fuzz``) and each embeds both
the original draw and its shrunk minimal form.
"""

from __future__ import annotations

import argparse
import sys

from repro.fuzz.generators import FAMILIES
from repro.fuzz.harness import run_fuzz


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.fuzz`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description=(
            "Property-based fuzzing of the rescale→multiplex→generate→"
            "demultiplex→descale round trip."
        ),
    )
    parser.add_argument(
        "--cases", type=int, default=500, help="number of cases to draw"
    )
    parser.add_argument("--seed", type=int, default=0, help="run seed")
    parser.add_argument(
        "--family",
        action="append",
        choices=FAMILIES,
        help="restrict to a property family (repeatable; default: all)",
    )
    parser.add_argument(
        "--out",
        default="results/fuzz",
        help="directory for failure repro files (default: results/fuzz)",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report raw failing draws without minimisation",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run a fuzz session; return the surviving-counterexample count."""
    args = build_parser().parse_args(argv)
    report = run_fuzz(
        num_cases=args.cases,
        seed=args.seed,
        families=tuple(args.family) if args.family else None,
        out_dir=args.out,
        shrink=not args.no_shrink,
    )
    print(report.summary())
    return min(len(report.failures), 99)


if __name__ == "__main__":
    sys.exit(main())

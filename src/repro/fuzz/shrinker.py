"""Greedy counterexample shrinking for failing fuzz cases.

A failing :class:`~repro.fuzz.generators.FuzzCase` is rarely minimal — it
may carry 40 timestamps and 12 dimensions when two values in one dimension
reproduce the bug.  The shrinker repeatedly proposes structurally smaller
variants (fewer rows, fewer dimensions, simpler values, milder knobs) and
keeps any variant on which the property *still fails*, until no proposal
makes progress.  The result is the case that gets written to the repro
file and pinned as a regression test.

The shrinker is deliberately deterministic: no randomness, a fixed
proposal order, and a hard cap on iterations, so shrinking the same
failure always yields the same minimal case.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import replace

from repro.fuzz.generators import FuzzCase

__all__ = ["shrink_case", "case_size"]

#: Safety cap on shrink iterations (each accepted proposal restarts the scan).
_MAX_ROUNDS = 500


def case_size(case: FuzzCase) -> int:
    """Structural size metric minimised by the shrinker (lower = simpler)."""
    value_complexity = sum(
        1 for row in case.values for v in row if v not in (0.0, 1.0)
    )
    return (
        case.num_steps * max(1, case.num_dims) * 4
        + value_complexity
        + case.num_digits
        + case.alphabet_size
        + case.segment_length
        + (0 if case.corruption == "none" else 1)
    )


def _proposals(case: FuzzCase) -> Iterator[FuzzCase]:
    """Structurally smaller variants of ``case``, simplest-first."""
    n, d = case.num_steps, case.num_dims
    # Fewer timestamps: drop halves, then single rows from either end.
    if n > 1:
        yield replace(case, values=case.values[: n // 2])
        yield replace(case, values=case.values[n // 2 :])
        yield replace(case, values=case.values[:-1])
        yield replace(case, values=case.values[1:])
    # Fewer dimensions: drop the trailing half, then one column at a time.
    if d > 1:
        yield replace(case, values=[row[: d // 2] for row in case.values])
        for k in range(d):
            yield replace(
                case, values=[row[:k] + row[k + 1 :] for row in case.values]
            )
    # Simpler values: zero everything, then zero/round single cells.
    if any(v != 0.0 for row in case.values for v in row):
        yield replace(case, values=[[0.0] * d for _ in range(n)])
    for t in range(n):
        for k in range(d):
            v = case.values[t][k]
            for simpler in (0.0, 1.0, float(int(v)) if abs(v) < 1e15 else 0.0):
                if v != simpler:
                    patched = [list(row) for row in case.values]
                    patched[t][k] = simpler
                    yield replace(case, values=patched)
                    break
    # Milder pipeline knobs.
    if case.num_digits > 1:
        yield replace(case, num_digits=1)
        yield replace(case, num_digits=case.num_digits - 1)
    if case.alphabet_size > 2:
        yield replace(case, alphabet_size=2)
    if case.segment_length > 1:
        yield replace(case, segment_length=1)
    if case.corruption != "none":
        yield replace(case, corruption="none")
    if case.cut not in (0.0, 1.0):
        yield replace(case, cut=0.0)
        yield replace(case, cut=1.0)


def shrink_case(
    case: FuzzCase, oracle: Callable[[FuzzCase], str | None]
) -> FuzzCase:
    """Smallest variant of ``case`` on which ``oracle`` still reports failure.

    ``oracle`` is typically :func:`repro.fuzz.properties.check_case`; any
    callable returning ``None`` for passing cases works (tests inject
    synthetic oracles).  ``case`` itself must be failing.
    """
    current = case
    for _ in range(_MAX_ROUNDS):
        for candidate in _proposals(current):
            if not candidate.values or not candidate.values[0]:
                continue  # never shrink below a (1, 1) series
            if case_size(candidate) >= case_size(current):
                continue
            if oracle(candidate) is not None:
                current = candidate
                break
        else:
            return current
    return current

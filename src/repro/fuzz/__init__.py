"""Round-trip fuzzing harness for the encode/decode pipeline.

The pipeline's correctness contract — rescale → multiplex → tokenize →
constrained generate → demultiplex → descale must invert exactly — is only
as strong as the inputs it has been tried on.  This package is a
self-contained, seed-reproducible property-based harness (generators plus a
greedy shrinker; no external dependencies) that hunts numeric edge-case
bugs across the full matrix of multiplexing schemes × scalers × codecs
with adversarial inputs: constant series, near-zero spans, huge and
negative magnitudes, subnormals, single-timestamp histories, wide
dimension counts, and truncated or separator-corrupted generated streams.

Six property families:

* ``round_trip`` — every scaler either raises a clean
  :class:`~repro.exceptions.ScalingError` (permitted only for extreme
  magnitudes) or inverts exactly within its resolution; SAX words are
  idempotent under decode→encode.
* ``mux_identity`` — ``demux(mux(x)) == x`` for every scheme and codec,
  including ``row_offset`` rotation continuation for block interleaving
  and exact-prefix recovery from truncated/corrupted streams.
* ``constraint_soundness`` — every stream the structured-generation
  grammar admits must demultiplex without error into complete rows.
* ``decode_equivalence`` — lockstep batched decoding
  (:class:`~repro.llm.batch.BatchedDecoder`) equals per-stream sequential
  decoding bit for bit — tokens and log-probs — across random prompts,
  constraints, heterogeneous budgets, and every registered model.
* ``sched_equivalence`` — the cross-request
  :class:`~repro.scheduling.ContinuousScheduler` produces bit-identical
  results to standalone per-request batched decoding across random
  interleavings of 2–5 concurrent requests (some sharing prompts, so the
  radix prefill tree's fork/extend paths are exercised), random admission
  caps, and concurrent submission threads.
* ``sharded_equivalence`` — a multi-process
  :class:`~repro.sharding.ShardedEngine` produces bit-identical forecasts
  (values, samples, and demultiplexed row counts) to the in-process
  engine across shard counts 1, 2 and 4, random schemes, horizons, and
  both batched and continuous execution.

Failures shrink to a minimal counterexample and are written as JSON repro
case files.  Run from the command line::

    python -m repro.fuzz --cases 500 --seed 0
"""

from repro.fuzz.generators import (
    CODECS,
    CORRUPTIONS,
    FAMILIES,
    SCALERS,
    FuzzCase,
    generate_case,
)
from repro.fuzz.harness import Counterexample, FuzzReport, run_fuzz
from repro.fuzz.properties import check_case
from repro.fuzz.shrinker import shrink_case

__all__ = [
    "FuzzCase",
    "FuzzReport",
    "Counterexample",
    "generate_case",
    "check_case",
    "shrink_case",
    "run_fuzz",
    "FAMILIES",
    "SCALERS",
    "CODECS",
    "CORRUPTIONS",
]

"""Fuzz run orchestration: generate → check → shrink → report.

:func:`run_fuzz` drives ``num_cases`` independent draws from a single run
seed (case ``i`` uses the sub-stream ``(seed, i)``, so any case can be
regenerated alone), checks each against its property family, shrinks
failures to minimal counterexamples, and optionally writes one JSON repro
file per failure.  The resulting :class:`FuzzReport` is what the CLI
prints and what the CI smoke job gates on: zero surviving counterexamples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.fuzz.generators import FAMILIES, FuzzCase, generate_case
from repro.fuzz.properties import check_case
from repro.fuzz.shrinker import shrink_case

__all__ = ["Counterexample", "FuzzReport", "run_fuzz"]


@dataclass
class Counterexample:
    """One surviving property failure: the draw, its shrunk form, the reason."""

    index: int
    failure: str
    case: FuzzCase
    shrunk: FuzzCase

    def to_json(self) -> str:
        """Repro-file payload: the shrunk case plus provenance."""
        import json

        return json.dumps(
            {
                "index": self.index,
                "failure": self.failure,
                "shrunk": json.loads(self.shrunk.to_json()),
                "original": json.loads(self.case.to_json()),
            },
            indent=2,
        )


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzz run."""

    seed: int
    cases_run: int = 0
    checked_per_family: dict[str, int] = field(default_factory=dict)
    failures: list[Counterexample] = field(default_factory=list)
    repro_files: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no counterexample survived."""
        return not self.failures

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"fuzz: {self.cases_run} cases, seed {self.seed} — "
            + ("OK" if self.ok else f"{len(self.failures)} counterexample(s)")
        ]
        for family in FAMILIES:
            count = self.checked_per_family.get(family, 0)
            lines.append(f"  {family:22s} {count} cases")
        for ce in self.failures:
            lines.append(f"  FAIL #{ce.index}: {ce.failure}")
            lines.append(f"    shrunk: {ce.shrunk.describe()}")
        if self.repro_files:
            lines.append("  repro files:")
            lines.extend(f"    {path}" for path in self.repro_files)
        return "\n".join(lines)


def run_fuzz(
    num_cases: int,
    seed: int = 0,
    families: tuple[str, ...] | None = None,
    out_dir: str | Path | None = None,
    shrink: bool = True,
) -> FuzzReport:
    """Fuzz ``num_cases`` draws across the scheme × scaler × codec matrix.

    ``families`` restricts the run to a subset of property families
    (cases cycle through the selection so coverage stays even).
    ``out_dir`` receives one ``case-<index>.json`` repro file per failure;
    ``shrink=False`` skips minimisation (faster triage loops).
    """
    if num_cases < 1:
        raise ValueError(f"num_cases must be >= 1, got {num_cases}")
    selected = tuple(families) if families else FAMILIES
    for family in selected:
        if family not in FAMILIES:
            raise ValueError(
                f"unknown fuzz family {family!r}; choose from {FAMILIES}"
            )
    report = FuzzReport(seed=seed)
    out_path = Path(out_dir) if out_dir is not None else None
    for index in range(num_cases):
        rng = np.random.default_rng((seed, index))
        family = selected[index % len(selected)]
        case = generate_case(rng, family=family)
        report.cases_run += 1
        report.checked_per_family[family] = (
            report.checked_per_family.get(family, 0) + 1
        )
        failure = check_case(case)
        if failure is None:
            continue
        shrunk = shrink_case(case, check_case) if shrink else case
        counterexample = Counterexample(
            index=index,
            failure=check_case(shrunk) or failure,
            case=case,
            shrunk=shrunk,
        )
        report.failures.append(counterexample)
        if out_path is not None:
            out_path.mkdir(parents=True, exist_ok=True)
            repro_file = out_path / f"case-{index}.json"
            repro_file.write_text(counterexample.to_json())
            report.repro_files.append(str(repro_file))
    return report

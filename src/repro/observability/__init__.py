"""Observability: end-to-end tracing and a structured run ledger.

Two complementary views of the serving system, both dependency-free:

* :mod:`~repro.observability.spans` — a :class:`Tracer` producing
  hierarchical spans (request → forecast → pipeline stage → sample draw →
  LLM ingest/decode) with attributes, a thread-safe :class:`SpanCollector`
  for finished traces, and :func:`render_span_tree` for the
  ``forecast --trace`` CLI.  The default :data:`NULL_TRACER` makes every
  instrumented region a no-op, so the hot path pays ~zero cost and
  results stay bit-identical when tracing is disabled.
* :mod:`~repro.observability.ledger` — :class:`RunLedger`, an append-only
  JSONL record of every served forecast (config hash, seed, outcome,
  latency, token counts, span tree), plus :func:`summarize_ledger` /
  ``repro-multicast ledger summarize`` to aggregate ledgers into
  per-outcome counts and latency quantiles.

Every layer accepts an optional ``tracer=``:
:class:`~repro.serving.engine.ForecastEngine` opens request spans and
writes the ledger, :class:`~repro.core.forecaster.MultiCastForecaster`
opens the pipeline root and stage spans, and
:meth:`~repro.llm.simulated.SimulatedLLM.generate` records per-draw
ingest/decode spans.  ``docs/OBSERVABILITY.md`` is the guide.
"""

from repro.observability.ledger import (
    LedgerSummary,
    RunLedger,
    read_ledger,
    summarize_ledger,
)
from repro.observability.spans import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    SpanCollector,
    Tracer,
    render_span_tree,
    stage_timings,
)

__all__ = [
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanCollector",
    "render_span_tree",
    "stage_timings",
    "RunLedger",
    "LedgerSummary",
    "read_ledger",
    "summarize_ledger",
]

"""Hierarchical spans: the tracing primitive behind ``forecast --trace``.

A forecast that is slow or degrades to a partial ensemble used to be
opaque: :attr:`~repro.core.output.ForecastOutput.timings` is a flat
per-stage sum with no per-sample, per-retry, or cache-hit attribution.
Spans fix that.  A :class:`Span` times one named region and carries
key/value attributes; spans nest, so one serving request unfolds into a
tree::

    request                      engine-level (cache hit/miss, outcome)
      └─ forecast                pipeline root (scheme, model, horizon)
          ├─ stage:scale
          ├─ stage:multiplex     (prompt_tokens, tokens_needed)
          ├─ stage:generate
          │     ├─ sample_draw   one per draw *attempt* (seed, attempt)
          │     │     └─ llm:generate
          │     │           ├─ llm:ingest    prompt → in-context model
          │     │           └─ llm:decode    constrained sampling loop
          │     └─ ...
          ├─ stage:demultiplex
          └─ stage:aggregate

A :class:`Tracer` creates spans and maintains an implicit parent per
thread, so nested ``with tracer.span(...)`` blocks build the tree without
explicit wiring; sample draws executing on pool threads attach to their
``stage:generate`` parent explicitly.  Finished root spans land in a
thread-safe :class:`SpanCollector`.

The default is :data:`NULL_TRACER`, a :class:`NullTracer` whose spans are
inert singletons — the instrumented hot path pays one attribute check and
nothing else, and forecast outputs are bit-identical to untraced runs.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = [
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanCollector",
    "render_span_tree",
    "stage_timings",
]

#: Sentinel distinguishing "use the thread's ambient parent" from an
#: explicit ``parent=None`` (which forces a new root span).
_AMBIENT = object()


class Span:
    """One timed, attributed region of work; nodes of the trace tree.

    Spans are created by :meth:`Tracer.span`, not directly.  ``start_time``
    / ``end_time`` are ``time.perf_counter()`` readings (durations are
    meaningful, absolute values are not); attributes are plain
    JSON-serialisable values.
    """

    __slots__ = ("name", "attributes", "children", "start_time", "end_time")

    def __init__(self, name: str, attributes: dict | None = None) -> None:
        self.name = name
        self.attributes: dict = dict(attributes or {})
        self.children: list[Span] = []
        self.start_time: float = time.perf_counter()
        self.end_time: float | None = None

    #: Real spans record; :class:`NullSpan` reports False so instrumented
    #: code can skip attribute computation entirely when tracing is off.
    is_recording = True

    def set_attribute(self, key: str, value) -> None:
        """Attach one key/value attribute (last write wins)."""
        self.attributes[key] = value

    def finish(self, at: float | None = None) -> None:
        """Close the span; idempotent.

        ``at`` overrides the end timestamp — the forecaster uses this to
        define the pipeline root's duration as exactly the sum of its stage
        spans (see :meth:`repro.core.forecaster.MultiCastForecaster.forecast`),
        keeping the rendered tree consistent with ``wall_seconds``.
        """
        if self.end_time is None or at is not None:
            self.end_time = time.perf_counter() if at is None else at

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` has run."""
        return self.end_time is not None

    @property
    def duration(self) -> float:
        """Elapsed seconds (up to now for a span still in flight)."""
        end = time.perf_counter() if self.end_time is None else self.end_time
        return end - self.start_time

    def walk(self):
        """Yield this span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Span | None:
        """First span named ``name`` in this subtree (depth first), or None."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> dict:
        """JSON-serialisable form: the ledger's ``spans`` field."""
        return {
            "name": self.name,
            "duration_seconds": round(self.duration, 9),
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        state = f"{self.duration:.4f}s" if self.finished else "open"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class NullSpan:
    """The inert span: every operation is a no-op.

    A single shared instance (:data:`NULL_SPAN`) is handed out for every
    disabled-tracing region, so the hot path allocates nothing.
    """

    __slots__ = ()

    is_recording = False
    children: tuple = ()
    attributes: dict = {}

    def set_attribute(self, key: str, value) -> None:
        """Discard the attribute."""

    def finish(self, at: float | None = None) -> None:
        """Nothing to close."""

    @property
    def duration(self) -> float:
        """Always 0.0 — null spans do not time anything."""
        return 0.0

    def __repr__(self) -> str:
        return "NullSpan()"


#: The shared inert span yielded by :class:`NullTracer` contexts.
NULL_SPAN = NullSpan()


class SpanCollector:
    """Thread-safe sink for finished root spans.

    A :class:`Tracer` deposits every finished *root* (parentless) span
    here; the CLI drains it to render trace trees, tests drain it to
    assert on structure.  Bounded: past ``max_spans`` the oldest roots are
    dropped (a long-running engine must not grow without limit).
    """

    def __init__(self, max_spans: int = 1024) -> None:
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self.max_spans = max_spans
        self.dropped = 0

    def add(self, span: Span) -> None:
        """Deposit one finished root span."""
        with self._lock:
            self._spans.append(span)
            if len(self._spans) > self.max_spans:
                excess = len(self._spans) - self.max_spans
                del self._spans[:excess]
                self.dropped += excess

    def drain(self) -> list[Span]:
        """Remove and return all collected roots, oldest first."""
        with self._lock:
            spans, self._spans = self._spans, []
            return spans

    @property
    def roots(self) -> list[Span]:
        """A snapshot of the collected roots (non-destructive)."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class Tracer:
    """Builds span trees with implicit per-thread parenting.

    ``with tracer.span("name", key=value) as span:`` opens a child of the
    calling thread's innermost open span (or a new root).  Work handed to
    another thread attaches explicitly: ``tracer.span("sample_draw",
    parent=generate_span)`` — the span still becomes the ambient parent
    *on the executing thread* for its duration, so deeper instrumentation
    (e.g. :meth:`repro.llm.simulated.SimulatedLLM.generate`) nests under
    it automatically.

    Example
    -------
    >>> from repro.observability import SpanCollector, Tracer
    >>> collector = SpanCollector()
    >>> tracer = Tracer(collector)
    >>> with tracer.span("outer") as outer:
    ...     with tracer.span("inner", detail=42) as inner:
    ...         pass
    >>> [s.name for s in collector.roots[0].walk()]
    ['outer', 'inner']
    """

    #: Real tracers record; callers may branch on this to skip building
    #: expensive attribute values when tracing is disabled.
    enabled = True

    def __init__(self, collector: SpanCollector | None = None) -> None:
        self.collector = collector if collector is not None else SpanCollector()
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self) -> Span | None:
        """The calling thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, parent=_AMBIENT, **attributes):
        """Open a span for the duration of the ``with`` block.

        ``parent`` defaults to the calling thread's ambient span; pass an
        explicit span to attach across threads, or ``None`` to force a new
        root.  Keyword arguments become initial attributes.
        """
        stack = self._stack()
        if parent is _AMBIENT:
            parent = stack[-1] if stack else None
        span = Span(name, attributes)
        if parent is not None and parent.is_recording:
            with self._lock:
                parent.children.append(span)
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()
            span.finish()
            if parent is None or not parent.is_recording:
                self.collector.add(span)


class NullTracer:
    """The disabled tracer: every span context yields :data:`NULL_SPAN`.

    This is the default everywhere a ``tracer=`` parameter exists, so the
    pipeline's instrumentation costs one identity check per region and the
    numeric path is untouched — engine results are bit-identical to
    pre-tracing outputs under the same seed.
    """

    enabled = False

    @contextmanager
    def _null_context(self):
        yield NULL_SPAN

    def span(self, name: str, parent=_AMBIENT, **attributes):
        """A context manager yielding the shared :data:`NULL_SPAN`."""
        del name, parent, attributes
        return self._null_context()

    def current_span(self) -> None:
        """Null tracers never have an open span."""
        return None

    def __repr__(self) -> str:
        return "NullTracer()"


#: Process-wide disabled tracer; ``tracer or NULL_TRACER`` is the idiom.
NULL_TRACER = NullTracer()


def stage_timings(root: Span) -> dict[str, float]:
    """Per-stage seconds extracted from a span tree.

    Sums the durations of every ``stage:<name>`` span in the subtree,
    keyed by ``<name>`` — the span-world equivalent of
    :attr:`repro.core.timing.StageClock.timings` (a stage split across two
    regions, e.g. ``deseasonalize``, reports one combined number).
    """
    timings: dict[str, float] = {}
    for span in root.walk():
        if span.name.startswith("stage:"):
            stage = span.name[len("stage:"):]
            timings[stage] = timings.get(stage, 0.0) + span.duration
    return timings


def _format_attributes(span: Span) -> str:
    if not span.attributes:
        return ""
    parts = []
    for key, value in span.attributes.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    return "  [" + " ".join(parts) + "]"


def render_span_tree(root: Span, *, unit: str = "ms") -> str:
    """ASCII tree of a span and its descendants, for ``forecast --trace``.

    Durations render in ``unit`` (``"ms"`` or ``"s"``); attributes are
    appended in brackets.  Children are drawn in insertion order, which is
    start order for same-thread spans and completion-attach order for
    cross-thread ones.
    """
    scale, suffix = (1000.0, "ms") if unit == "ms" else (1.0, "s")
    lines: list[str] = []

    def render(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        lines.append(
            f"{prefix}{connector}{span.name}  "
            f"{span.duration * scale:.2f}{suffix}{_format_attributes(span)}"
        )
        child_prefix = prefix if is_root else prefix + ("   " if is_last else "│  ")
        for i, child in enumerate(span.children):
            render(child, child_prefix, i == len(span.children) - 1, False)

    render(root, "", True, True)
    return "\n".join(lines)

"""The run ledger: one JSONL record per served forecast, for post-hoc analysis.

Metrics answer "how is the service doing *right now*"; the ledger answers
"what happened to request 417 last Tuesday".  The serving engine appends
one self-contained JSON object per forecast — config hash, seed, outcome
(``ok`` / ``partial`` / ``failed``), wall seconds, token counts, per-stage
timings, the request's span tree when tracing is on, and a compact metric
snapshot — so a directory of ledger files *is* the service's queryable
history.  ``repro-multicast ledger summarize`` aggregates any ledger back
into per-outcome counts and latency quantiles.

Record schema (one JSON object per line; ``docs/OBSERVABILITY.md`` has the
full field reference)::

    {"name": "gas-di", "outcome": "ok", "config_hash": "ab12…", "seed": 0,
     "scheme": "di", "sax": false, "model": "llama2-7b-sim", "horizon": 8,
     "cache_hit": false, "partial": false, "attempts": 1, "error": null,
     "wall_seconds": 0.41, "prompt_tokens": 3120, "generated_tokens": 320,
     "timings": {"scale": …}, "spans": {…} | null, "metrics": {…}}
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.exceptions import ConfigError, DataError

__all__ = ["RunLedger", "LedgerSummary", "read_ledger", "summarize_ledger"]

#: The three terminal states of a served forecast.
OUTCOMES = ("ok", "partial", "failed")

#: Latency quantiles reported by :func:`summarize_ledger` — the same set
#: the serving :class:`~repro.serving.metrics.Histogram` snapshots, so the
#: two reports are directly comparable.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


class RunLedger:
    """Append-only JSONL sink, safe for concurrent writers.

    Each :meth:`append` serialises one record and writes it as a single
    line under a lock (the engine's request pool calls this from several
    threads).  The file handle is opened per write, so a ledger can be
    tailed, rotated, or read while the engine is live.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._records_written = 0

    def append(self, record: dict) -> None:
        """Write one record as a JSON line (fsync-free, flush-per-line)."""
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            with open(self.path, "a") as handle:
                handle.write(line + "\n")
            self._records_written += 1

    @property
    def records_written(self) -> int:
        """Records appended through this instance (not lines in the file)."""
        with self._lock:
            return self._records_written

    def __repr__(self) -> str:
        return f"RunLedger({str(self.path)!r}, written={self.records_written})"


def read_ledger(path: str | Path) -> list[dict]:
    """Parse a ledger file into a list of record dicts.

    Blank lines are skipped; a malformed line raises :class:`DataError`
    naming its line number (a truncated final line from a crashed writer
    is the common case worth a precise message).
    """
    path = Path(path)
    try:
        text = path.read_text()
    except FileNotFoundError:
        raise ConfigError(f"ledger not found: {path}") from None
    records = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise DataError(
                f"ledger {path} line {number} is not valid JSON: {error}"
            ) from None
        if not isinstance(record, dict):
            raise DataError(
                f"ledger {path} line {number} is not an object"
            )
        records.append(record)
    return records


@dataclass
class LedgerSummary:
    """Aggregated view of one ledger: outcome counts and latency quantiles."""

    total: int
    outcomes: dict = field(default_factory=dict)
    cache_hits: int = 0
    retries: int = 0
    latency: dict = field(default_factory=dict)
    prompt_tokens: int = 0
    generated_tokens: int = 0
    by_scheme: dict = field(default_factory=dict)

    def format(self) -> str:
        """Render the report the ``ledger summarize`` CLI prints."""
        lines = [f"records: {self.total}"]
        outcome_bits = "  ".join(
            f"{name}={self.outcomes.get(name, 0)}" for name in OUTCOMES
        )
        lines.append(f"outcomes: {outcome_bits}")
        lines.append(f"cache hits: {self.cache_hits}    retries: {self.retries}")
        if self.latency:
            lat = self.latency
            lines.append(
                "latency: mean={mean:.4f}s  p50={p50:.4f}s  p95={p95:.4f}s  "
                "p99={p99:.4f}s  max={max:.4f}s".format(**lat)
            )
        lines.append(
            f"tokens: prompt={self.prompt_tokens} "
            f"generated={self.generated_tokens}"
        )
        if self.by_scheme:
            scheme_bits = "  ".join(
                f"{scheme}={count}" for scheme, count in sorted(self.by_scheme.items())
            )
            lines.append(f"schemes: {scheme_bits}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serialisable form for ``ledger summarize --json``."""
        return {
            "total": self.total,
            "outcomes": dict(self.outcomes),
            "cache_hits": self.cache_hits,
            "retries": self.retries,
            "latency": dict(self.latency),
            "prompt_tokens": self.prompt_tokens,
            "generated_tokens": self.generated_tokens,
            "by_scheme": dict(self.by_scheme),
        }


def summarize_ledger(source: str | Path | list) -> LedgerSummary:
    """Aggregate a ledger (path or pre-read record list) into a summary.

    Latency quantiles are exact ``numpy.quantile`` values over every
    record's ``wall_seconds`` — computed the same way the serving
    histogram's snapshot computes ``request_seconds`` quantiles, so a
    ledger written alongside a metrics dump reports matching numbers.
    """
    records = source if isinstance(source, list) else read_ledger(source)
    if not records:
        raise DataError("ledger contains no records")

    outcomes: dict[str, int] = {}
    by_scheme: dict[str, int] = {}
    walls: list[float] = []
    summary = LedgerSummary(total=len(records))
    for record in records:
        outcome = record.get("outcome", "ok")
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
        scheme = record.get("scheme")
        if scheme:
            by_scheme[scheme] = by_scheme.get(scheme, 0) + 1
        if record.get("cache_hit"):
            summary.cache_hits += 1
        summary.retries += max(0, int(record.get("attempts", 1)) - 1)
        summary.prompt_tokens += int(record.get("prompt_tokens", 0))
        summary.generated_tokens += int(record.get("generated_tokens", 0))
        wall = record.get("wall_seconds")
        if wall is not None:
            walls.append(float(wall))

    summary.outcomes = outcomes
    summary.by_scheme = by_scheme
    if walls:
        values = np.asarray(walls)
        summary.latency = {
            "mean": float(values.mean()),
            "max": float(values.max()),
        }
        for q in SUMMARY_QUANTILES:
            summary.latency[f"p{int(q * 100)}"] = float(np.quantile(values, q))
    return summary

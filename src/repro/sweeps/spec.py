"""Declarative sweep specifications and deterministic trial expansion.

A :class:`SweepSpec` names a method (a ``multicast-*`` scheme or a
registered baseline estimator), a search space over its knobs, and the
backtest protocol used to score each candidate.  :func:`expand_trials`
turns it into a deterministic list of :class:`Trial` objects — pure
arithmetic on the spec and its seed, so the same spec always yields the
same trials in the same order, on any host and across any number of
shards.  Each trial carries a content-addressed ``trial_digest`` (method
+ canonical parameter JSON), which is what the crash-tolerant resume
path keys on.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import math

import numpy as np

from repro.baselines import available_estimators, estimator_param_names
from repro.core.spec import ForecastSpec, canonicalize_sampling_options
from repro.exceptions import ConfigError

__all__ = ["SweepSpec", "Trial", "expand_trials", "KNOB_ALIASES"]

#: The paper's single-letter knob names (Table II) mapped to canonical
#: ForecastSpec fields: ``b`` digits of precision, ``w`` SAX segment
#: length, ``a`` SAX alphabet size.
KNOB_ALIASES = {
    "b": "num_digits",
    "w": "sax.segment_length",
    "a": "sax.alphabet_size",
}

#: Supported search strategies.
SEARCH_MODES = ("grid", "random")

#: ForecastSpec fields a multicast sweep may vary or fix.  ``series``,
#: ``horizon`` and ``seed`` are owned by the backtest protocol;
#: ``scheme`` is owned by the method name.
_MULTICAST_KNOBS = frozenset(
    {
        "num_digits",
        "num_samples",
        "model",
        "aggregation",
        "structured_constraint",
        "deseasonalize",
        "temperature",
        "max_context_tokens",
        "strategy",
        "patch_length",
        "execution",
    }
)


def _canonical_json(value) -> str:
    """Deterministic JSON for digests (sorted keys, tuples as lists)."""

    def default(obj):
        if isinstance(obj, (np.integer,)):
            return int(obj)
        if isinstance(obj, (np.floating,)):
            return float(obj)
        raise TypeError(f"not canonicalizable: {obj!r}")

    return json.dumps(value, sort_keys=True, default=default)


def _digest(value) -> str:
    return hashlib.blake2b(
        _canonical_json(value).encode(), digest_size=8
    ).hexdigest()


def trial_digest(method: str, params: dict) -> str:
    """Content address of one trial: method + canonical parameter JSON."""
    return _digest({"method": method, "params": params})


@dataclasses.dataclass(frozen=True)
class Trial:
    """One expanded sweep candidate.

    ``index`` is the position in the deterministic expansion order,
    ``params`` the flat (possibly dotted ``sax.*``) parameter assignment,
    ``seed`` the trial-specific base seed derived from the sweep seed and
    the digest, and ``trial_digest`` the content address used by resume.
    """

    index: int
    params: dict
    seed: int
    trial_digest: str


def _canonicalize_key(key: str) -> str:
    return KNOB_ALIASES.get(key, key)


def _normalize_space(space: dict, *, context: str) -> dict:
    if not isinstance(space, dict) or not space:
        raise ConfigError(f"{context} must be a non-empty dict of candidates")
    normalized = {}
    for raw_key, values in space.items():
        key = _canonicalize_key(str(raw_key))
        if key in normalized:
            raise ConfigError(
                f"{context} names knob {key!r} twice (alias collision)"
            )
        if isinstance(values, (str, bytes)) or not hasattr(values, "__iter__"):
            raise ConfigError(
                f"{context}[{raw_key!r}] must be an iterable of candidate "
                f"values, got {values!r}"
            )
        candidates = tuple(values)
        if not candidates:
            raise ConfigError(f"{context}[{raw_key!r}] has no candidates")
        normalized[key] = candidates
    return normalized


def _validate_knobs(method: str, keys, *, context: str) -> None:
    if method.startswith("multicast-"):
        allowed = _MULTICAST_KNOBS
        for key in keys:
            if key in allowed or key.startswith("sax."):
                continue
            raise ConfigError(
                f"{context}: {key!r} is not a sweepable MultiCast knob; "
                f"allowed: {sorted(allowed)} plus dotted 'sax.*' fields "
                f"and the paper aliases {sorted(KNOB_ALIASES)}"
            )
    else:
        allowed = set(estimator_param_names(method))
        unknown = sorted(set(keys) - allowed)
        if unknown:
            raise ConfigError(
                f"{context}: unknown parameters {unknown} for estimator "
                f"{method!r}; valid parameters are {sorted(allowed)}"
            )


@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """A declarative hyperparameter sweep.

    Attributes
    ----------
    method:
        ``"multicast-di/vi/vc/bi"`` (trials fan out through the serving
        engine) or a registered baseline estimator name
        (:func:`repro.baselines.available_estimators`).
    space:
        Knob name → iterable of candidate values.  The paper's single
        letter aliases (:data:`KNOB_ALIASES`) and dotted ``sax.*`` keys
        are accepted for multicast methods; ``n_samples`` is rewritten to
        ``num_samples`` with the standard deprecation warning.
    search:
        ``"grid"`` (full cartesian product) or ``"random"``
        (``num_trials`` seeded draws from the product).
    num_trials:
        Required for random search; must be omitted (or equal the grid
        size) for grid search.
    seed:
        Base seed: drives random-search sampling and derives each
        trial's own seed from its digest.
    horizon, num_windows, stride:
        The rolling-origin backtest protocol each candidate is scored on
        (mean RMSE across windows; ``stride`` defaults to ``horizon``).
    num_rungs, eta:
        Successive-halving early stopping: rung ``r`` of ``R`` scores the
        ``ceil(num_windows / eta**(R-1-r))`` most recent windows and
        keeps the best ``ceil(alive / eta)`` trials.  ``num_rungs=1``
        disables early stopping (every trial scores every window).
    fixed:
        Knob assignments applied to every trial (same key space as
        ``space``; a key may not appear in both).
    """

    method: str
    space: dict
    search: str = "grid"
    num_trials: int | None = None
    seed: int = 0
    horizon: int = 4
    num_windows: int = 2
    stride: int | None = None
    num_rungs: int = 1
    eta: int = 3
    fixed: dict = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.search not in SEARCH_MODES:
            raise ConfigError(
                f"search must be one of {SEARCH_MODES}, got {self.search!r}"
            )
        if not (
            self.method.startswith("multicast-")
            or self.method in available_estimators()
        ):
            known = ", ".join(
                ["multicast-<scheme>"] + available_estimators()
            )
            raise ConfigError(
                f"unknown sweep method {self.method!r}; available: {known}"
            )
        space = _normalize_space(
            canonicalize_sampling_options(
                dict(self.space), context="SweepSpec space"
            ),
            context="SweepSpec.space",
        )
        fixed = canonicalize_sampling_options(
            {_canonicalize_key(str(k)): v for k, v in dict(self.fixed).items()},
            context="SweepSpec fixed",
        )
        overlap = sorted(set(space) & set(fixed))
        if overlap:
            raise ConfigError(
                f"knobs {overlap} appear in both space and fixed"
            )
        _validate_knobs(self.method, space, context="SweepSpec.space")
        _validate_knobs(self.method, fixed, context="SweepSpec.fixed")
        object.__setattr__(self, "space", space)
        object.__setattr__(self, "fixed", fixed)
        if self.horizon < 1:
            raise ConfigError(f"horizon must be >= 1, got {self.horizon}")
        if self.num_windows < 1:
            raise ConfigError(
                f"num_windows must be >= 1, got {self.num_windows}"
            )
        if self.stride is not None and self.stride < 1:
            raise ConfigError(f"stride must be >= 1, got {self.stride}")
        if self.num_rungs < 1:
            raise ConfigError(f"num_rungs must be >= 1, got {self.num_rungs}")
        if self.eta < 2:
            raise ConfigError(f"eta must be >= 2, got {self.eta}")
        grid_size = self.grid_size
        if self.search == "grid":
            if self.num_trials is not None and self.num_trials != grid_size:
                raise ConfigError(
                    f"grid search over this space has exactly {grid_size} "
                    f"trials; num_trials={self.num_trials} conflicts "
                    f"(omit it, or switch to search='random')"
                )
        else:
            if self.num_trials is None or self.num_trials < 1:
                raise ConfigError(
                    "random search needs num_trials >= 1"
                )

    @property
    def grid_size(self) -> int:
        """The full cartesian-product size of the space."""
        return math.prod(len(v) for v in self.space.values())

    @property
    def total_trials(self) -> int:
        """Trials this spec expands to."""
        return self.grid_size if self.search == "grid" else int(self.num_trials)

    @property
    def sweep_id(self) -> str:
        """Content address of the whole sweep (spec fields + seed)."""
        return _digest(
            {
                "method": self.method,
                "space": {k: list(v) for k, v in self.space.items()},
                "search": self.search,
                "num_trials": self.num_trials,
                "seed": self.seed,
                "horizon": self.horizon,
                "num_windows": self.num_windows,
                "stride": self.stride,
                "num_rungs": self.num_rungs,
                "eta": self.eta,
                "fixed": self.fixed,
            }
        )

    def windows_for_rung(self, rung: int) -> int:
        """Backtest windows scored at ``rung`` (latest-first allocation)."""
        if not 0 <= rung < self.num_rungs:
            raise ConfigError(
                f"rung must be in [0, {self.num_rungs}), got {rung}"
            )
        return max(
            1,
            math.ceil(
                self.num_windows / self.eta ** (self.num_rungs - 1 - rung)
            ),
        )

    def spec_template(self) -> ForecastSpec | None:
        """For multicast methods: the unbound ForecastSpec of ``fixed``.

        Returns ``None`` for baseline estimator sweeps.  Dotted ``sax.*``
        keys are folded into the ``sax`` config dict.
        """
        if not self.method.startswith("multicast-"):
            return None
        scheme = self.method.split("-", 1)[1]
        return ForecastSpec(scheme=scheme, **_fold_sax(self.fixed))


def _fold_sax(params: dict) -> dict:
    """Fold dotted ``sax.*`` keys into a ``sax`` dict kwarg."""
    folded: dict = {}
    sax: dict = {}
    for key, value in params.items():
        if key.startswith("sax."):
            sax[key[len("sax.") :]] = value
        else:
            folded[key] = value
    if sax:
        folded["sax"] = sax
    return folded


def expand_trials(sweep: SweepSpec) -> list[Trial]:
    """The deterministic trial list of a sweep.

    Grid search enumerates the cartesian product with knob names sorted
    and candidate values in their given order; random search draws
    ``num_trials`` assignments from a ``default_rng(seed)`` stream.  Each
    trial's own seed is derived from the sweep seed and the trial digest,
    so it is stable under re-expansion and independent of trial order.
    """
    keys = sorted(sweep.space)
    assignments: list[dict] = []
    if sweep.search == "grid":
        for combo in itertools.product(*(sweep.space[k] for k in keys)):
            assignments.append(dict(zip(keys, combo)))
    else:
        rng = np.random.default_rng(sweep.seed)
        for _ in range(int(sweep.num_trials)):
            assignments.append(
                {
                    k: sweep.space[k][int(rng.integers(len(sweep.space[k])))]
                    for k in keys
                }
            )
    trials = []
    for index, assignment in enumerate(assignments):
        params = {**sweep.fixed, **assignment}
        digest = trial_digest(sweep.method, params)
        seed_material = hashlib.blake2b(
            f"{sweep.seed}:{digest}".encode(), digest_size=8
        ).digest()
        seed = int.from_bytes(seed_material[:4], "big")
        trials.append(
            Trial(index=index, params=params, seed=seed, trial_digest=digest)
        )
    return trials

"""The sweep runner: trial fan-out, ledger records, resume, halving.

:class:`SweepRunner` executes an expanded sweep against one series.
MultiCast trials become :class:`~repro.core.spec.ForecastSpec` requests
fanned out through the supplied engine's ``forecast_batch`` (a
:class:`~repro.serving.engine.ForecastEngine`, a
:class:`~repro.sharding.engine.ShardedEngine`, or anything duck-typed
alike; ``engine=None`` runs in-process) — so a sweep scales across
processes exactly like serving traffic does, and scores are
bit-identical regardless of shard count.  Baseline trials build their
estimator via :func:`repro.baselines.make_estimator` and fit locally.

Every (trial, rung) evaluation appends one ``kind="sweep_trial"`` ledger
record *before* the ``on_trial`` callback fires, so a crash at any point
loses at most the evaluation in flight; re-running with ``resume=True``
reloads completed evaluations by ``(trial_digest, rung)`` and re-executes
none of them.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines import estimator_param_names, make_estimator
from repro.core import MultiCastForecaster
from repro.core.spec import ForecastSpec
from repro.exceptions import ConfigError, DataError, ReproError
from repro.observability import NULL_TRACER, RunLedger, read_ledger
from repro.sweeps.report import SweepReport, TrialResult
from repro.sweeps.spec import SweepSpec, Trial, _fold_sax, expand_trials

__all__ = ["SweepRunner"]


class SweepRunner:
    """Executes sweeps; see the module docstring for the protocol.

    Parameters
    ----------
    engine:
        Optional serving engine; multicast trials are dispatched through
        its ``forecast_batch``.  ``None`` runs them in-process (same
        outputs bit for bit).
    ledger:
        A :class:`~repro.observability.RunLedger` or path.  Required for
        ``resume``; one record per (trial, rung) evaluation.
    tracer:
        Optional tracer; emits a ``sweep`` root span and one
        ``sweep:trial`` span per fresh evaluation.
    """

    def __init__(self, engine=None, *, ledger=None, tracer=None) -> None:
        self.engine = engine
        if ledger is None or isinstance(ledger, RunLedger):
            self.ledger = ledger
        else:
            self.ledger = RunLedger(ledger)
        self.tracer = NULL_TRACER if tracer is None else tracer

    # -- public API ---------------------------------------------------------

    def run(
        self,
        sweep: SweepSpec,
        series,
        *,
        resume: bool = False,
        on_trial=None,
    ) -> SweepReport:
        """Run (or resume) a sweep on ``series``; returns the report.

        ``on_trial(trial, rung, score)`` is invoked after each *fresh*
        evaluation's ledger record is written — a callback that raises
        aborts the sweep with everything scored so far safely on disk.
        """
        values = np.asarray(series, dtype=float)
        if values.ndim == 1:
            values = values[:, None]
        if values.ndim != 2:
            raise DataError(
                f"expected (n, d) series, got shape {values.shape}"
            )
        origins = self._origins(sweep, values.shape[0])
        completed = self._completed(sweep.sweep_id) if resume else {}
        trials = expand_trials(sweep)
        results = {
            trial.index: TrialResult(
                index=trial.index,
                params=dict(trial.params),
                seed=trial.seed,
                trial_digest=trial.trial_digest,
            )
            for trial in trials
        }
        with self.tracer.span(
            "sweep",
            sweep_id=sweep.sweep_id,
            method=sweep.method,
            trials=len(trials),
            rungs=sweep.num_rungs,
        ):
            alive = list(trials)
            for rung in range(sweep.num_rungs):
                alive = self._run_rung(
                    sweep, values, origins, rung, alive, results,
                    completed, on_trial,
                )
        return self._report(sweep, results)

    # -- rung execution -----------------------------------------------------

    @staticmethod
    def _origins(sweep: SweepSpec, n: int) -> list[int]:
        stride = sweep.horizon if sweep.stride is None else sweep.stride
        origins = [
            n - sweep.horizon - k * stride for k in range(sweep.num_windows)
        ][::-1]
        if origins[0] < 4:
            raise DataError(
                f"series of {n} points too short for "
                f"{sweep.num_windows} windows of horizon {sweep.horizon} "
                f"(earliest origin would be {origins[0]})"
            )
        return origins

    def _run_rung(
        self, sweep, values, origins, rung, alive, results, completed,
        on_trial,
    ):
        window_count = sweep.windows_for_rung(rung)
        rung_origins = origins[-window_count:]
        offsets = list(
            range(sweep.num_windows - window_count, sweep.num_windows)
        )
        pending: list[Trial] = []
        for trial in alive:
            record = completed.get((trial.trial_digest, rung))
            if record is None:
                pending.append(trial)
                continue
            result = results[trial.index]
            result.resumed_rungs += 1
            if record.get("outcome") == "ok":
                result.scores[rung] = float(record["score"])
            else:
                result.outcome = "error"
                result.error = record.get("error")
        if pending:

            def finish(trial: Trial, score, error) -> None:
                """Commit one fresh evaluation: result, ledger, callback.

                The ledger append happens *before* the callback, so a
                crash in (or after) the callback never loses the score.
                """
                result = results[trial.index]
                result.executed_rungs += 1
                if error is None:
                    result.scores[rung] = score
                else:
                    result.outcome = "error"
                    result.error = error
                self._record(sweep, trial, rung, window_count, score, error)
                if on_trial is not None:
                    on_trial(trial, rung, score)

            self._evaluate(
                sweep, pending, values, rung_origins, offsets, finish
            )
        survivors = [
            trial for trial in alive
            if results[trial.index].outcome == "ok"
            and rung in results[trial.index].scores
        ]
        if rung == sweep.num_rungs - 1:
            return survivors
        keep = max(1, math.ceil(len(survivors) / sweep.eta))
        ranked = sorted(
            survivors,
            key=lambda t: (results[t.index].scores[rung], t.index),
        )
        kept = ranked[:keep]
        kept_indices = {trial.index for trial in kept}
        for trial in survivors:
            if trial.index not in kept_indices:
                results[trial.index].outcome = "pruned"
        return sorted(kept, key=lambda t: t.index)

    def _evaluate(self, sweep, pending, values, origins, offsets, finish):
        """Score every pending trial on the rung's windows.

        Calls ``finish(trial, score_or_None, error_or_None)`` per trial,
        in trial order, as soon as that trial's score is ready — the hook
        writes the ledger record, so completed trials survive a crash
        even while later trials are still in flight.
        """
        if sweep.method.startswith("multicast-"):
            self._evaluate_multicast(
                sweep, pending, values, origins, offsets, finish
            )
        else:
            self._evaluate_baseline(
                sweep, pending, values, origins, offsets, finish
            )

    def _evaluate_multicast(
        self, sweep, pending, values, origins, offsets, finish
    ):
        scheme = sweep.method.split("-", 1)[1]
        jobs: list[tuple[Trial, list]] = []
        for trial in pending:
            try:
                template = ForecastSpec(
                    scheme=scheme, **_fold_sax(trial.params)
                )
                specs = [
                    template.replace(
                        series=values[:origin],
                        horizon=sweep.horizon,
                        seed=trial.seed + offset,
                    )
                    for origin, offset in zip(origins, offsets)
                ]
            except ReproError as error:
                finish(trial, None, str(error))
                continue
            if self.engine is not None:
                # Fan every spec out immediately; results are collected
                # per trial below, in deterministic trial order.
                work = [self.engine.submit(spec) for spec in specs]
            else:
                work = [_LocalResponse(spec) for spec in specs]
            jobs.append((trial, work))
        for trial, work in jobs:
            with self.tracer.span(
                "sweep:trial",
                sweep_id=sweep.sweep_id,
                trial_digest=trial.trial_digest,
                trial_index=trial.index,
                windows=len(work),
            ):
                try:
                    errors = [
                        _window_rmse(
                            values, origin, sweep.horizon,
                            _resolve(item).values,
                        )
                        for origin, item in zip(origins, work)
                    ]
                    finish(trial, _finite_mean(errors), None)
                except ReproError as error:
                    finish(trial, None, str(error))

    def _evaluate_baseline(
        self, sweep, pending, values, origins, offsets, finish
    ):
        supports_seed = "seed" in estimator_param_names(sweep.method)
        for trial in pending:
            with self.tracer.span(
                "sweep:trial",
                sweep_id=sweep.sweep_id,
                trial_digest=trial.trial_digest,
                trial_index=trial.index,
                windows=len(origins),
            ):
                try:
                    errors = []
                    for origin, offset in zip(origins, offsets):
                        params = dict(trial.params)
                        if supports_seed and "seed" not in params:
                            params["seed"] = trial.seed + offset
                        estimator = make_estimator(sweep.method, **params)
                        estimator.fit(values[:origin])
                        forecast = estimator.predict(sweep.horizon)
                        errors.append(
                            _window_rmse(
                                values, origin, sweep.horizon, forecast
                            )
                        )
                    finish(trial, _finite_mean(errors), None)
                except ReproError as error:
                    finish(trial, None, str(error))

    # -- bookkeeping --------------------------------------------------------

    def _record(self, sweep, trial, rung, windows, score, error) -> None:
        if self.ledger is None:
            return
        self.ledger.append(
            {
                "kind": "sweep_trial",
                "sweep_id": sweep.sweep_id,
                "trial_digest": trial.trial_digest,
                "trial_index": trial.index,
                "rung": rung,
                "windows": windows,
                "method": sweep.method,
                "params": _jsonable(trial.params),
                "seed": trial.seed,
                "score": score,
                "outcome": "ok" if error is None else "error",
                "error": error,
            }
        )

    def _completed(self, sweep_id: str) -> dict:
        if self.ledger is None:
            raise ConfigError(
                "resume=True needs a ledger (the sweep's completed-trial "
                "journal); pass ledger= to SweepRunner"
            )
        try:
            records = read_ledger(self.ledger.path)
        except ConfigError:
            return {}
        completed = {}
        for record in records:
            if (
                record.get("kind") == "sweep_trial"
                and record.get("sweep_id") == sweep_id
            ):
                completed[(record["trial_digest"], record["rung"])] = record
        return completed

    def _report(self, sweep: SweepSpec, results: dict) -> SweepReport:
        trials = [results[index] for index in sorted(results)]
        final_rung = sweep.num_rungs - 1
        candidates = [
            trial for trial in trials
            if trial.outcome == "ok" and final_rung in trial.scores
        ]
        best = min(
            candidates,
            key=lambda t: (t.scores[final_rung], t.index),
            default=None,
        )
        marginals: dict = {}
        for knob in sorted(sweep.space):
            by_value: dict = {}
            for trial in trials:
                if 0 not in trial.scores:
                    continue
                key = repr(trial.params.get(knob))
                by_value.setdefault(key, []).append(trial.scores[0])
            marginals[knob] = {
                value: float(np.mean(scores))
                for value, scores in by_value.items()
            }
        return SweepReport(
            sweep_id=sweep.sweep_id,
            method=sweep.method,
            trials=trials,
            best_index=None if best is None else best.index,
            best_params=None if best is None else dict(best.params),
            best_score=(
                None if best is None else float(best.scores[final_rung])
            ),
            trials_run=sum(1 for t in trials if t.executed_rungs > 0),
            trials_resumed=sum(
                1 for t in trials
                if t.executed_rungs == 0 and t.resumed_rungs > 0
            ),
            trials_failed=sum(1 for t in trials if t.outcome == "error"),
            marginals=marginals,
        )


class _LocalResponse:
    """In-process stand-in for an engine response (``engine=None``)."""

    def __init__(self, spec: ForecastSpec) -> None:
        self._spec = spec

    @property
    def values(self) -> np.ndarray:
        """Run the spec through the core forecaster on first access."""
        return MultiCastForecaster().forecast(self._spec).values


def _resolve(item):
    """A submitted Future's response, or a local stand-in unchanged."""
    if isinstance(item, _LocalResponse):
        return item
    return item.result()


def _window_rmse(values, origin, horizon, forecast) -> float:
    actual = values[origin : origin + horizon]
    predicted = np.asarray(forecast, dtype=float)
    if predicted.shape != actual.shape:
        raise DataError(
            f"forecast shape {predicted.shape} does not match the "
            f"held-out window {actual.shape}"
        )
    return float(np.sqrt(np.mean((actual - predicted) ** 2)))


def _finite_mean(errors) -> float:
    mean = float(np.mean(errors))
    if not np.isfinite(mean):
        raise DataError("backtest produced a non-finite score")
    return mean


def _jsonable(params: dict) -> dict:
    out = {}
    for key, value in params.items():
        if isinstance(value, tuple):
            out[key] = list(value)
        elif isinstance(value, (np.integer,)):
            out[key] = int(value)
        elif isinstance(value, (np.floating,)):
            out[key] = float(value)
        else:
            out[key] = value
    return out

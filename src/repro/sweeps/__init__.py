"""Distributed hyperparameter sweeps over MultiCast knobs and baselines.

The paper's strongest classical baseline is a grid-searched LSTM; this
package is that search done at production scale, for *every* method:

* :class:`~repro.sweeps.spec.SweepSpec` — a declarative grid/random
  search space over :class:`~repro.core.spec.ForecastSpec` knobs
  (``b``/``w``/``a`` paper aliases included) or baseline estimator
  parameters, expanded into deterministic seed-derived
  :class:`~repro.sweeps.spec.Trial` lists;
* :class:`~repro.sweeps.runner.SweepRunner` — fans trials out through a
  :class:`~repro.serving.engine.ForecastEngine` or
  :class:`~repro.sharding.engine.ShardedEngine`, writes one ledger
  record per (trial, rung), supports crash-tolerant ``resume`` (completed
  trials are skipped by ``trial_digest``) and successive-halving early
  stopping on intermediate backtest windows;
* :class:`~repro.sweeps.report.SweepReport` — best-config selection plus
  per-knob marginals.

Same spec + seed ⇒ identical trial list, identical scores, and an
identical best config whether trials run in-process or across shards.
"""

from repro.sweeps.report import SweepReport, TrialResult
from repro.sweeps.runner import SweepRunner
from repro.sweeps.spec import KNOB_ALIASES, SweepSpec, Trial, expand_trials

__all__ = [
    "SweepSpec",
    "Trial",
    "expand_trials",
    "KNOB_ALIASES",
    "SweepRunner",
    "SweepReport",
    "TrialResult",
]

"""Sweep results: per-trial records, best-config selection, marginals.

The runner produces a :class:`SweepReport` — a plain, JSON-serialisable
summary: one :class:`TrialResult` per expanded trial (scores per rung,
outcome, whether each evaluation ran or was resumed from the ledger),
the winning configuration, and per-knob marginal mean scores computed on
the rung-0 scores (the one rung every trial participates in, so the
marginals are not survivorship-biased by early stopping).
"""

from __future__ import annotations

import dataclasses
import math

__all__ = ["TrialResult", "SweepReport"]


@dataclasses.dataclass
class TrialResult:
    """Everything the sweep learned about one trial.

    ``scores`` maps rung index → mean backtest RMSE at that rung;
    ``outcome`` is ``"ok"``, ``"error"`` (the trial raised and is out of
    the running) or ``"pruned"`` (eliminated by successive halving);
    ``executed_rungs``/``resumed_rungs`` count evaluations run fresh vs
    reused from the ledger.
    """

    index: int
    params: dict
    seed: int
    trial_digest: str
    scores: dict = dataclasses.field(default_factory=dict)
    outcome: str = "ok"
    error: str | None = None
    executed_rungs: int = 0
    resumed_rungs: int = 0

    @property
    def final_score(self) -> float | None:
        """The score at the deepest rung this trial reached."""
        if not self.scores:
            return None
        return self.scores[max(self.scores)]


@dataclasses.dataclass
class SweepReport:
    """The outcome of one sweep run.

    ``best_index``/``best_params``/``best_score`` select the surviving
    trial with the lowest final-rung score (ties broken by trial index,
    so selection is deterministic).  ``marginals`` maps each swept knob
    to ``{value-repr: mean rung-0 score}``.
    """

    sweep_id: str
    method: str
    trials: list
    best_index: int | None
    best_params: dict | None
    best_score: float | None
    trials_run: int
    trials_resumed: int
    trials_failed: int
    marginals: dict

    @property
    def num_trials(self) -> int:
        """Total expanded trials."""
        return len(self.trials)

    def to_dict(self) -> dict:
        """A JSON-serialisable dump of the whole report."""
        return {
            "sweep_id": self.sweep_id,
            "method": self.method,
            "num_trials": self.num_trials,
            "best_index": self.best_index,
            "best_params": self.best_params,
            "best_score": self.best_score,
            "trials_run": self.trials_run,
            "trials_resumed": self.trials_resumed,
            "trials_failed": self.trials_failed,
            "marginals": self.marginals,
            "trials": [dataclasses.asdict(trial) for trial in self.trials],
        }

    def format(self) -> str:
        """A human-readable summary table."""
        lines = [
            f"sweep {self.sweep_id} over {self.method}: "
            f"{self.num_trials} trials "
            f"({self.trials_run} run, {self.trials_resumed} resumed, "
            f"{self.trials_failed} failed)"
        ]
        if self.best_params is None:
            lines.append("  no trial produced a usable score")
        else:
            lines.append(
                f"  best: trial #{self.best_index} "
                f"score={self.best_score:.6g} params={self.best_params}"
            )
        for knob, by_value in self.marginals.items():
            cells = ", ".join(
                f"{value}={score:.4g}"
                for value, score in by_value.items()
                if not math.isnan(score)
            )
            lines.append(f"  marginal {knob}: {cells}")
        return "\n".join(lines)

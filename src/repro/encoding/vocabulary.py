"""Token vocabularies mapping surface tokens to integer corpus ids.

A :class:`Vocabulary` is the single source of truth for the id space the
language-model substrate operates in.  Two builders cover the paper's cases:

* :func:`digit_vocabulary` — ``0``-``9`` plus the comma separator, the
  constrained output alphabet of LLMTime and raw MultiCast;
* :func:`sax_vocabulary` — a SAX alphabet (alphabetical or digital symbols)
  plus the comma separator, used after quantization.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.exceptions import EncodingError

__all__ = ["Vocabulary", "digit_vocabulary", "sax_vocabulary"]


class Vocabulary:
    """An ordered, immutable set of string tokens with dense integer ids."""

    def __init__(self, tokens: Sequence[str]) -> None:
        if len(tokens) == 0:
            raise EncodingError("a vocabulary needs at least one token")
        if len(set(tokens)) != len(tokens):
            raise EncodingError("vocabulary tokens must be unique")
        for token in tokens:
            if not isinstance(token, str) or len(token) != 1:
                raise EncodingError(
                    f"tokens must be single characters, got {token!r}"
                )
        self._tokens = tuple(tokens)
        self._ids = {token: i for i, token in enumerate(self._tokens)}

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._ids

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Vocabulary) and self._tokens == other._tokens

    def __hash__(self) -> int:
        return hash(self._tokens)

    def __repr__(self) -> str:
        return f"Vocabulary({''.join(self._tokens)!r})"

    @property
    def tokens(self) -> tuple[str, ...]:
        return self._tokens

    def id_of(self, token: str) -> int:
        """Corpus id of ``token``; raises :class:`EncodingError` if unknown."""
        try:
            return self._ids[token]
        except KeyError:
            raise EncodingError(f"token {token!r} is not in the vocabulary") from None

    def token_of(self, token_id: int) -> str:
        """Surface token for ``token_id``."""
        if not 0 <= token_id < len(self._tokens):
            raise EncodingError(
                f"id {token_id} outside vocabulary of size {len(self._tokens)}"
            )
        return self._tokens[token_id]

    def encode(self, tokens: Iterable[str]) -> list[int]:
        """Map surface tokens to corpus ids."""
        return [self.id_of(t) for t in tokens]

    def decode(self, ids: Iterable[int]) -> list[str]:
        """Map corpus ids back to surface tokens."""
        return [self.token_of(i) for i in ids]

    def ids_of(self, tokens: Iterable[str]) -> frozenset[int]:
        """Id set for a group of tokens (used to build logit constraints)."""
        return frozenset(self.id_of(t) for t in tokens)


def digit_vocabulary() -> Vocabulary:
    """The numeric vocabulary the paper constrains generation to: [0-9,]."""
    return Vocabulary([str(d) for d in range(10)] + [","])


def sax_vocabulary(symbols: Sequence[str]) -> Vocabulary:
    """A vocabulary for SAX symbols plus the comma separator.

    ``symbols`` is the SAX alphabet in breakpoint order (e.g. ``"abcde"``).
    """
    if "," in symbols:
        raise EncodingError("the separator ',' cannot be a SAX symbol")
    return Vocabulary(list(symbols) + [","])

"""Tokenization: turning integer-coded series into corpus-id streams.

The paper treats *each digit as a separate token* and replaces tokens with
"their corresponding corpus id before being passed onto the model" (Section
III-A).  This package provides the vocabulary (digits + separator, or a SAX
alphabet), the digit codec, and stream parsing with error recovery for
model outputs that are not perfectly formed.
"""

from repro.encoding.vocabulary import (
    Vocabulary,
    digit_vocabulary,
    sax_vocabulary,
)
from repro.encoding.tokenizer import (
    DigitCodec,
    SEPARATOR,
    parse_token_stream,
    render_token_stream,
)

__all__ = [
    "Vocabulary",
    "digit_vocabulary",
    "sax_vocabulary",
    "DigitCodec",
    "SEPARATOR",
    "parse_token_stream",
    "render_token_stream",
]

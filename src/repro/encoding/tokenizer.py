"""Digit-level codec and token-stream parsing with error recovery.

MultiCast serialises an integer-coded series as fixed-width digit groups
separated by commas.  The model's continuation is parsed back with
:func:`parse_token_stream`, which must survive imperfect output: truncated
final groups, over-long groups, or a missing trailing separator.  (With the
structured logit constraint the stream is always perfectly formed; the lenient
parser is what makes the *unconstrained* ablation runnable.)
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import EncodingError

__all__ = ["SEPARATOR", "DigitCodec", "parse_token_stream", "render_token_stream"]

SEPARATOR = ","


class DigitCodec:
    """Encode non-negative integers as fixed-width digit-token groups.

    Parameters
    ----------
    num_digits:
        Width ``b`` of every group; an integer must fit in ``b`` digits.
    """

    def __init__(self, num_digits: int) -> None:
        if num_digits < 1:
            raise EncodingError(f"num_digits must be >= 1, got {num_digits}")
        self.num_digits = num_digits

    @property
    def max_value(self) -> int:
        return 10**self.num_digits - 1

    @property
    def pad_token(self) -> str:
        """Completion token for cut-off groups (missing low-order digits)."""
        return "0"

    def digits_of(self, value: int) -> list[str]:
        """Zero-padded digit tokens of ``value``, most significant first."""
        value = int(value)
        if not 0 <= value <= self.max_value:
            raise EncodingError(
                f"value {value} does not fit in {self.num_digits} digits"
            )
        return list(str(value).zfill(self.num_digits))

    def value_of(self, digits: Sequence[str]) -> int:
        """Parse a full group of digit tokens back to an integer."""
        if len(digits) != self.num_digits:
            raise EncodingError(
                f"expected {self.num_digits} digits, got {len(digits)}"
            )
        return self.value_of_partial(digits)

    def value_of_partial(self, digits: Sequence[str]) -> int:
        """Parse any non-empty digit prefix, treating it as left-aligned.

        A truncated group like ``["4", "2"]`` under ``num_digits=3`` is read
        as 420 — the natural completion when generation stopped mid-group.
        """
        if len(digits) == 0:
            raise EncodingError("cannot parse an empty digit group")
        text = "".join(digits)
        if not text.isdigit():
            raise EncodingError(f"non-digit tokens in group: {digits!r}")
        return int(text.ljust(self.num_digits, "0")[: self.num_digits])


def render_token_stream(values: Sequence[int], codec: DigitCodec) -> list[str]:
    """Serialise integers as digit tokens with comma separators between them."""
    tokens: list[str] = []
    for i, value in enumerate(values):
        if i:
            tokens.append(SEPARATOR)
        tokens.extend(codec.digits_of(value))
    return tokens


def parse_token_stream(
    tokens: Sequence[str],
    codec: DigitCodec,
    strict: bool = False,
) -> np.ndarray:
    """Parse a digit/comma token stream back into integers.

    In lenient mode (default) the parser:

    * accepts a truncated final group (parsed via left-alignment),
    * splits over-long digit runs every ``num_digits`` tokens,
    * skips empty groups produced by doubled separators.

    With ``strict=True`` any such malformation raises :class:`EncodingError`,
    which is what the round-trip property tests assert against.
    """
    values: list[int] = []
    group: list[str] = []

    def flush(final: bool) -> None:
        if not group:
            if strict and not final:
                raise EncodingError("empty group between separators")
            return
        if strict and len(group) != codec.num_digits:
            raise EncodingError(
                f"group {''.join(group)!r} has {len(group)} digits, "
                f"expected {codec.num_digits}"
            )
        values.append(codec.value_of_partial(group))
        group.clear()

    for token in tokens:
        if token == SEPARATOR:
            flush(final=False)
        elif len(token) == 1 and token.isdigit():
            group.append(token)
            if not strict and len(group) == codec.num_digits:
                # Over-long runs (missing separator) split at the group width.
                values.append(codec.value_of(group))
                group.clear()
        else:
            raise EncodingError(f"unexpected token {token!r} in numeric stream")
    flush(final=True)
    return np.asarray(values, dtype=np.int64)

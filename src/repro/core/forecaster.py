"""The MultiCast forecaster: the paper's full pipeline, end to end.

Raw path (Section III-A)::

    history (n, d) floats
      └─ FixedDigitScaler per dimension      → (n, d) integers
          └─ multiplexer (DI/VI/VC)          → one digit/comma token stream
              └─ corpus ids                  → LLM prompt
                  └─ constrained sampling ×S → S continuation streams
                      └─ demultiplex         → S × (h, d) integer matrices
                          └─ descale         → S × (h, d) float forecasts
                              └─ median      → (h, d) point forecast

SAX path (Section III-B): each dimension is SAX-quantized first (PAA on the
time axis, Gaussian breakpoints on the value axis), so one *symbol* per
segment replaces ``num_digits`` digit tokens per timestamp — the >10×
execution-time win of Tables VIII-IX — and the multiplexers run unchanged
over symbol cells.  Generated symbols are decoded back to piecewise-constant
values through the per-dimension encoder.

The serialisation half of both paths lives in :mod:`repro.strategies`
(``DigitStrategy`` and ``SaxStrategy``, plus the patch-aggregate,
decompose-then-forecast and auto strategies); the forecaster keeps the
sampling half — validation, seasonal adjustment, prompt ingest, the
ingest-state cache, batched/continuous/pooled decoding — and hands it to
the selected strategy through :class:`_StrategyContext`.
"""

from __future__ import annotations

import itertools
import os
import threading
import warnings
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace

import numpy as np

from repro.core.config import MultiCastConfig
from repro.core.multiplex import Multiplexer, get_multiplexer
from repro.core.output import ForecastOutput
from repro.core.spec import ForecastSpec
from repro.core.timing import StageClock
from repro.decomposition import SeasonalAdjuster, estimate_period
from repro.encoding import SEPARATOR
from repro.encoding.vocabulary import Vocabulary
from repro.exceptions import ConfigError, DataError, GenerationError
from repro.llm import (
    Constraint,
    PeriodicPatternConstraint,
    SetConstraint,
    child_seeds,
    get_model,
)
from repro.llm.interface import GenerationResult
from repro.llm.simulated import PrefilledSession, SimulatedLLM
from repro.llm.state_cache import IngestStateCache
from repro.observability.spans import NULL_TRACER

__all__ = ["MultiCastForecaster", "SampleRunner", "SampleTask", "run_sequentially"]

#: One deferred constrained sample draw; calling it performs the draw.
SampleTask = Callable[[], GenerationResult]

#: Executes a batch of sample tasks and returns their results *in task
#: order*.  A runner may return ``None`` in place of a result to report a
#: draw it abandoned (failed or timed out); the forecaster then aggregates
#: the surviving samples and flags the output as partial.  Tasks are
#: self-contained (each builds its own RNG from a precomputed seed), so a
#: runner may execute them concurrently and in any order.
SampleRunner = Callable[[list[SampleTask]], list[GenerationResult | None]]


def run_sequentially(tasks: list[SampleTask]) -> list[GenerationResult | None]:
    """The default sample runner: draw in order on the calling thread."""
    return [task() for task in tasks]


def _run_pooled(tasks: list[SampleTask]) -> list[GenerationResult | None]:
    """Transient thread-pool runner for ``execution="pooled"`` without an
    injected runner (the serving engine injects its own pool instead)."""
    workers = max(1, min(len(tasks), os.cpu_count() or 4))
    with ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="mc-sample"
    ) as pool:
        futures = [pool.submit(task) for task in tasks]
        return [future.result() for future in futures]


class _SharedPrefill:
    """One lazy prompt ingest shared by every sample draw of a request.

    The first draw that asks for the session performs the prefill (under
    its own ``sample_draw`` span, so a failed ingest fails only that draw
    and is retried with it); every later draw — possibly on another pool
    thread — receives the same frozen session and just forks it.
    """

    def __init__(
        self,
        model: SimulatedLLM,
        prompt_ids: list[int],
        state_cache: IngestStateCache | None,
    ) -> None:
        self._model = model
        self._prompt_ids = prompt_ids
        self._state_cache = state_cache
        self._lock = threading.Lock()
        self.session: PrefilledSession | None = None

    def acquire(self, tracer) -> PrefilledSession:
        """The shared session, prefilling under ``tracer`` if not yet done."""
        with self._lock:
            if self.session is None:
                self.session = self._model.prefill(
                    self._prompt_ids,
                    tracer=tracer,
                    state_cache=self._state_cache,
                )
            return self.session


class MultiCastForecaster:
    """Zero-shot multivariate forecaster driven by a (simulated) LLM.

    Example
    -------
    >>> from repro.core import ForecastSpec, MultiCastForecaster
    >>> from repro.data import gas_rate
    >>> history, future = gas_rate().train_test_split()
    >>> spec = ForecastSpec(series=history, horizon=len(future), scheme="di")
    >>> output = MultiCastForecaster().forecast(spec)
    >>> output.values.shape == future.shape
    True

    By default the prompt is ingested once per request and every sample
    draw forks the prefilled model (``share_prefill=True``); passing an
    :class:`~repro.llm.state_cache.IngestStateCache` additionally reuses
    prefilled state *across* requests (exact repeats fork it, extended
    histories advance only the new suffix).  Neither changes outputs:
    under a fixed seed, results are bit-identical to re-ingesting per
    draw (``share_prefill=False``, the legacy path kept for A/B tests).
    """

    def __init__(
        self,
        config: MultiCastConfig | None = None,
        *,
        sample_runner: SampleRunner | None = None,
        tracer=None,
        state_cache: IngestStateCache | None = None,
        share_prefill: bool = True,
        stop: Callable[[], bool] | None = None,
        scheduler=None,
    ) -> None:
        self.config = config or MultiCastConfig()
        self._multiplexer: Multiplexer = get_multiplexer(self.config.scheme)
        self._sample_runner: SampleRunner = sample_runner or run_sequentially
        self._tracer = NULL_TRACER if tracer is None else tracer
        self._state_cache = state_cache
        self._share_prefill = share_prefill
        self._stop = stop
        self._scheduler = scheduler

    # -- public API -----------------------------------------------------------

    def forecast(
        self,
        spec: ForecastSpec | np.ndarray,
        horizon: int | None = None,
        seed: int | None = None,
        tracer=None,
    ) -> ForecastOutput:
        """Run one forecast described by a :class:`ForecastSpec`.

        The spec is self-contained: its pipeline fields replace the
        constructor's ``config`` entirely, and its ``execution`` field
        selects how the sample ensemble is driven (``"batched"`` — the
        lockstep scheduler, the default — ``"pooled"``, ``"sequential"``
        or ``"continuous"``; all bit-identical under the same seed).  The
        constructor keeps only execution machinery: sample runner, tracer,
        ingest-state cache, prefill sharing, stop callable.

        ``tracer`` (defaulting to the constructor's, defaulting to the
        no-op :data:`~repro.observability.NULL_TRACER`) receives one
        ``forecast`` root span per call with a ``stage:*`` child per
        pipeline stage and, depending on the execution mode, either
        ``sample_draw`` children per generation attempt or one
        ``llm:decode_batch`` span.  The root span's duration is *defined*
        as the sum of its stage spans — exactly
        :attr:`ForecastOutput.wall_seconds` — so the rendered trace and
        the flat ``timings`` dict never disagree.

        .. deprecated:: 1.1
            Calling ``forecast(history, horizon, seed=...)`` with a bare
            array still works but emits a :class:`DeprecationWarning`;
            build a :class:`ForecastSpec` instead (see ``docs/API.md``).
            The legacy form runs through the constructor's config and
            sample runner exactly as before, and produces an identical
            :class:`ForecastOutput`.
        """
        if isinstance(spec, ForecastSpec):
            if horizon is not None or seed is not None:
                raise ConfigError(
                    "pass horizon and seed inside the ForecastSpec, "
                    "not alongside it"
                )
            spec.require_series()
            worker = MultiCastForecaster(
                spec.config,
                sample_runner=self._sample_runner,
                tracer=self._tracer,
                state_cache=self._state_cache,
                share_prefill=self._share_prefill,
                stop=self._stop,
                scheduler=self._scheduler,
            )
            return worker._forecast_impl(
                spec.series, spec.horizon, spec.seed, tracer, mode=spec.execution
            )
        warnings.warn(
            "forecast(history, horizon, ...) is deprecated; pass a "
            "ForecastSpec (see the migration guide in docs/API.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._forecast_impl(spec, horizon, seed, tracer, mode=None)

    def _forecast_impl(
        self,
        history: np.ndarray,
        horizon: int,
        seed: int | None,
        tracer=None,
        mode: str | None = None,
    ) -> ForecastOutput:
        """The pipeline body shared by the spec and legacy entry points.

        ``mode`` is the resolved execution mode; ``None`` (legacy calls)
        means "whatever sample runner the constructor configured", which
        preserves the pre-spec behaviour exactly.
        """
        if horizon is None:
            raise DataError("horizon must be provided")
        values = np.asarray(history, dtype=float)
        if values.ndim == 1:
            values = values[:, None]
        if values.ndim != 2:
            raise DataError(f"expected (n, d) history, got shape {values.shape}")
        if values.shape[0] < 4:
            raise DataError("history too short to forecast from")
        if not np.isfinite(values).all():
            raise DataError("history contains NaN or inf")
        if horizon < 1:
            raise DataError(f"horizon must be >= 1, got {horizon}")

        # Deferred: repro.strategies imports core submodules, so a
        # module-level import here would cycle when the strategies
        # package is imported first.
        from repro.strategies.base import resolve_strategy

        tracer = self._tracer if tracer is None else tracer
        with tracer.span(
            "forecast",
            scheme=self._multiplexer.name,
            sax=self.config.sax is not None,
            model=self.config.model,
            horizon=int(horizon),
            dims=int(values.shape[1]),
            seed=int(self.config.seed if seed is None else seed),
        ) as root:
            clock = StageClock(tracer)
            adjusters = None
            if self.config.deseasonalize is not None:
                with clock.stage("deseasonalize"):
                    adjusters, values = self._seasonal_adjust(values)

            strategy = resolve_strategy(self.config.strategy, self.config)
            context = _StrategyContext(self, clock, tracer, mode)
            output = strategy.forecast(values, horizon, seed, context)

            if adjusters is not None:
                with clock.stage("deseasonalize"):
                    self._seasonal_restore(output, adjusters)
            output.timings = dict(clock.timings)
            output.wall_seconds = clock.total
            if root.is_recording:
                root.set_attribute(
                    "completed_samples", output.metadata.get("completed_samples")
                )
                root.set_attribute("generated_tokens", output.generated_tokens)
                root.set_attribute("prompt_tokens", output.prompt_tokens)
                root.set_attribute("strategy", output.metadata.get("strategy"))
                root.set_attribute("wall_seconds", round(clock.total, 9))
                root.finish(at=root.start_time + clock.total)
        output.assert_timing_invariant()
        return output

    # -- optional seasonal adjustment (extension, DESIGN.md §6) ----------------

    def _seasonal_adjust(
        self, values: np.ndarray
    ) -> tuple[list[SeasonalAdjuster | None], np.ndarray]:
        """Strip each dimension's additive seasonal component.

        Dimensions with no detectable/usable seasonality keep a ``None``
        adjuster and pass through unchanged.
        """
        setting = self.config.deseasonalize
        n, d = values.shape
        adjusters: list[SeasonalAdjuster | None] = []
        adjusted = values.copy()
        for k in range(d):
            period = (
                estimate_period(values[:, k]) if setting == "auto" else int(setting)
            )
            if period < 2 or n < 2 * period:
                adjusters.append(None)
                continue
            adjuster = SeasonalAdjuster(period).fit(values[:, k])
            adjusters.append(adjuster)
            adjusted[:, k] = adjuster.adjust(values[:, k])
        return adjusters, adjusted

    @staticmethod
    def _seasonal_restore(
        output: ForecastOutput, adjusters: list[SeasonalAdjuster | None]
    ) -> None:
        """Add each dimension's periodic seasonal extrapolation back."""
        for k, adjuster in enumerate(adjusters):
            if adjuster is None:
                continue
            output.values[:, k] = adjuster.restore(output.values[:, k])
            for s in range(output.num_samples):
                output.samples[s, :, k] = adjuster.restore(output.samples[s, :, k])
        output.metadata["deseasonalized"] = [
            adjuster.period if adjuster else None for adjuster in adjusters
        ]

    # -- shared generation machinery -------------------------------------------

    def _constraint(
        self, vocabulary: Vocabulary, value_tokens: str | tuple[str, ...],
        num_dims: int, width: int,
    ) -> Constraint:
        value_ids = vocabulary.ids_of(value_tokens)
        if not self.config.structured_constraint:
            return SetConstraint(value_ids | {vocabulary.id_of(SEPARATOR)})
        pattern = self._multiplexer.constraint_pattern(
            num_dims, width, value_ids, vocabulary.id_of(SEPARATOR)
        )
        return PeriodicPatternConstraint(pattern)

    def _run_samples(
        self,
        vocabulary: Vocabulary,
        prompt_ids: list[int],
        tokens_needed: int,
        constraint: Constraint,
        seed: int | None,
        tracer=NULL_TRACER,
        parent=None,
        mode: str | None = None,
    ) -> tuple[list[list[str]], int, float, dict]:
        """Draw the configured number of continuations.

        ``mode`` routes the ensemble through one of four executions, all
        bit-identical under the same seed:

        * ``"batched"`` — one :class:`~repro.llm.batch.BatchedDecoder`
          advances every stream in lockstep from the shared prefilled
          session (one ``llm:decode_batch`` span instead of per-draw
          ``sample_draw`` spans); the constructor's ``stop`` callable is
          polled between steps, so a deadline abandons only still-live
          streams and the forecast proceeds on the partial ensemble.
        * ``"continuous"`` — the streams join the shared cross-request
          :class:`~repro.scheduling.ContinuousScheduler` (the
          constructor's injected one, else a transient single-request
          instance), which also owns prompt ingest through its radix
          prefill tree when one is attached.
        * ``"pooled"`` — per-draw tasks on the constructor's injected
          runner, or a transient thread pool when none was injected.
        * ``"sequential"`` — per-draw tasks in order on this thread.
        * ``None`` (legacy ``forecast(history, horizon)`` calls) —
          whatever runner the constructor configured, exactly the
          pre-spec behaviour.

        Per-draw tasks are self-contained (each builds its RNG from a
        precomputed child seed) so a runner may execute them concurrently,
        in any order, or retry one from scratch, without changing the
        result, and may return ``None`` for draws it abandoned; as long as
        at least one survives, the forecast proceeds.

        The prompt is ingested *once*: the first draw to run prefills the
        model (through the ingest-state cache if one is attached) and every
        draw forks that shared state, so its ``llm:generate`` span carries
        ``ingest="fork"`` and only the ingesting draw nests an
        ``llm:ingest`` span.  Draws still sample with their own seeds, so
        outputs match the per-draw re-ingest path bit for bit.

        Every *invocation* of a task opens a ``sample_draw`` span attached
        to ``parent`` (the ``stage:generate`` span) — tasks may run on
        pool threads, so the parent is bound explicitly rather than taken
        from the ambient stack.  A retried draw shows up as a second
        ``sample_draw`` span with ``attempt=2``.

        Returns (decoded token streams, total generated tokens, simulated
        seconds, execution/ingest info dict).  Simulated seconds charge
        the prompt ingest once plus decode per completed sample — a
        deterministic model of the shared-prefill execution, independent
        of cache state *and* execution mode so that every run of one
        request reports identical costs.
        """
        config = self.config
        model = get_model(config.model, vocab_size=len(vocabulary))
        rng = np.random.default_rng(config.seed if seed is None else seed)
        seeds = child_seeds(rng, config.num_samples)
        prefill = (
            _SharedPrefill(model, prompt_ids, self._state_cache)
            if self._share_prefill
            else None
        )

        if mode == "batched":
            results, execution_info = self._run_batched(
                model, prompt_ids, tokens_needed, constraint, seeds,
                prefill, tracer,
            )
        elif mode == "continuous":
            results, execution_info = self._run_continuous(
                model, prompt_ids, tokens_needed, constraint, seeds, tracer,
            )
        else:
            runner = self._resolve_runner(mode)
            execution_info = {
                "execution": (
                    "sequential" if runner is run_sequentially else "pooled"
                ),
            }
            make_task = self._make_draw_task(
                model, prompt_ids, tokens_needed, constraint, prefill,
                tracer, parent,
            )
            results = runner([make_task(i, s) for i, s in enumerate(seeds)])
        completed = [r for r in results if r is not None]
        if not completed:
            raise GenerationError(
                "every sample draw failed or was abandoned by the runner"
            )
        streams = [vocabulary.decode(result.tokens) for result in completed]
        generated = sum(len(result.tokens) for result in completed)
        simulated = model.cost.seconds(len(prompt_ids), 0) + sum(
            model.cost.seconds(0, len(result.tokens)) for result in completed
        )
        session = prefill.session if prefill else None
        ingest_info = {
            "ingest": session.outcome if session else "per-draw",
            "ingested_tokens": (
                session.ingested_tokens
                if session
                else len(completed) * len(prompt_ids)
            ),
            **execution_info,
        }
        return streams, generated, simulated, ingest_info

    def _resolve_runner(self, mode: str | None) -> SampleRunner:
        """The per-draw sample runner for a non-batched execution mode."""
        if mode == "sequential":
            return run_sequentially
        if mode == "pooled":
            if self._sample_runner is not run_sequentially:
                return self._sample_runner  # the injected (engine) pool
            return _run_pooled
        if mode is None:
            return self._sample_runner
        raise ConfigError(f"unknown execution mode {mode!r}")

    def _run_batched(
        self,
        model,
        prompt_ids: list[int],
        tokens_needed: int,
        constraint: Constraint,
        seeds: list[int],
        prefill: "_SharedPrefill | None",
        tracer,
    ) -> tuple[list[GenerationResult | None], dict]:
        """Decode the whole ensemble through one lockstep batched pass."""
        if prefill is not None:
            session = prefill.acquire(tracer)
        else:
            session = model.prefill(
                prompt_ids, tracer=tracer, state_cache=self._state_cache
            )
        decoder = model.generate_batch(
            prompt_ids,
            tokens_needed,
            [np.random.default_rng(s) for s in seeds],
            constraint=constraint,
            temperature=self.config.temperature,
            tracer=tracer,
            session=session,
            stop=self._stop,
        )
        info = {
            "execution": "batched",
            "batch_occupancy": list(decoder.occupancy),
            "batch_groups": list(decoder.group_counts),
        }
        if prefill is None:
            # The shared-prefill bookkeeping in _run_samples sees no
            # session; report the decoder's own single ingest instead.
            info["ingest"] = session.outcome
            info["ingested_tokens"] = session.ingested_tokens
        if decoder.stopped:
            info["stopped"] = True
        return decoder.results, info

    def _run_continuous(
        self,
        model,
        prompt_ids: list[int],
        tokens_needed: int,
        constraint: Constraint,
        seeds: list[int],
        tracer,
    ) -> tuple[list[GenerationResult | None], dict]:
        """Decode the ensemble through the shared cross-request scheduler.

        With an injected scheduler (the serving engine's), this request's
        streams join whatever other requests are resident; without one, a
        transient single-request scheduler runs the same code path.  Either
        way the results are bit-identical to ``"batched"`` under the same
        seeds (see :mod:`repro.scheduling`).
        """
        scheduler = self._scheduler
        transient = None
        if scheduler is None:
            from repro.scheduling import ContinuousScheduler

            transient = scheduler = ContinuousScheduler(
                max_resident_streams=max(1, len(seeds))
            )
        if scheduler.prefill_tree is None:
            # No radix tree attached: let the scheduler's fallback prefill
            # still reuse this forecaster's flat ingest-state cache.
            model.state_cache = self._state_cache
        try:
            handle = scheduler.submit(
                model,
                prompt_ids,
                tokens_needed,
                [np.random.default_rng(s) for s in seeds],
                constraint=constraint,
                temperature=self.config.temperature,
                tracer=tracer,
                stop=self._stop,
            )
            results = handle.result()
        finally:
            if transient is not None:
                transient.close()
        info = {
            "execution": "continuous",
            "batch_occupancy": list(handle.occupancy),
            "batch_groups": list(handle.group_counts),
            "ingest": handle.ingest,
            "ingested_tokens": handle.ingested_tokens,
            "queue_wait_seconds": handle.queue_wait_seconds,
        }
        if handle.stopped:
            info["stopped"] = True
        return results, info

    def _make_draw_task(
        self,
        model,
        prompt_ids: list[int],
        tokens_needed: int,
        constraint: Constraint,
        prefill: "_SharedPrefill | None",
        tracer,
        parent,
    ) -> Callable[[int, int], SampleTask]:
        """A factory of self-contained per-draw tasks (see `_run_samples`)."""
        config = self.config

        def make_task(index: int, sample_seed: int) -> SampleTask:
            attempts = itertools.count(1)

            def draw() -> GenerationResult:
                with tracer.span(
                    "sample_draw",
                    parent=parent,
                    sample_index=index,
                    seed=int(sample_seed),
                    attempt=next(attempts),
                ) as span:
                    session = prefill.acquire(tracer) if prefill else None
                    result = model.generate(
                        prompt_ids,
                        tokens_needed,
                        np.random.default_rng(sample_seed),
                        constraint=constraint,
                        temperature=config.temperature,
                        tracer=tracer,
                        session=session,
                    )
                    span.set_attribute("tokens_generated", len(result.tokens))
                    return result

            return draw

        return make_task

    def _truncate_rows(self, matrix: np.ndarray, width: int) -> np.ndarray:
        """Keep only the most recent rows whose stream fits the prompt budget."""
        per_row = self._multiplexer.tokens_per_timestamp(matrix.shape[1], width)
        max_rows = max(2, self.config.max_context_tokens // per_row)
        return matrix[-max_rows:]

    @staticmethod
    def _fit_rows(
        rows: np.ndarray, horizon: int, num_dims: int, fallback: np.ndarray
    ) -> np.ndarray:
        """Truncate or pad a demultiplexed sample to exactly ``horizon`` rows."""
        if rows.shape[0] >= horizon:
            return rows[:horizon]
        if rows.shape[0] == 0:
            return np.tile(np.asarray(fallback, dtype=float), (horizon, 1))
        pad = np.tile(rows[-1], (horizon - rows.shape[0], 1))
        return np.vstack([rows, pad])


class _StrategyContext:
    """:class:`~repro.strategies.base.StrategyContext` backed by a forecaster.

    Duck-typed rather than subclassed — the strategies package imports core
    submodules, so inheriting here would make the interface ABC part of an
    import cycle.  One context serves one request: it binds the request's
    stage clock, tracer and resolved execution mode over the forecaster's
    shared generation machinery.
    """

    def __init__(
        self,
        forecaster: MultiCastForecaster,
        clock: StageClock,
        tracer,
        mode: str | None,
    ) -> None:
        self.config = forecaster.config
        self.clock = clock
        self.multiplexer = forecaster._multiplexer
        self._forecaster = forecaster
        self._tracer = tracer
        self._mode = mode

    def run_samples(
        self, vocabulary, prompt_ids, tokens_needed, constraint, seed,
        generate_span,
    ):
        """Draw the sample ensemble (see `MultiCastForecaster._run_samples`)."""
        return self._forecaster._run_samples(
            vocabulary, prompt_ids, tokens_needed, constraint, seed,
            self._tracer, generate_span, self._mode,
        )

    def constraint(self, vocabulary, value_tokens, num_dims, width):
        """The generation constraint for the request's scheme and codec."""
        return self._forecaster._constraint(
            vocabulary, value_tokens, num_dims, width
        )

    def truncate_rows(self, matrix, width):
        """Drop old rows so the serialised prompt fits the token budget."""
        return self._forecaster._truncate_rows(matrix, width)

    def fit_rows(self, rows, horizon, num_dims, fallback):
        """Truncate or pad a demultiplexed sample to exactly ``horizon`` rows."""
        return self._forecaster._fit_rows(rows, horizon, num_dims, fallback)

    def subforecast(self, values, horizon, seed, label=""):
        """Run a nested forecast through the full request machinery.

        The sub-request shares the parent's execution mode, sample runner,
        ingest-state cache, prefill sharing, stop callable and scheduler —
        so it hits the ingest cache and the batched decoder exactly like a
        top-level request — but always runs the ``"default"`` strategy
        (composites never recurse) and never re-applies seasonal
        adjustment (the composite strategy owns seasonality).
        """
        parent = self._forecaster
        worker = MultiCastForecaster(
            replace(parent.config, strategy="default", deseasonalize=None),
            sample_runner=parent._sample_runner,
            tracer=self._tracer,
            state_cache=parent._state_cache,
            share_prefill=parent._share_prefill,
            stop=parent._stop,
            scheduler=parent._scheduler,
        )
        with self._tracer.span("subforecast", label=label):
            return worker._forecast_impl(
                values, horizon, seed, self._tracer, mode=self._mode
            )

"""MultiCast core: multiplexers, configuration, and the forecaster."""

from repro.core.aggregation import AGGREGATION_METHODS, aggregate_samples
from repro.core.config import PROMPT_STRATEGIES, MultiCastConfig, SaxConfig
from repro.core.estimator import (
    BaseEstimator,
    Estimator,
    PerDimension,
    positional_shim,
)
from repro.core.forecaster import (
    MultiCastForecaster,
    SampleRunner,
    run_sequentially,
)
from repro.core.multiplex import (
    MULTIPLEX_SCHEMES,
    BlockInterleaver,
    DigitInterleaver,
    Multiplexer,
    SaxSymbolCodec,
    ValueConcatenator,
    ValueInterleaver,
    get_multiplexer,
)
from repro.core.output import ForecastOutput
from repro.core.planning import ForecastPlan, plan_forecast
from repro.core.spec import (
    EXECUTION_MODES,
    ForecastSpec,
    canonicalize_sampling_options,
)
from repro.core.timing import STAGES, StageClock

__all__ = [
    "MultiCastConfig",
    "SaxConfig",
    "ForecastSpec",
    "EXECUTION_MODES",
    "PROMPT_STRATEGIES",
    "canonicalize_sampling_options",
    "Estimator",
    "BaseEstimator",
    "PerDimension",
    "positional_shim",
    "MultiCastForecaster",
    "SampleRunner",
    "run_sequentially",
    "StageClock",
    "STAGES",
    "ForecastOutput",
    "ForecastPlan",
    "plan_forecast",
    "Multiplexer",
    "DigitInterleaver",
    "ValueInterleaver",
    "ValueConcatenator",
    "BlockInterleaver",
    "SaxSymbolCodec",
    "get_multiplexer",
    "MULTIPLEX_SCHEMES",
    "aggregate_samples",
    "AGGREGATION_METHODS",
]

"""Per-stage wall-clock accounting for the forecast pipeline.

The paper's execution-time tables treat a forecast as one opaque number;
operating the pipeline as a service needs to know *where* the time goes
(scale → multiplex → generate → demultiplex → aggregate), both to populate
:attr:`~repro.core.output.ForecastOutput.timings` and to feed the serving
layer's latency histograms.

:class:`StageClock` is the bridge between that flat ``timings`` dict and
the hierarchical tracing layer (:mod:`repro.observability`): every
``stage(...)`` block opens a ``stage:<name>`` span on the clock's tracer
*and* accumulates the same duration into ``timings``, from one shared
measurement — so under tracing, each ``timings`` entry exactly equals the
summed duration of its stage spans, and ``wall_seconds`` (their sum)
exactly equals the rendered trace's root duration.  With the default
:data:`~repro.observability.NULL_TRACER` the span side costs nothing and
the clock behaves as the plain accumulator it always was.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.observability.spans import NULL_TRACER

__all__ = ["StageClock", "STAGES"]

#: Canonical pipeline stages, in execution order.  Optional stages (e.g.
#: ``deseasonalize``) may appear in a clock as well; these five always do.
STAGES = ("scale", "multiplex", "generate", "demultiplex", "aggregate")


class StageClock:
    """Accumulates elapsed seconds per named pipeline stage.

    Re-entering a stage adds to its total, so a stage split across two code
    paths (e.g. ``deseasonalize`` before and after generation) reports one
    combined number.

    ``tracer`` mirrors every stage as a ``stage:<name>`` span (attached to
    the tracer's ambient parent); the block receives the span, so call
    sites can attach attributes (``span.set_attribute("prompt_tokens",
    n)``) without separate plumbing.
    """

    def __init__(self, tracer=None) -> None:
        self.timings: dict[str, float] = {}
        self._tracer = NULL_TRACER if tracer is None else tracer

    @contextmanager
    def stage(self, name: str, **attributes):
        """Context manager timing one block under ``name``.

        Yields the stage's span (a no-op span when tracing is disabled).
        The accumulated duration and the span's duration come from the
        same measurement, so the two accountings never disagree.
        """
        with self._tracer.span(f"stage:{name}", **attributes) as span:
            started = time.perf_counter()
            try:
                yield span
            finally:
                ended = time.perf_counter()
                if span.is_recording:
                    span.finish(at=ended)
                    elapsed = span.duration
                else:
                    elapsed = ended - started
                self.timings[name] = self.timings.get(name, 0.0) + elapsed

    @property
    def total(self) -> float:
        """Sum of all recorded stage durations."""
        return float(sum(self.timings.values()))

    def __repr__(self) -> str:
        spans = ", ".join(f"{k}={v:.4f}s" for k, v in self.timings.items())
        return f"StageClock({spans})"

"""Per-stage wall-clock accounting for the forecast pipeline.

The paper's execution-time tables treat a forecast as one opaque number;
operating the pipeline as a service needs to know *where* the time goes
(scale → multiplex → generate → demultiplex → aggregate), both to populate
:attr:`~repro.core.output.ForecastOutput.timings` and to feed the serving
layer's latency histograms.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["StageClock", "STAGES"]

#: Canonical pipeline stages, in execution order.  Optional stages (e.g.
#: ``deseasonalize``) may appear in a clock as well; these five always do.
STAGES = ("scale", "multiplex", "generate", "demultiplex", "aggregate")


class StageClock:
    """Accumulates elapsed seconds per named pipeline stage.

    Re-entering a stage adds to its total, so a stage split across two code
    paths (e.g. ``deseasonalize`` before and after generation) reports one
    combined number.
    """

    def __init__(self) -> None:
        self.timings: dict[str, float] = {}

    @contextmanager
    def stage(self, name: str):
        """Context manager timing one block under ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.timings[name] = self.timings.get(name, 0.0) + elapsed

    @property
    def total(self) -> float:
        """Sum of all recorded stage durations."""
        return float(sum(self.timings.values()))

    def __repr__(self) -> str:
        spans = ", ".join(f"{k}={v:.4f}s" for k, v in self.timings.items())
        return f"StageClock({spans})"

"""The common ``Estimator`` protocol every forecaster implements.

The sweep subsystem (:mod:`repro.sweeps`) and the ecosystem adapters
(:mod:`repro.adapters`) both need to treat MultiCast strategies and the
classical baselines uniformly: construct from a flat parameter dict, fit
on a history, predict a horizon, and introspect/replace parameters.  This
module defines that contract once:

* :class:`Estimator` — a runtime-checkable protocol
  (``fit``/``predict``/``get_params``/``set_params``);
* :class:`BaseEstimator` — a mixin that implements the parameter
  machinery (``get_params``/``set_params``/``clone``/``get_test_params``)
  by introspecting the constructor signature, sklearn/sktime style;
* :func:`positional_shim` — a constructor decorator that keeps legacy
  positional calls (``ARIMA((1, 0, 0))``) working for one release behind
  a :class:`DeprecationWarning` (the pyproject filterwarnings promote
  first-party use of the deprecated Estimator API spellings to errors);
* :class:`PerDimension` — a meta-estimator that lifts a univariate
  estimator to ``(n, d)`` input by fitting one clone per dimension.

Every baseline constructor is keyword-only under this API; the canonical
parameter names are exactly the constructor keyword names, so
``type(est)(**est.get_params())`` always round-trips.
"""

from __future__ import annotations

import functools
import inspect
import warnings
from typing import Protocol, runtime_checkable

import numpy as np

from repro.exceptions import ConfigError, FittingError

__all__ = [
    "Estimator",
    "BaseEstimator",
    "PerDimension",
    "positional_shim",
]


@runtime_checkable
class Estimator(Protocol):
    """The uniform forecaster contract (structural — no inheritance needed).

    ``fit`` takes a history array (``(n, d)`` or 1-D, estimator-dependent)
    and returns ``self``; ``predict`` takes an integer horizon and returns
    the point forecast; ``get_params``/``set_params`` expose the
    constructor parameters as a flat dict so sweep runners and adapters
    can clone and re-parameterise any estimator without knowing its type.
    """

    def fit(self, history) -> "Estimator":
        """Train on a history array; return ``self``."""
        ...

    def predict(self, horizon: int) -> np.ndarray:
        """Point forecast for ``horizon`` steps past the fitted history."""
        ...

    def get_params(self) -> dict:
        """The constructor parameters as a flat dict."""
        ...

    def set_params(self, **params) -> "Estimator":
        """Re-parameterise in place (resets fitted state); return ``self``."""
        ...


def positional_shim(*names: str):
    """Keep legacy positional construction working behind a deprecation shim.

    Apply to a keyword-only ``__init__``; ``names`` gives the legacy
    positional order.  A positional call maps the arguments onto those
    keywords and emits a :class:`DeprecationWarning` naming the Estimator
    API (so the pyproject filterwarnings turn first-party legacy calls
    into errors).  ``inspect.signature`` still sees the wrapped
    keyword-only signature via ``__wrapped__``, which is what
    :meth:`BaseEstimator.get_params` introspects.
    """

    def decorate(init):
        @functools.wraps(init)
        def wrapper(self, *args, **kwargs):
            if args:
                if len(args) > len(names):
                    raise TypeError(
                        f"{type(self).__name__}() takes at most "
                        f"{len(names)} positional arguments ({len(args)} given)"
                    )
                warnings.warn(
                    f"positional arguments to {type(self).__name__}() are "
                    f"deprecated under the Estimator API; pass "
                    f"{', '.join(repr(n) for n in names[: len(args)])} by "
                    f"keyword",
                    DeprecationWarning,
                    stacklevel=2,
                )
                for name, value in zip(names, args):
                    if name in kwargs:
                        raise TypeError(
                            f"{type(self).__name__}() got multiple values "
                            f"for argument {name!r}"
                        )
                    kwargs[name] = value
            return init(self, **kwargs)

        return wrapper

    return decorate


class BaseEstimator:
    """Parameter machinery shared by every estimator.

    Subclasses get ``get_params``/``set_params``/``clone``/
    ``get_test_params`` for free.  The parameter names default to the
    constructor's keyword names (``__wrapped__`` is followed through
    :func:`positional_shim`); a subclass whose attributes diverge from its
    signature can override the :attr:`_PARAMS` tuple instead.  The default
    :meth:`predict` delegates to the subclass's classical ``forecast``
    method, so retrofit classes keep their historical surface.
    """

    #: Override to name parameters explicitly instead of introspecting.
    _PARAMS: tuple[str, ...] | None = None

    #: Cheap-but-valid parameter sets for contract tests, sktime style.
    _TEST_PARAMS: tuple[dict, ...] = ({},)

    @classmethod
    def _param_names(cls) -> tuple[str, ...]:
        """Canonical parameter names, from ``_PARAMS`` or the signature."""
        if cls._PARAMS is not None:
            return tuple(cls._PARAMS)
        signature = inspect.signature(cls.__init__)
        names = []
        for name, parameter in signature.parameters.items():
            if name == "self":
                continue
            if parameter.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                continue
            names.append(name)
        return tuple(names)

    def get_params(self) -> dict:
        """Current constructor parameters as a flat dict."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params) -> "BaseEstimator":
        """Replace parameters in place; unknown names raise ``ConfigError``.

        The estimator is rebuilt through its own constructor so every
        parameter is re-validated; fitted state is reset (a re-fit is
        required after changing parameters).
        """
        known = self._param_names()
        unknown = sorted(set(params) - set(known))
        if unknown:
            raise ConfigError(
                f"{type(self).__name__}.set_params got unknown parameters "
                f"{unknown}; valid parameters are {sorted(known)}"
            )
        merged = {**self.get_params(), **params}
        fresh = type(self)(**merged)
        self.__dict__.clear()
        self.__dict__.update(fresh.__dict__)
        return self

    def clone(self) -> "BaseEstimator":
        """A new unfitted estimator with identical parameters."""
        return type(self)(**self.get_params())

    @classmethod
    def get_test_params(cls) -> list[dict]:
        """Cheap valid parameter sets for contract tests (sktime idiom)."""
        return [dict(params) for params in cls._TEST_PARAMS]

    def predict(self, horizon: int) -> np.ndarray:
        """Point forecast; default delegates to the classical ``forecast``."""
        forecast = getattr(self, "forecast", None)
        if forecast is None:
            raise NotImplementedError(
                f"{type(self).__name__} defines neither predict() nor "
                f"forecast()"
            )
        return forecast(horizon)


class PerDimension(BaseEstimator):
    """Lift a univariate estimator to multivariate ``(n, d)`` input.

    Fits one :meth:`~BaseEstimator.clone` of the wrapped estimator per
    dimension and stacks the per-dimension predictions into a
    ``(horizon, d)`` array — the classical mirror of LLMTime's
    per-dimension loop.
    """

    def __init__(self, estimator) -> None:
        self.estimator = estimator
        self._fitted: list | None = None

    def fit(self, history) -> "PerDimension":
        """Fit an independent clone of the wrapped estimator per column."""
        values = np.asarray(history, dtype=float)
        if values.ndim == 1:
            values = values[:, None]
        if values.ndim != 2:
            raise FittingError(
                f"expected (n, d) history, got shape {values.shape}"
            )
        fitted = []
        for column in range(values.shape[1]):
            estimator = self.estimator.clone()
            estimator.fit(values[:, column])
            fitted.append(estimator)
        self._fitted = fitted
        return self

    def predict(self, horizon: int) -> np.ndarray:
        """Stack per-dimension forecasts into ``(horizon, d)``."""
        if self._fitted is None:
            raise FittingError("PerDimension used before fit()")
        columns = []
        for estimator in self._fitted:
            values = np.asarray(estimator.predict(horizon), dtype=float)
            columns.append(values.reshape(values.shape[0], -1)[:, 0])
        return np.stack(columns, axis=1)

    def clone(self) -> "PerDimension":
        """A new unfitted wrapper around a clone of the inner estimator."""
        return type(self)(self.estimator.clone())

    def get_params(self) -> dict:
        """The wrapped estimator's parameters (the wrapper is transparent)."""
        return self.estimator.get_params()

    def set_params(self, **params) -> "PerDimension":
        """Forward parameter updates to the wrapped estimator."""
        self.estimator.set_params(**params)
        self._fitted = None
        return self

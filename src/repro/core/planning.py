"""Token-budget planning: predict cost before running a forecast.

Hosted LLM APIs charge by token (the paper's motivation for SAX); a user
deciding between configurations wants the bill *before* the call.  All the
arithmetic already lives in the multiplexers and the cost model — this
module just composes it: given a config and problem size, report prompt
tokens, generated tokens, simulated seconds, and dollars.  The estimates
are exact (the property test pins them against real runs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MultiCastConfig
from repro.core.multiplex import get_multiplexer
from repro.exceptions import ConfigError
from repro.llm.simulated import _REGISTRY
from repro.sax.paa import num_segments

__all__ = ["ForecastPlan", "plan_forecast"]


@dataclass(frozen=True)
class ForecastPlan:
    """Predicted token/cost footprint of one forecast call."""

    prompt_tokens: int
    generated_tokens_per_sample: int
    num_samples: int
    simulated_seconds: float
    usd: float

    @property
    def generated_tokens(self) -> int:
        return self.generated_tokens_per_sample * self.num_samples

    @property
    def total_tokens(self) -> int:
        """Billing total: the prompt is re-sent for every sample."""
        return self.prompt_tokens * self.num_samples + self.generated_tokens


def plan_forecast(
    config: MultiCastConfig,
    history_length: int,
    num_dims: int,
    horizon: int,
) -> ForecastPlan:
    """Predict the exact token footprint of ``MultiCastForecaster.forecast``.

    Matches the pipeline's accounting: history rows are truncated to the
    prompt budget, one trailing separator is appended, and each sample
    generates ``horizon`` timestamps (``ceil(horizon / w)`` SAX segments on
    the quantized path).
    """
    if history_length < 4:
        raise ConfigError(f"history_length must be >= 4, got {history_length}")
    if num_dims < 1:
        raise ConfigError(f"num_dims must be >= 1, got {num_dims}")
    if horizon < 1:
        raise ConfigError(f"horizon must be >= 1, got {horizon}")
    try:
        spec = _REGISTRY[config.model]
    except KeyError:
        raise ConfigError(f"unknown model {config.model!r}") from None

    multiplexer = get_multiplexer(config.scheme)
    if config.sax is None:
        width = config.num_digits
        rows = history_length
        steps = horizon
    else:
        width = 1
        rows = num_segments(history_length, config.sax.segment_length)
        steps = num_segments(horizon, config.sax.segment_length)

    per_row = multiplexer.tokens_per_timestamp(num_dims, width)
    max_rows = max(2, config.max_context_tokens // per_row)
    rows = min(rows, max_rows)
    prompt_tokens = rows * per_row  # rows * per_row - 1 stream + 1 trailing sep
    generated_per_sample = steps * per_row

    # Simulated execution ingests the prompt once (shared prefill) and pays
    # decode per sample; billing (usd / total_tokens) still charges the
    # prompt per sample, since a hosted API re-sends it on every call.
    simulated = spec.cost.seconds(prompt_tokens, 0) + config.num_samples * (
        spec.cost.seconds(0, generated_per_sample)
    )
    usd = config.num_samples * spec.cost.dollars(
        prompt_tokens, generated_per_sample
    )
    return ForecastPlan(
        prompt_tokens=prompt_tokens,
        generated_tokens_per_sample=generated_per_sample,
        num_samples=config.num_samples,
        simulated_seconds=simulated,
        usd=usd,
    )

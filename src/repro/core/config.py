"""Configuration objects for the MultiCast pipeline.

Defaults follow the paper's Table II (bold values): 5 samples, SAX segment
length 6 and alphabet size 5 when quantization is enabled, and the
LLaMA2-backed model preset selected in Section IV-B.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.aggregation import AGGREGATION_METHODS
from repro.core.multiplex import MULTIPLEX_SCHEMES
from repro.exceptions import ConfigError
from repro.sax.encoder import SaxAlphabet

__all__ = ["MultiCastConfig", "SaxConfig", "PROMPT_STRATEGIES"]

#: The prompt-strategy names a config (or spec) may select.  ``"default"``
#: preserves the pre-strategy pipeline exactly: the raw digit path, or the
#: SAX path when ``sax`` is set.  The registry itself lives in
#: :mod:`repro.strategies`; the name tuple lives here so the config layer
#: can validate without importing the strategy implementations.
PROMPT_STRATEGIES = ("default", "digit", "sax", "patch", "decompose", "auto")


@dataclass(frozen=True)
class SaxConfig:
    """SAX quantization settings (paper Section III-B / Tables VIII-IX).

    ``segment_length`` is the x-axis quantization level (PAA window);
    ``alphabet_size`` the y-axis level; ``alphabet_kind`` selects
    alphabetical or digital symbols (digital caps at 10 — Table IX's N/A).
    """

    segment_length: int = 6
    alphabet_size: int = 5
    alphabet_kind: str = "alphabetical"
    reconstruction: str = "midpoint"

    def __post_init__(self) -> None:
        if self.segment_length < 1:
            raise ConfigError(
                f"segment_length must be >= 1, got {self.segment_length}"
            )
        # Delegate alphabet validation (size bounds per kind) to the factory.
        SaxAlphabet.of_kind(self.alphabet_kind, self.alphabet_size)
        if self.reconstruction not in ("midpoint", "expected"):
            raise ConfigError(
                f"reconstruction must be 'midpoint' or 'expected', "
                f"got {self.reconstruction!r}"
            )

    def alphabet(self) -> SaxAlphabet:
        """The configured symbol set."""
        return SaxAlphabet.of_kind(self.alphabet_kind, self.alphabet_size)


@dataclass(frozen=True)
class MultiCastConfig:
    """End-to-end MultiCast settings.

    Attributes
    ----------
    scheme:
        Multiplexing technique: ``"di"``, ``"vi"``, ``"vc"`` (paper) or
        ``"bi"`` (extension).
    num_digits:
        Digit budget per value after rescaling (ignored on the SAX path,
        where every value is a single symbol token).
    num_samples:
        Continuations drawn per forecast; the point forecast aggregates them.
    model:
        Backend preset name from :func:`repro.llm.available_models`.
    aggregation:
        ``"median"`` (paper), ``"mean"``, or ``"trimmed_mean"``.
    sax:
        Optional :class:`SaxConfig`; ``None`` runs the raw digit pipeline.
    structured_constraint:
        When True (default) generation follows the scheme's exact grammar;
        when False only the vocabulary-level ``[0-9,]`` mask applies and the
        lenient parser repairs the stream (the constrained-generation
        ablation).
    deseasonalize:
        Extension beyond the paper: strip each dimension's additive
        seasonal component (classical decomposition) before serialisation
        and add its periodic extrapolation back onto the forecast.  Pass a
        period (int >= 2), ``"auto"`` to detect it per dimension from the
        autocorrelation peak, or ``None`` (default, the paper's pipeline).
    temperature:
        Optional override of the backend preset's sampling temperature
        (e.g. 0 for greedy decoding).  ``None`` uses the preset's own value.
    max_context_tokens:
        Prompt budget; histories that serialise longer are truncated to the
        most recent timestamps that fit.
    strategy:
        Prompt-strategy name from :data:`PROMPT_STRATEGIES` — how the
        series becomes tokens (and back).  ``"default"`` (the paper's
        pipeline, selected by ``sax``), ``"digit"``/``"sax"`` to force one
        of those paths, ``"patch"`` (per-patch aggregate statistics,
        :class:`~repro.strategies.PatchAggregateStrategy`),
        ``"decompose"`` (trend/seasonal/residual forecast as separate
        sub-requests and recombined), or ``"auto"`` (picked per series
        from length, dimensionality and detected seasonality).
    patch_length:
        Patch width of the ``"patch"`` strategy (timestamps aggregated
        per emitted row); ignored by the other strategies.
    seed:
        Base RNG seed for reproducible sampling.
    """

    scheme: str = "vi"
    num_digits: int = 3
    num_samples: int = 5
    model: str = "llama2-7b-sim"
    aggregation: str = "median"
    sax: SaxConfig | None = None
    structured_constraint: bool = True
    deseasonalize: int | str | None = None
    temperature: float | None = None
    max_context_tokens: int = 4096
    strategy: str = "default"
    patch_length: int = 6
    seed: int = 0

    def __post_init__(self) -> None:
        if self.temperature is not None and self.temperature < 0.0:
            raise ConfigError(
                f"temperature must be >= 0, got {self.temperature}"
            )
        if self.deseasonalize is not None:
            if isinstance(self.deseasonalize, str):
                if self.deseasonalize != "auto":
                    raise ConfigError(
                        "deseasonalize must be an int >= 2, 'auto', or None; "
                        f"got {self.deseasonalize!r}"
                    )
            elif not isinstance(self.deseasonalize, int) or self.deseasonalize < 2:
                raise ConfigError(
                    f"deseasonalize period must be >= 2, got {self.deseasonalize}"
                )
        if self.scheme.lower() not in MULTIPLEX_SCHEMES:
            raise ConfigError(
                f"scheme must be one of {MULTIPLEX_SCHEMES}, got {self.scheme!r}"
            )
        if self.num_digits < 1:
            raise ConfigError(f"num_digits must be >= 1, got {self.num_digits}")
        if self.num_samples < 1:
            raise ConfigError(f"num_samples must be >= 1, got {self.num_samples}")
        if self.aggregation not in AGGREGATION_METHODS:
            raise ConfigError(
                f"aggregation must be one of {AGGREGATION_METHODS}, "
                f"got {self.aggregation!r}"
            )
        if self.max_context_tokens < 8:
            raise ConfigError("max_context_tokens must be >= 8")
        if self.strategy not in PROMPT_STRATEGIES:
            raise ConfigError(
                f"strategy must be one of {PROMPT_STRATEGIES}, "
                f"got {self.strategy!r}"
            )
        if self.patch_length < 1:
            raise ConfigError(
                f"patch_length must be >= 1, got {self.patch_length}"
            )

"""Dimensional multiplexing: the paper's central contribution (Section III-A).

A multiplexer flattens a ``(n, d)`` integer-coded multivariate series into a
single token stream an LLM can consume, and demultiplexes the model's output
stream back into ``d`` dimensions.  Three schemes from the paper, plus one
extension:

* **DI — digit interleaving** (Eq. 1): per timestamp, the digits of all
  dimensions are interleaved *digit-position first*: with ``d1=[17, 26]``
  and ``d2=[23, 31]`` the stream is ``1273,2361``.  All most-significant
  digits come first, which helps the model pin the scale early.
* **VI — value interleaving** (Eq. 2): per timestamp, whole values follow
  each other inside one composite group: ``1723,2631``.
* **VC — value concatenation** (Eq. 3): every value is its own
  comma-separated group: ``17,23,26,31`` — the easiest stream to
  internally demultiplex, at the cost of more separator tokens.
* **BI — block interleaving** (extension, not in the paper): like VI but the
  dimension order rotates by one position each timestamp, an ablation probe
  for how sensitive the model is to a fixed dimension order.

Every multiplexer is an exact inverse pair: ``demux(mux(x)) == x`` for
well-formed streams (a hypothesis property in the test-suite, fuzzed further
by :mod:`repro.fuzz`), and demux is lenient to truncated/malformed model
output.  By default an incomplete *trailing* timestamp is dropped — a
truncated final group carries only some dimensions, and guessing the missing
cells would bias the last forecast row; callers that prefer a conservative
completion (pad with the codec's mid/zero token) opt in with
``pad_incomplete=True``.  Malformed *interior* groups (only possible with
unconstrained generation) are still padded/truncated to keep row alignment.

Multiplexers are codec-generic: a cell codec renders one value as a fixed
number of tokens (``DigitCodec`` for raw digits; ``SaxSymbolCodec`` with
width 1 after quantization), so the same three schemes drive both the raw
and the SAX pipelines.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from repro.encoding.tokenizer import SEPARATOR
from repro.exceptions import ConfigError, EncodingError
from repro.sax.encoder import SaxAlphabet

__all__ = [
    "Multiplexer",
    "DigitInterleaver",
    "ValueInterleaver",
    "ValueConcatenator",
    "BlockInterleaver",
    "SaxSymbolCodec",
    "get_multiplexer",
    "MULTIPLEX_SCHEMES",
]


class SaxSymbolCodec:
    """A width-1 cell codec over a SAX alphabet (mirrors DigitCodec's API)."""

    def __init__(self, alphabet: SaxAlphabet) -> None:
        self.alphabet = alphabet
        self.num_digits = 1

    @property
    def max_value(self) -> int:
        return len(self.alphabet) - 1

    @property
    def pad_token(self) -> str:
        """Middle symbol — the conservative completion for a cut-off cell."""
        return self.alphabet.symbols[len(self.alphabet) // 2]

    def digits_of(self, value: int) -> list[str]:
        """Render a symbol index as its single surface token."""
        value = int(value)
        if not 0 <= value <= self.max_value:
            raise EncodingError(f"symbol index {value} outside the alphabet")
        return [self.alphabet.symbols[value]]

    def value_of_partial(self, tokens: Sequence[str]) -> int:
        """Parse one symbol token back to its alphabet index."""
        if len(tokens) != 1:
            raise EncodingError(f"expected one symbol token, got {list(tokens)!r}")
        return self.alphabet.index_of(tokens[0])


class Multiplexer(ABC):
    """Reduce a ``(n, d)`` code matrix to one token stream, and back."""

    name: str = ""

    @abstractmethod
    def mux(self, codes: np.ndarray, codec) -> list[str]:
        """Serialise the code matrix as a flat token stream (no trailing
        separator — the caller appends one before generation starts)."""

    @abstractmethod
    def demux(
        self,
        tokens: Sequence[str],
        num_dims: int,
        codec,
        row_offset: int = 0,
        pad_incomplete: bool = False,
    ) -> np.ndarray:
        """Parse a token stream back into an ``(m, num_dims)`` code matrix,
        dropping any incomplete trailing timestamp.

        ``row_offset`` is the absolute timestamp index of the stream's first
        row — needed by layouts that vary per timestamp (block interleaving
        continues the history's rotation when parsing generated output).

        ``pad_incomplete=True`` keeps a truncated trailing group instead,
        completing it with the codec's pad token (the pre-PR-4 behaviour,
        for callers that would rather salvage a biased final row than lose
        it)."""

    @abstractmethod
    def tokens_per_timestamp(self, num_dims: int, width: int) -> int:
        """Stream tokens consumed by one timestamp (digits + separators)."""

    @abstractmethod
    def constraint_pattern(
        self, num_dims: int, width: int, value_ids: frozenset[int], separator_id: int
    ) -> list[frozenset[int]]:
        """One period of the structured-generation grammar for this scheme."""

    @staticmethod
    def _validate(codes: np.ndarray) -> np.ndarray:
        arr = np.asarray(codes)
        if arr.ndim != 2 or arr.shape[0] < 1 or arr.shape[1] < 1:
            raise EncodingError(f"expected a non-empty (n, d) matrix, got {arr.shape}")
        if np.issubdtype(arr.dtype, np.floating) and not np.isfinite(arr).all():
            raise EncodingError(
                "code matrix contains NaN or inf; scale before multiplexing"
            )
        if not np.issubdtype(arr.dtype, np.integer):
            raise EncodingError("multiplexers operate on integer code matrices")
        return arr

    @staticmethod
    def _groups(tokens: Sequence[str]) -> list[list[str]]:
        """Split a stream on separators into non-empty token groups."""
        groups: list[list[str]] = []
        current: list[str] = []
        for token in tokens:
            if token == SEPARATOR:
                if current:
                    groups.append(current)
                    current = []
            else:
                current.append(token)
        if current:
            groups.append(current)
        return groups

    @staticmethod
    def _pad_group(group: list[str], length: int, pad_token: str) -> list[str]:
        """Right-pad a truncated group (missing least-significant tokens)."""
        if len(group) >= length:
            return group[:length]
        return group + [pad_token] * (length - len(group))


class _GroupedMultiplexer(Multiplexer):
    """Shared machinery for DI/VI/BI: one composite group per timestamp."""

    def _cell_order(self, num_dims: int, width: int, row: int) -> list[tuple[int, int]]:
        """Within-group token layout: list of (dim, digit_position) pairs."""
        raise NotImplementedError

    def mux(self, codes: np.ndarray, codec) -> list[str]:
        arr = self._validate(codes)
        n, d = arr.shape
        width = codec.num_digits
        stream: list[str] = []
        for t in range(n):
            if t:
                stream.append(SEPARATOR)
            cells = [codec.digits_of(arr[t, k]) for k in range(d)]
            for dim, pos in self._cell_order(d, width, t):
                stream.append(cells[dim][pos])
        return stream

    def demux(
        self,
        tokens: Sequence[str],
        num_dims: int,
        codec,
        row_offset: int = 0,
        pad_incomplete: bool = False,
    ) -> np.ndarray:
        """Parse composite groups back into rows (see :meth:`Multiplexer.demux`)."""
        width = codec.num_digits
        group_length = num_dims * width
        groups = self._groups(tokens)
        rows: list[list[int]] = []
        for row_index, group in enumerate(groups):
            if (
                len(group) < group_length
                and row_index == len(groups) - 1
                and not pad_incomplete
            ):
                break  # truncated trailing timestamp: drop rather than guess
            group = self._pad_group(group, group_length, codec.pad_token)
            cells = [["" for _ in range(width)] for _ in range(num_dims)]
            for token, (dim, pos) in zip(
                group, self._cell_order(num_dims, width, row_offset + row_index)
            ):
                cells[dim][pos] = token
            rows.append([codec.value_of_partial(cell) for cell in cells])
        if not rows:
            return np.empty((0, num_dims), dtype=np.int64)
        return np.asarray(rows, dtype=np.int64)

    def tokens_per_timestamp(self, num_dims: int, width: int) -> int:
        return num_dims * width + 1

    def constraint_pattern(
        self, num_dims: int, width: int, value_ids: frozenset[int], separator_id: int
    ) -> list[frozenset[int]]:
        return [value_ids] * (num_dims * width) + [frozenset([separator_id])]


class DigitInterleaver(_GroupedMultiplexer):
    """DI: digit-position-major interleaving (paper Eq. 1)."""

    name = "di"

    def _cell_order(self, num_dims: int, width: int, row: int) -> list[tuple[int, int]]:
        return [(k, j) for j in range(width) for k in range(num_dims)]


class ValueInterleaver(_GroupedMultiplexer):
    """VI: dimension-major concatenation inside one group (paper Eq. 2)."""

    name = "vi"

    def _cell_order(self, num_dims: int, width: int, row: int) -> list[tuple[int, int]]:
        return [(k, j) for k in range(num_dims) for j in range(width)]


class BlockInterleaver(_GroupedMultiplexer):
    """BI (extension): VI with the dimension order rotated each timestamp."""

    name = "bi"

    def _cell_order(self, num_dims: int, width: int, row: int) -> list[tuple[int, int]]:
        rotation = row % num_dims
        dims = [(k + rotation) % num_dims for k in range(num_dims)]
        return [(k, j) for k in dims for j in range(width)]


class ValueConcatenator(Multiplexer):
    """VC: every dimension's value is its own comma-separated group (Eq. 3)."""

    name = "vc"

    def mux(self, codes: np.ndarray, codec) -> list[str]:
        arr = self._validate(codes)
        n, d = arr.shape
        stream: list[str] = []
        for t in range(n):
            for k in range(d):
                if t or k:
                    stream.append(SEPARATOR)
                stream.extend(codec.digits_of(arr[t, k]))
        return stream

    def demux(
        self,
        tokens: Sequence[str],
        num_dims: int,
        codec,
        row_offset: int = 0,
        pad_incomplete: bool = False,
    ) -> np.ndarray:
        """Parse per-value groups back into rows (see :meth:`Multiplexer.demux`)."""
        width = codec.num_digits
        groups = self._groups(tokens)
        if groups and len(groups[-1]) < width and not pad_incomplete:
            groups = groups[:-1]  # truncated trailing value: drop, don't guess
        values = [
            codec.value_of_partial(self._pad_group(g, width, codec.pad_token))
            for g in groups
        ]
        complete = len(values) // num_dims
        if complete == 0:
            return np.empty((0, num_dims), dtype=np.int64)
        trimmed = np.asarray(values[: complete * num_dims], dtype=np.int64)
        return trimmed.reshape(complete, num_dims)

    def tokens_per_timestamp(self, num_dims: int, width: int) -> int:
        return num_dims * (width + 1)

    def constraint_pattern(
        self, num_dims: int, width: int, value_ids: frozenset[int], separator_id: int
    ) -> list[frozenset[int]]:
        return [value_ids] * width + [frozenset([separator_id])]


_SCHEMES = {
    "di": DigitInterleaver,
    "vi": ValueInterleaver,
    "vc": ValueConcatenator,
    "bi": BlockInterleaver,
}

MULTIPLEX_SCHEMES = tuple(sorted(_SCHEMES))


def get_multiplexer(scheme: str) -> Multiplexer:
    """Instantiate a multiplexer by scheme name (``di``/``vi``/``vc``/``bi``)."""
    try:
        return _SCHEMES[scheme.lower()]()
    except KeyError:
        raise ConfigError(
            f"unknown multiplexing scheme {scheme!r}; "
            f"choose from {MULTIPLEX_SCHEMES}"
        ) from None

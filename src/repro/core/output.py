"""The forecast result type shared by all LLM-based forecasters.

Besides the point forecast, a :class:`ForecastOutput` carries the individual
samples (the paper draws several and takes the per-timestamp median) and the
token/time accounting that drives the paper's execution-time tables: the
substrate is far faster than a 7B model on CPU, so ``simulated_seconds``
(token count × calibrated per-token latency) is what reproduces the paper's
timing *shape*, while ``wall_seconds`` reports what actually elapsed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DataError

__all__ = ["ForecastOutput"]


@dataclass
class ForecastOutput:
    """Result of one multivariate (or univariate) LLM forecast.

    Attributes
    ----------
    values:
        Point forecast, shape ``(horizon, d)``.
    samples:
        The raw per-sample forecasts, shape ``(num_samples, horizon, d)``.
    prompt_tokens:
        Prompt length in tokens (per sample; samples share the prompt).
    generated_tokens:
        Total tokens generated across all samples.
    simulated_seconds:
        Token-count-based inference time under the backend's cost model.
    wall_seconds:
        Real elapsed time in this process.  The forecaster populates this
        from ``timings`` (it is their sum), so the two never disagree —
        with or without tracing; :meth:`assert_timing_invariant` enforces
        the contract on every forecast.
    model_name:
        The backend preset that produced the forecast.
    timings:
        Per-stage wall seconds (``scale``, ``multiplex``, ``generate``,
        ``demultiplex``, ``aggregate``, plus optional stages such as
        ``deseasonalize``), as recorded by
        :class:`~repro.core.timing.StageClock`.
    """

    values: np.ndarray
    samples: np.ndarray
    prompt_tokens: int = 0
    generated_tokens: int = 0
    simulated_seconds: float = 0.0
    wall_seconds: float = 0.0
    model_name: str = ""
    metadata: dict = field(default_factory=dict)
    timings: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        self.samples = np.asarray(self.samples, dtype=float)
        if self.values.ndim != 2:
            raise DataError(f"values must be (horizon, d), got {self.values.shape}")
        if self.samples.ndim != 3 or self.samples.shape[1:] != self.values.shape:
            raise DataError(
                f"samples must be (num_samples, {self.values.shape[0]}, "
                f"{self.values.shape[1]}), got {self.samples.shape}"
            )

    @property
    def horizon(self) -> int:
        return int(self.values.shape[0])

    @property
    def num_dims(self) -> int:
        return int(self.values.shape[1])

    @property
    def num_samples(self) -> int:
        return int(self.samples.shape[0])

    @property
    def total_tokens(self) -> int:
        """Prompt plus generated tokens — the hosted-API billing quantity."""
        return self.prompt_tokens + self.generated_tokens

    def assert_timing_invariant(self, tolerance: float = 1e-9) -> None:
        """Enforce the documented contract ``wall_seconds == sum(timings)``.

        The forecaster repairs rather than raises when the drift is within
        ``tolerance`` (float-summation noise); a larger disagreement means
        a stage ran outside the clock and is a genuine bug, surfaced as
        :class:`~repro.exceptions.DataError`.  Outputs with no recorded
        timings (hand-built, e.g. by baselines) are exempt.
        """
        if not self.timings:
            return
        stage_total = float(sum(self.timings.values()))
        drift = abs(self.wall_seconds - stage_total)
        if drift > tolerance:
            raise DataError(
                f"wall_seconds={self.wall_seconds!r} disagrees with the "
                f"stage-timing sum {stage_total!r} by {drift:.3g}s"
            )
        self.wall_seconds = stage_total

    def dimension(self, index: int) -> np.ndarray:
        """Point forecast of one dimension as a 1-D array."""
        if not 0 <= index < self.num_dims:
            raise DataError(f"dimension index {index} out of range")
        return np.asarray(self.values[:, index])

    def quantile(self, q: float) -> np.ndarray:
        """Empirical predictive quantile across samples, shape ``(h, d)``.

        The sampled continuations define an ensemble forecast; e.g.
        ``output.quantile(0.1), output.quantile(0.9)`` bound a central 80 %
        prediction interval (scored by :mod:`repro.metrics.intervals`).
        """
        if not 0.0 <= q <= 1.0:
            raise DataError(f"quantile must be in [0, 1], got {q}")
        return np.quantile(self.samples, q, axis=0)

    def interval(self, level: float = 0.8) -> tuple[np.ndarray, np.ndarray]:
        """Central prediction interval ``(lower, upper)`` at ``level``."""
        if not 0.0 < level < 1.0:
            raise DataError(f"level must be in (0, 1), got {level}")
        alpha = (1.0 - level) / 2.0
        return self.quantile(alpha), self.quantile(1.0 - alpha)

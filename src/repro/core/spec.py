"""ForecastSpec: the one request object every entry point accepts.

Four PRs of growth left the public surface with overlapping-but-different
kwargs: ``MultiCastForecaster.forecast(history, horizon, seed=...)``,
``ForecastEngine.submit(ForecastRequest(...))``, CLI flags, and
``rolling_origin_evaluation(..., **pipeline_options)`` each spelled the
same pipeline settings a little differently.  :class:`ForecastSpec`
consolidates them: one frozen dataclass carrying the series, the horizon,
every pipeline knob of :class:`~repro.core.config.MultiCastConfig`, the
sampling seed, and the execution mode (``"batched"`` — the default
lockstep scheduler of :mod:`repro.llm.batch` — ``"pooled"``,
``"sequential"`` or ``"continuous"``, the cross-request shared scheduler
of :mod:`repro.scheduling`; all four produce bit-identical outputs under
the same seed, so the choice is purely about wall-clock).

Migration (see ``docs/API.md``)::

    spec = ForecastSpec(series=history, horizon=12, scheme="di", seed=7)
    output = MultiCastForecaster().forecast(spec)          # was (history, 12)
    response = ForecastEngine().forecast(spec)             # was a ForecastRequest
    result = rolling_origin_evaluation("multicast-di", ds, 12, spec=spec)

Legacy call styles keep working for one release behind shims that emit
:class:`DeprecationWarning` (the test suite turns those warnings into
errors for first-party call sites, so internal drift cannot reappear).
"""

from __future__ import annotations

import dataclasses
import warnings
from collections.abc import Sequence

import numpy as np

from repro.core.config import PROMPT_STRATEGIES, MultiCastConfig, SaxConfig
from repro.exceptions import ConfigError

__all__ = [
    "ForecastSpec",
    "EXECUTION_MODES",
    "PROMPT_STRATEGIES",
    "canonicalize_sampling_options",
]

#: The execution modes a spec (or serving request) may select.
EXECUTION_MODES = ("batched", "pooled", "sequential", "continuous")

#: Legacy spellings of canonical sampling fields, accepted-and-warned for
#: one release (the kwarg-drift cleanup: ``num_samples`` is canonical).
#: This table is the *only* place aliases live — the CLI, the manifest
#: loader, sweeps and the estimator adapters all route through
#: :func:`canonicalize_sampling_options` instead of re-implementing it.
_FIELD_ALIASES = {"n_samples": "num_samples", "samples": "num_samples"}


def canonicalize_sampling_options(options: dict, *, context: str) -> dict:
    """Rewrite deprecated option aliases (``n_samples``/``samples`` →
    ``num_samples``).

    Emits a :class:`DeprecationWarning` per alias used; raises
    :class:`~repro.exceptions.ConfigError` when an alias and its canonical
    spelling are both present.  ``context`` names the call site in the
    warning message.  Returns a new dict; the input is not mutated.
    """
    resolved = dict(options)
    for alias, canonical in _FIELD_ALIASES.items():
        if alias not in resolved:
            continue
        if canonical in resolved:
            raise ConfigError(
                f"{context} got both {alias!r} and {canonical!r}; "
                f"use only {canonical!r}"
            )
        warnings.warn(
            f"the {alias!r} option of {context} is deprecated; use "
            f"{canonical!r} (the canonical ForecastSpec field name)",
            DeprecationWarning,
            stacklevel=3,
        )
        resolved[canonical] = resolved.pop(alias)
    return resolved


@dataclasses.dataclass(frozen=True, eq=False)
class ForecastSpec:
    """One self-contained forecast request.

    Attributes
    ----------
    series:
        The ``(n, d)`` (or 1-D) history to forecast from.  Coerced to a
        read-only float array.  May be ``None`` for a *template* spec
        (e.g. the ``spec=`` argument of
        :func:`~repro.evaluation.backtest.rolling_origin_evaluation`,
        which fills in each window's history via :meth:`replace`).
    horizon:
        Steps to forecast past the end of the series (``None`` only for
        templates).
    scheme, num_digits, num_samples, model, aggregation, sax,
    structured_constraint, deseasonalize, temperature, max_context_tokens,
    strategy, patch_length:
        The pipeline knobs of :class:`~repro.core.config.MultiCastConfig`,
        with identical names, defaults and validation.  ``sax`` also
        accepts a plain dict (handy in JSON manifests), coerced to a
        :class:`~repro.core.config.SaxConfig`.  ``strategy`` selects the
        prompt strategy (:data:`PROMPT_STRATEGIES`; ``"default"``
        preserves the pre-strategy pipeline bit for bit).
    seed:
        Base RNG seed for the sample ensemble.
    execution:
        ``"batched"`` (default), ``"pooled"``, ``"sequential"`` or
        ``"continuous"`` (the cross-request shared scheduler of
        :mod:`repro.scheduling`) — how the sample ensemble is driven.
        Outputs are bit-identical across modes under the same seed.
    """

    series: np.ndarray | Sequence | None = None
    horizon: int | None = None
    scheme: str = "vi"
    num_digits: int = 3
    num_samples: int = 5
    model: str = "llama2-7b-sim"
    aggregation: str = "median"
    sax: SaxConfig | dict | None = None
    structured_constraint: bool = True
    deseasonalize: int | str | None = None
    temperature: float | None = None
    max_context_tokens: int = 4096
    strategy: str = "default"
    patch_length: int = 6
    seed: int = 0
    execution: str = "batched"

    def __post_init__(self) -> None:
        if self.series is not None:
            values = np.array(self.series, dtype=float)
            values.setflags(write=False)
            object.__setattr__(self, "series", values)
        if self.horizon is not None:
            object.__setattr__(self, "horizon", int(self.horizon))
        if isinstance(self.sax, dict):
            object.__setattr__(self, "sax", SaxConfig(**self.sax))
        if self.execution not in EXECUTION_MODES:
            raise ConfigError(
                f"execution must be one of {EXECUTION_MODES}, "
                f"got {self.execution!r}"
            )
        # Building the config validates every pipeline field eagerly.
        object.__setattr__(self, "_config", self._build_config())

    def _build_config(self) -> MultiCastConfig:
        return MultiCastConfig(
            scheme=self.scheme,
            num_digits=self.num_digits,
            num_samples=self.num_samples,
            model=self.model,
            aggregation=self.aggregation,
            sax=self.sax,
            structured_constraint=self.structured_constraint,
            deseasonalize=self.deseasonalize,
            temperature=self.temperature,
            max_context_tokens=self.max_context_tokens,
            strategy=self.strategy,
            patch_length=self.patch_length,
            seed=int(self.seed),
        )

    @property
    def config(self) -> MultiCastConfig:
        """The pipeline settings as a :class:`MultiCastConfig`."""
        return self._config

    def require_series(self) -> None:
        """Raise unless this spec is executable (series and horizon set)."""
        if self.series is None:
            raise ConfigError(
                "this ForecastSpec is a template: set its series "
                "(spec.replace(series=..., horizon=...)) before forecasting"
            )
        if self.horizon is None:
            raise ConfigError("ForecastSpec.horizon must be set to forecast")

    def replace(self, **changes) -> "ForecastSpec":
        """A copy with ``changes`` applied (fields re-validated).

        Deprecated aliases are rewritten exactly as in :meth:`create`;
        anything else that is not a spec field raises
        :class:`~repro.exceptions.ConfigError` naming the offenders, so a
        typo'd knob fails loudly instead of surfacing as a bare
        ``TypeError`` deep inside ``dataclasses.replace``.
        """
        changes = canonicalize_sampling_options(
            changes, context="ForecastSpec.replace"
        )
        valid = {f.name for f in dataclasses.fields(self)}
        unknown = sorted(set(changes) - valid)
        if unknown:
            raise ConfigError(
                f"ForecastSpec.replace got unknown fields {unknown}; "
                f"valid fields are {sorted(valid)}"
            )
        return dataclasses.replace(self, **changes)

    def with_series(
        self, series, horizon: int | None = None
    ) -> "ForecastSpec":
        """A copy bound to ``series`` (and optionally a new horizon)."""
        changes: dict = {"series": series}
        if horizon is not None:
            changes["horizon"] = horizon
        return self.replace(**changes)

    @classmethod
    def create(cls, **options) -> "ForecastSpec":
        """Build a spec from keyword options, accepting deprecated aliases.

        The constructor itself is strict; this factory first routes the
        options through :func:`canonicalize_sampling_options` so manifest
        loaders and CLI paths keep accepting ``n_samples`` (with a
        :class:`DeprecationWarning`) for one release.
        """
        return cls(
            **canonicalize_sampling_options(options, context="ForecastSpec.create")
        )

    @classmethod
    def from_config(
        cls,
        config: MultiCastConfig,
        series=None,
        horizon: int | None = None,
        seed: int | None = None,
        execution: str = "batched",
    ) -> "ForecastSpec":
        """Flatten an existing :class:`MultiCastConfig` into a spec.

        The mechanical migration path for call sites that already hold a
        config object; ``seed`` defaults to the config's own seed.
        """
        return cls(
            series=series,
            horizon=horizon,
            scheme=config.scheme,
            num_digits=config.num_digits,
            num_samples=config.num_samples,
            model=config.model,
            aggregation=config.aggregation,
            sax=config.sax,
            structured_constraint=config.structured_constraint,
            deseasonalize=config.deseasonalize,
            temperature=config.temperature,
            max_context_tokens=config.max_context_tokens,
            strategy=config.strategy,
            patch_length=config.patch_length,
            seed=config.seed if seed is None else int(seed),
            execution=execution,
        )

    def __repr__(self) -> str:
        shape = None if self.series is None else tuple(self.series.shape)
        return (
            f"ForecastSpec(series_shape={shape}, horizon={self.horizon}, "
            f"scheme={self.scheme!r}, model={self.model!r}, "
            f"num_samples={self.num_samples}, sax={self.sax is not None}, "
            f"strategy={self.strategy!r}, seed={self.seed}, "
            f"execution={self.execution!r})"
        )

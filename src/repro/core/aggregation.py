"""Combining multiple sampled forecasts into one point forecast.

The paper (after LLMTime) draws a predefined number of samples per forecast
"and the final forecast is built using the median of all samples after
descaling the outputted values".  Median is therefore the default; mean and
trimmed mean are ablation alternatives (see ``benchmarks/bench_ablations.py``).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigError, DataError

__all__ = ["aggregate_samples", "AGGREGATION_METHODS"]

AGGREGATION_METHODS = ("median", "mean", "trimmed_mean")


def aggregate_samples(samples: np.ndarray, method: str = "median") -> np.ndarray:
    """Reduce ``(num_samples, horizon, d)`` samples to a ``(horizon, d)`` forecast.

    ``trimmed_mean`` discards the top and bottom 25 % of samples per cell
    before averaging (an outlier-robust middle ground between mean and
    median); with fewer than four samples it falls back to the median.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 3:
        raise DataError(f"expected (num_samples, horizon, d), got {arr.shape}")
    if arr.shape[0] < 1:
        raise DataError("need at least one sample to aggregate")
    if method == "median":
        return np.median(arr, axis=0)
    if method == "mean":
        return np.mean(arr, axis=0)
    if method == "trimmed_mean":
        num_samples = arr.shape[0]
        trim = num_samples // 4
        if trim == 0:
            return np.median(arr, axis=0)
        ordered = np.sort(arr, axis=0)
        return np.mean(ordered[trim : num_samples - trim], axis=0)
    raise ConfigError(
        f"unknown aggregation {method!r}; choose from {AGGREGATION_METHODS}"
    )

"""The serving layer: MultiCast as a concurrent forecast service.

The paper's pipeline is one function call; serving heavy traffic needs four
more things, each a module here:

* :mod:`~repro.serving.engine` — :class:`ForecastEngine`, a thread-pooled
  service that fans each request's ``num_samples`` independent draws out
  across workers and re-aggregates them through the paper's median path,
  bit-identically to sequential execution under the same seed;
* :mod:`~repro.serving.cache` — :class:`ForecastCache`, a content-addressed
  LRU over (history bytes, config, horizon, seed) digests;
* :mod:`~repro.serving.policy` — :class:`Deadline` and :class:`RetryPolicy`
  (bounded exponential backoff, partial-ensemble graceful degradation);
* :mod:`~repro.serving.metrics` — :class:`MetricsRegistry` with counters,
  gauges, and p50/p95/p99 latency histograms, exportable as JSON.

Observability plugs in from :mod:`repro.observability`: build the engine
with ``tracer=`` for per-request span trees (``response.trace``) and
``ledger=`` for an append-only JSONL run ledger, summarised by
``repro-multicast ledger summarize``.

Entry points: the ``repro-multicast batch`` CLI subcommand runs a manifest
of jobs through one engine, and
:func:`repro.evaluation.rolling_origin_evaluation` accepts an ``engine=`` to
parallelise (and cache) backtest windows.
"""

from repro.serving.cache import ForecastCache, forecast_digest
from repro.serving.engine import ForecastEngine
from repro.serving.manifest import BatchJob, load_manifest
from repro.serving.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.serving.policy import Deadline, RetryPolicy
from repro.serving.request import ForecastRequest, ForecastResponse

__all__ = [
    "ForecastEngine",
    "ForecastRequest",
    "ForecastResponse",
    "ForecastCache",
    "forecast_digest",
    "Deadline",
    "RetryPolicy",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "BatchJob",
    "load_manifest",
]

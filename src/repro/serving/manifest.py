"""Batch manifests: declarative job lists for the ``batch`` CLI.

A manifest is a JSON file describing many forecasts to run concurrently —
one per series/configuration pair::

    {
      "jobs": [
        {"name": "gas-di", "dataset": "gas_rate", "scheme": "di",
         "num_samples": 3, "horizon": 8},
        {"name": "gas-sax", "dataset": "gas_rate", "horizon": 8,
         "sax": {"segment_length": 6, "alphabet_size": 5}},
        {"csv": "data/mine.csv", "horizon": 24, "deadline": 30.0,
         "execution": "batched"}
      ]
    }

``num_samples`` is the canonical sample-count key (the legacy ``samples``
spelling is rewritten by the spec layer's shared alias table, with a
deprecation warning); ``execution`` selects ``"pooled"`` (default)
or ``"batched"`` ensemble decoding, with bit-identical outputs.
``strategy`` picks a prompt strategy (``"patch"``, ``"decompose"``,
``"auto"``, ...) and ``patch_length`` sizes the patch strategy's
aggregation window — both validated by ``MultiCastConfig``.
``tenant`` attributes the job to a tenant for gateway quota accounting
and ledger attribution (see ``docs/SERVING.md``).

A bare top-level list is accepted too.  Unknown keys are rejected early so
a typo (``"smaples"``) fails the whole manifest instead of silently running
defaults.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.config import MultiCastConfig, SaxConfig
from repro.core.spec import EXECUTION_MODES, canonicalize_sampling_options
from repro.exceptions import ConfigError
from repro.serving.request import ForecastRequest

__all__ = ["BatchJob", "load_manifest"]

#: manifest key → MultiCastConfig field for the plain pass-throughs.
#: Only canonical spellings appear here: deprecated aliases (``samples``,
#: ``n_samples``) are rewritten up front by the spec layer's
#: ``canonicalize_sampling_options``, the single source of alias truth.
_CONFIG_KEYS = {
    "scheme": "scheme",
    "digits": "num_digits",
    "num_samples": "num_samples",
    "model": "model",
    "aggregation": "aggregation",
    "structured_constraint": "structured_constraint",
    "deseasonalize": "deseasonalize",
    "temperature": "temperature",
    "max_context_tokens": "max_context_tokens",
    "seed": "seed",
    "strategy": "strategy",
    "patch_length": "patch_length",
}

_JOB_KEYS = frozenset(_CONFIG_KEYS) | {
    "name", "dataset", "csv", "horizon", "sax", "deadline", "use_cache",
    "execution", "tenant",
}


@dataclass
class BatchJob:
    """One manifest entry, validated and ready to pair with its series."""

    name: str
    horizon: int
    config: MultiCastConfig
    dataset: str | None = None
    csv: str | None = None
    deadline: float | None = None
    use_cache: bool = True
    execution: str = "pooled"
    tenant: str = ""

    def to_request(self, history: np.ndarray) -> ForecastRequest:
        """Bind this job's settings to a concrete history array.

        The job's seed (if any) already lives in ``config.seed``.
        """
        return ForecastRequest(
            history=history,
            horizon=self.horizon,
            config=self.config,
            deadline_seconds=self.deadline,
            use_cache=self.use_cache,
            name=self.name,
            tenant=self.tenant,
            execution=self.execution,
        )


def _parse_job(index: int, raw: dict) -> BatchJob:
    if not isinstance(raw, dict):
        raise ConfigError(f"job {index} must be an object, got {type(raw).__name__}")
    # Rewrite deprecated aliases first (warns once per use, rejects
    # alias + canonical together) so the rest of the parser only ever
    # sees canonical key names.
    raw = canonicalize_sampling_options(raw, context=f"manifest job {index}")
    unknown = set(raw) - _JOB_KEYS
    if unknown:
        raise ConfigError(
            f"job {index} has unknown keys {sorted(unknown)}; "
            f"allowed: {sorted(_JOB_KEYS)}"
        )
    if ("dataset" in raw) == ("csv" in raw):
        raise ConfigError(
            f"job {index} must name exactly one of 'dataset' or 'csv'"
        )
    if "horizon" not in raw:
        raise ConfigError(f"job {index} is missing the required 'horizon'")
    if raw.get("execution", "pooled") not in EXECUTION_MODES:
        raise ConfigError(
            f"job {index}: execution must be one of {EXECUTION_MODES}, "
            f"got {raw['execution']!r}"
        )

    config_kwargs = {
        field_name: raw[key]
        for key, field_name in _CONFIG_KEYS.items()
        if key in raw
    }
    sax_raw = raw.get("sax")
    if sax_raw is not None:
        if not isinstance(sax_raw, dict):
            raise ConfigError(f"job {index}: 'sax' must be an object")
        config_kwargs["sax"] = SaxConfig(**sax_raw)

    return BatchJob(
        name=str(raw.get("name", f"job-{index}")),
        horizon=int(raw["horizon"]),
        config=MultiCastConfig(**config_kwargs),
        dataset=raw.get("dataset"),
        csv=raw.get("csv"),
        deadline=raw.get("deadline"),
        use_cache=bool(raw.get("use_cache", True)),
        execution=str(raw.get("execution", "pooled")),
        tenant=str(raw.get("tenant", "")),
    )


def load_manifest(path: str | Path) -> list[BatchJob]:
    """Parse and validate a manifest file into :class:`BatchJob` entries."""
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except FileNotFoundError:
        raise ConfigError(f"manifest not found: {path}") from None
    except json.JSONDecodeError as error:
        raise ConfigError(f"manifest {path} is not valid JSON: {error}") from None

    if isinstance(document, dict):
        jobs_raw = document.get("jobs")
        if jobs_raw is None:
            raise ConfigError(f"manifest {path} has no 'jobs' array")
    elif isinstance(document, list):
        jobs_raw = document
    else:
        raise ConfigError(f"manifest {path} must be an object or array")
    if not jobs_raw:
        raise ConfigError(f"manifest {path} contains no jobs")

    return [_parse_job(i, raw) for i, raw in enumerate(jobs_raw)]

"""Request/response envelopes for the forecast service.

A :class:`ForecastRequest` is everything the engine needs to produce one
forecast — the series, the pipeline configuration, the horizon — plus the
serving-level contract: an optional per-request deadline and cache opt-out.
A :class:`ForecastResponse` wraps the resulting
:class:`~repro.core.output.ForecastOutput` with serving outcomes (cache hit,
partial degradation, retry count, error) so batch callers can triage without
exception handling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import MultiCastConfig
from repro.core.output import ForecastOutput
from repro.core.spec import EXECUTION_MODES, ForecastSpec
from repro.exceptions import ConfigError, ReproError

__all__ = ["ForecastRequest", "ForecastResponse"]


@dataclass
class ForecastRequest:
    """One unit of serving work.

    Attributes
    ----------
    history:
        ``(n,)`` or ``(n, d)`` float array of observed values.
    horizon:
        Steps to forecast past the end of the history.
    config:
        Full pipeline configuration (scheme, samples, SAX, model, ...).
    seed:
        Optional override of ``config.seed`` for this request.
    deadline_seconds:
        Wall-clock budget.  Sample draws that have not finished when it
        expires are abandoned; if at least one finished, the response
        carries a partial-ensemble forecast flagged ``partial=True``.
    use_cache:
        Set False to bypass the engine's result cache (both lookup and
        store) for this request.
    name:
        Caller-chosen label, echoed in the response (batch manifests use it).
    tenant:
        Owning tenant for multi-tenant serving (the gateway's quota and
        ledger attribution key).  Deliberately **not** part of the result
        digest: identical specs from different tenants coalesce to one
        computation.  Empty for direct engine calls.
    execution:
        How the sample ensemble is driven — ``"batched"`` (lockstep
        batched decoding), ``"pooled"`` (the engine's shared sample pool;
        the default, and what ``"sequential"`` also maps to inside the
        engine, whose draws always run on pool workers) or
        ``"continuous"`` (the engine's shared cross-request scheduler;
        see :mod:`repro.scheduling`) — bit-identical outputs in every
        mode, so the result cache ignores it.
    """

    history: np.ndarray
    horizon: int
    config: MultiCastConfig = field(default_factory=MultiCastConfig)
    seed: int | None = None
    deadline_seconds: float | None = None
    use_cache: bool = True
    name: str = ""
    tenant: str = ""
    execution: str = "pooled"

    def __post_init__(self) -> None:
        self.history = np.asarray(self.history, dtype=float)
        if self.horizon < 1:
            raise ConfigError(f"horizon must be >= 1, got {self.horizon}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds}"
            )
        if self.execution not in EXECUTION_MODES:
            raise ConfigError(
                f"execution must be one of {EXECUTION_MODES}, "
                f"got {self.execution!r}"
            )

    @classmethod
    def from_spec(
        cls,
        spec: ForecastSpec,
        *,
        deadline_seconds: float | None = None,
        use_cache: bool = True,
        name: str = "",
        tenant: str = "",
    ) -> "ForecastRequest":
        """Wrap an executable :class:`~repro.core.spec.ForecastSpec`.

        The spec carries the pipeline half (series, horizon, config, seed,
        execution); the keyword arguments add the serving-level contract.
        """
        spec.require_series()
        return cls(
            history=spec.series,
            horizon=spec.horizon,
            config=spec.config,
            seed=spec.seed,
            deadline_seconds=deadline_seconds,
            use_cache=use_cache,
            name=name,
            tenant=tenant,
            execution=spec.execution,
        )

    @property
    def effective_seed(self) -> int:
        """The per-request seed override, falling back to the config seed."""
        return self.config.seed if self.seed is None else self.seed


@dataclass
class ForecastResponse:
    """Outcome of serving one :class:`ForecastRequest`.

    ``output`` is None exactly when ``error`` is set.  ``partial`` marks a
    gracefully degraded forecast aggregated from fewer than the requested
    number of samples (some draws failed or ran past the deadline).

    ``trace`` carries the request's finished
    :class:`~repro.observability.Span` tree when the engine was built with
    a real tracer (None otherwise) — render it with
    :func:`~repro.observability.render_span_tree`.
    """

    request: ForecastRequest
    output: ForecastOutput | None = None
    error: str | None = None
    cache_hit: bool = False
    partial: bool = False
    attempts: int = 1
    wall_seconds: float = 0.0
    trace: object | None = None

    @property
    def ok(self) -> bool:
        """True when the request produced a forecast (possibly partial)."""
        return self.error is None and self.output is not None

    @property
    def name(self) -> str:
        """The originating request's label."""
        return self.request.name

    @property
    def values(self) -> np.ndarray:
        """The point forecast; raises if the request failed."""
        if self.output is None:
            raise ReproError(
                f"request {self.request.name or '<unnamed>'} failed: {self.error}"
            )
        return self.output.values

    def summary(self) -> str:
        """One status line for logs and the batch CLI."""
        label = self.request.name or "request"
        if not self.ok:
            return f"{label}: ERROR {self.error}"
        flags = []
        if self.cache_hit:
            flags.append("cached")
        if self.partial:
            completed = self.output.metadata.get("completed_samples", "?")
            requested = self.output.metadata.get("requested_samples", "?")
            flags.append(f"partial {completed}/{requested}")
        if self.attempts > 1:
            flags.append(f"{self.attempts} attempts")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return (
            f"{label}: ok horizon={self.output.horizon} "
            f"dims={self.output.num_dims} wall={self.wall_seconds:.3f}s{suffix}"
        )

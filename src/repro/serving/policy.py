"""Robustness policy: per-request deadlines and bounded retry with backoff.

Sample draws against a real hosted LLM fail transiently (rate limits,
connection resets) and take unpredictable time; the serving engine wraps
every draw in a :class:`RetryPolicy` and bounds the whole request with a
:class:`Deadline`.  Both are plain, dependency-free objects so tests can
inject a recording ``sleep`` and virtual clocks.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from dataclasses import dataclass

from repro.exceptions import ConfigError, GenerationError

__all__ = ["Deadline", "RetryPolicy"]


class Deadline:
    """A wall-clock budget started at construction time.

    ``Deadline(None)`` is the unbounded deadline: it never expires and
    reports ``remaining() is None``, so callers can pass it straight to
    ``Future.result(timeout=...)``.
    """

    def __init__(self, seconds: float | None, *, clock=time.monotonic) -> None:
        if seconds is not None and seconds <= 0:
            raise ConfigError(f"deadline must be > 0 seconds, got {seconds}")
        self.seconds = seconds
        self._clock = clock
        self._started = clock()

    @property
    def unbounded(self) -> bool:
        """True when no time budget was set."""
        return self.seconds is None

    def elapsed(self) -> float:
        """Seconds since the deadline started."""
        return self._clock() - self._started

    def remaining(self) -> float | None:
        """Seconds left (clamped at 0), or None when unbounded."""
        if self.seconds is None:
            return None
        return max(0.0, self.seconds - self.elapsed())

    @property
    def expired(self) -> bool:
        """True once the budget has been used up."""
        return self.seconds is not None and self.elapsed() >= self.seconds

    def __repr__(self) -> str:
        if self.seconds is None:
            return "Deadline(unbounded)"
        return f"Deadline({self.seconds}s, remaining={self.remaining():.3f}s)"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff on :class:`GenerationError`.

    ``max_attempts`` counts the first try, so ``max_attempts=1`` disables
    retrying.  The delay before attempt ``k+1`` is
    ``base_delay * multiplier**(k-1)`` capped at ``max_delay`` — and further
    capped at the deadline's remaining budget, so backoff never sleeps a
    request past its own deadline.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0:
            raise ConfigError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.multiplier < 1.0:
            raise ConfigError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay < 0:
            raise ConfigError(f"max_delay must be >= 0, got {self.max_delay}")

    def delays(self) -> Iterator[float]:
        """Backoff delays before attempts 2, 3, ... (``max_attempts - 1`` of them)."""
        delay = self.base_delay
        for _ in range(self.max_attempts - 1):
            yield min(delay, self.max_delay)
            delay *= self.multiplier

    def run(
        self,
        task: Callable[[], object],
        *,
        deadline: Deadline | None = None,
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Callable[[int, Exception], None] | None = None,
    ):
        """Call ``task`` until it succeeds or the policy is exhausted.

        Returns ``(result, attempts_used)``.  Retries only on
        :class:`GenerationError` (the substrate's transient-failure type);
        anything else propagates immediately.  A deadline that expires
        between attempts stops retrying and re-raises the last error.
        """
        delays = self.delays()
        for attempt in range(1, self.max_attempts + 1):
            if deadline is not None and deadline.expired:
                raise GenerationError(
                    f"deadline expired before attempt {attempt}"
                )
            try:
                return task(), attempt
            except GenerationError as error:
                if attempt == self.max_attempts:
                    raise
                if on_retry is not None:
                    on_retry(attempt, error)
                delay = next(delays)
                if deadline is not None:
                    remaining = deadline.remaining()
                    if remaining is not None:
                        if remaining <= 0:
                            raise
                        delay = min(delay, remaining)
                if delay > 0:
                    sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

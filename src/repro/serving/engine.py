"""The concurrent forecast engine.

The engine turns :class:`MultiCastForecaster` — a single-threaded library
object — into a service: requests are accepted concurrently, each request's
``num_samples`` independent constrained continuations either fan out across
a shared thread pool (``execution="pooled"``, the request default; they are
embarrassingly parallel: the paper medians i.i.d. draws, LLMTime-style) or
decode in lockstep through one :class:`~repro.llm.batch.BatchedDecoder`
pass (``execution="batched"``, usually the fastest — see
``benchmarks/bench_batching.py``), or join the engine's *shared*
cross-request decode loop (``execution="continuous"``, a
:class:`~repro.scheduling.ContinuousScheduler` backed by a
:class:`~repro.scheduling.RadixPrefillTree` so requests with overlapping
histories dedupe their prompt ingest — see
``benchmarks/bench_scheduler.py``), and the serving policies (result cache,
deadline, retry, partial-ensemble degradation) wrap the pipeline without
touching its numerics.  Batched and continuous requests honour deadlines by
polling between decode steps; per-draw retry does not apply to them (the
simulated substrates never fail transiently mid-decode).

Determinism is preserved end to end: the forecaster derives one child seed
per sample *before* dispatch, every draw builds its own
``numpy.random.Generator`` from that seed, and results are reassembled in
sample order — so an engine forecast is bit-identical to a sequential
``MultiCastForecaster.forecast`` under the same seed (a property the test
suite asserts).

Two distinct pools are used — one for requests, one for sample draws — so a
saturated request pool can never starve the sample pool (the classic nested
thread-pool deadlock).

Observability is opt-in and zero-cost when off: pass a
:class:`~repro.observability.Tracer` to get one ``request`` span per served
forecast (the pipeline's ``forecast``/``stage:*``/``sample_draw`` spans
nest beneath it, across threads), and a
:class:`~repro.observability.RunLedger` to append one JSONL record per
forecast — config hash, seed, outcome ``ok|partial|failed``, latency,
token counts, span tree — for post-hoc analysis with
``repro-multicast ledger summarize``.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError

from repro.core.forecaster import MultiCastForecaster, SampleTask
from repro.core.spec import ForecastSpec
from repro.exceptions import ConfigError, GenerationError, ReproError
from repro.llm.interface import GenerationResult
from repro.llm.state_cache import IngestStateCache
from repro.observability.ledger import RunLedger
from repro.observability.spans import NULL_TRACER, Span
from repro.scheduling import ContinuousScheduler, RadixPrefillTree
from repro.serving.cache import ForecastCache, forecast_digest
from repro.serving.metrics import MetricsRegistry
from repro.serving.policy import Deadline, RetryPolicy
from repro.serving.request import ForecastRequest, ForecastResponse

__all__ = ["ForecastEngine"]


def _outcome(response: ForecastResponse) -> str:
    """Terminal state of a served request: ``ok``, ``partial``, or ``failed``."""
    if not response.ok:
        return "failed"
    return "partial" if response.partial else "ok"


class _RequestState:
    """Per-request bookkeeping shared across sample workers."""

    def __init__(self, deadline: Deadline) -> None:
        self.deadline = deadline
        self.max_attempts = 1
        self._lock = threading.Lock()

    def record_attempts(self, attempts: int) -> None:
        with self._lock:
            self.max_attempts = max(self.max_attempts, attempts)


class ForecastEngine:
    """Thread-pooled forecast service over the MultiCast pipeline.

    Parameters
    ----------
    num_workers:
        Sample-draw pool size.  Each request's draws share this pool, so
        several small requests interleave instead of queueing whole.
    cache:
        Result cache; defaults to a 128-entry LRU.  Pass
        ``ForecastCache(max_entries=0)`` to disable caching entirely.
    ingest_cache:
        Shared :class:`~repro.llm.state_cache.IngestStateCache` reusing
        prompt-ingest state across requests: repeated prompts fork a cached
        prefill, extended histories (rolling windows) advance only the new
        suffix.  Defaults to an enabled cache; pass
        ``IngestStateCache(max_tokens=0)`` to disable.  Unlike the result
        cache it never short-circuits sampling, so it also accelerates
        requests with different seeds over the same prompt.
    retry:
        Per-sample-draw retry policy for transient
        :class:`~repro.exceptions.GenerationError` failures.
    metrics:
        Metrics registry; defaults to a fresh private one, exposed as
        ``engine.metrics``.
    max_concurrent_requests:
        Request-orchestration pool size used by :meth:`submit` /
        :meth:`forecast_batch`.
    max_resident_streams:
        Admission cap of the shared continuous scheduler: total live
        decode streams across all resident ``execution="continuous"``
        requests.  Requests beyond the cap queue FIFO (the head is always
        admitted when nothing is resident, so wide requests still run).
    prefill_tree:
        Shared :class:`~repro.scheduling.RadixPrefillTree` deduplicating
        prompt ingest across continuous requests; defaults to an enabled
        tree.  Pass ``RadixPrefillTree(max_tokens=0)`` to disable radix
        caching (continuous requests then fall back to ``ingest_cache``).
    tracer:
        Optional :class:`~repro.observability.Tracer`; defaults to the
        no-op tracer (zero overhead, bit-identical results).  When set,
        every request's span tree is attached to its response as
        ``response.trace``.
    ledger:
        Optional :class:`~repro.observability.RunLedger` (or a path,
        coerced to one); when set, one JSONL record is appended per served
        request — including cache hits and failures.

    Example
    -------
    >>> from repro.serving import ForecastEngine, ForecastRequest
    >>> with ForecastEngine(num_workers=4) as engine:
    ...     response = engine.forecast(ForecastRequest(history, horizon=8))
    """

    def __init__(
        self,
        num_workers: int = 4,
        *,
        cache: ForecastCache | None = None,
        ingest_cache: IngestStateCache | None = None,
        retry: RetryPolicy | None = None,
        metrics: MetricsRegistry | None = None,
        max_concurrent_requests: int = 2,
        max_resident_streams: int = 64,
        prefill_tree: RadixPrefillTree | None = None,
        tracer=None,
        ledger: RunLedger | str | None = None,
        sleep=time.sleep,
    ) -> None:
        if num_workers < 1:
            raise ConfigError(f"num_workers must be >= 1, got {num_workers}")
        if max_concurrent_requests < 1:
            raise ConfigError(
                f"max_concurrent_requests must be >= 1, "
                f"got {max_concurrent_requests}"
            )
        if max_resident_streams < 1:
            raise ConfigError(
                f"max_resident_streams must be >= 1, got {max_resident_streams}"
            )
        self.cache = ForecastCache() if cache is None else cache
        self.ingest_cache = (
            IngestStateCache() if ingest_cache is None else ingest_cache
        )
        self.retry = retry or RetryPolicy()
        self.metrics = metrics or MetricsRegistry()
        self.tracer = NULL_TRACER if tracer is None else tracer
        if ledger is None or isinstance(ledger, RunLedger):
            self.ledger = ledger
        else:
            self.ledger = RunLedger(ledger)
        self._sleep = sleep
        self._samples = ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix="mc-sample"
        )
        self._requests = ThreadPoolExecutor(
            max_workers=max_concurrent_requests, thread_name_prefix="mc-request"
        )
        self.prefill_tree = (
            RadixPrefillTree() if prefill_tree is None else prefill_tree
        )
        self.max_resident_streams = max_resident_streams
        self._scheduler: ContinuousScheduler | None = None
        self._scheduler_lock = threading.Lock()
        self._closed = False

    # -- public API -----------------------------------------------------------

    def forecast(
        self,
        request: ForecastRequest | ForecastSpec,
        *,
        on_progress=None,
        ledger_extra: dict | None = None,
    ) -> ForecastResponse:
        """Serve one request on the calling thread (draws still fan out).

        Accepts a :class:`ForecastRequest` or, directly, an executable
        :class:`~repro.core.spec.ForecastSpec` (wrapped via
        :meth:`ForecastRequest.from_spec` with default serving options).

        ``on_progress`` is an optional ``(completed, requested)`` callable
        invoked from worker threads as sample draws retire (pooled
        execution only — lockstep modes retire their streams inside one
        decode pass); the gateway uses it to stream partial-ensemble
        progress.  ``ledger_extra`` carries admission metadata
        (``tenant``, ``admission``, ``enqueued_at``) from the gateway into
        the request span and ledger record; neither affects the forecast.
        """
        self._check_open()
        return self._execute(self._coerce(request), on_progress, ledger_extra)

    def submit(
        self,
        request: ForecastRequest | ForecastSpec,
        *,
        on_progress=None,
        ledger_extra: dict | None = None,
    ) -> Future:
        """Enqueue a request (or spec); returns a Future of :class:`ForecastResponse`.

        Accepts the same ``on_progress``/``ledger_extra`` hooks as
        :meth:`forecast`.
        """
        self._check_open()
        return self._requests.submit(
            self._execute, self._coerce(request), on_progress, ledger_extra
        )

    @staticmethod
    def _coerce(request: ForecastRequest | ForecastSpec) -> ForecastRequest:
        if isinstance(request, ForecastSpec):
            return ForecastRequest.from_spec(request)
        return request

    def forecast_batch(
        self, requests: Iterable[ForecastRequest | ForecastSpec]
    ) -> list[ForecastResponse]:
        """Serve many requests concurrently; responses in request order.

        Never raises for an individual request — failures come back as
        error responses, so one bad series cannot sink a batch.
        """
        futures = [self.submit(request) for request in requests]
        return [future.result() for future in futures]

    def metrics_snapshot(self) -> dict:
        """Current metrics, including live cache and scheduler statistics."""
        snapshot = self.metrics.snapshot()
        snapshot["cache"] = {"type": "cache", **self.cache.stats}
        snapshot["ingest_cache"] = {"type": "cache", **self.ingest_cache.stats}
        snapshot["prefill_tree"] = {"type": "cache", **self.prefill_tree.stats}
        if self._scheduler is not None:
            snapshot["scheduler"] = {"type": "scheduler", **self._scheduler.stats}
        return snapshot

    def close(self) -> None:
        """Shut both pools down; in-flight work completes first."""
        if not self._closed:
            self._closed = True
            self._requests.shutdown(wait=True)
            self._samples.shutdown(wait=True)
            if self._scheduler is not None:
                self._scheduler.close()

    def __enter__(self) -> ForecastEngine:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request execution ----------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigError("engine is closed")

    def _scheduler_instance(self) -> ContinuousScheduler:
        """The shared continuous scheduler, created on first use."""
        with self._scheduler_lock:
            if self._scheduler is None:
                self._scheduler = ContinuousScheduler(
                    max_resident_streams=self.max_resident_streams,
                    prefill_tree=self.prefill_tree,
                    metrics=self.metrics,
                    tracer=self.tracer,
                )
            return self._scheduler

    def _execute(
        self,
        request: ForecastRequest,
        on_progress=None,
        ledger_extra: dict | None = None,
    ) -> ForecastResponse:
        admission = dict(ledger_extra) if ledger_extra else {}
        enqueued_at = admission.pop("enqueued_at", None)
        if enqueued_at is not None:
            queue_wait = time.perf_counter() - enqueued_at
            admission["gateway_queue_wait_seconds"] = queue_wait
            self.metrics.histogram("gateway_queue_wait_seconds").observe(
                queue_wait
            )
        key = forecast_digest(
            request.history, request.config, request.horizon, request.seed
        )
        with self.tracer.span(
            "request",
            request_name=request.name or "",
            scheme=request.config.scheme,
            horizon=int(request.horizon),
            seed=int(request.effective_seed),
        ) as span:
            if span.is_recording:
                if request.tenant:
                    span.set_attribute("tenant", request.tenant)
                if "admission" in admission:
                    span.set_attribute("admission", admission["admission"])
                if "gateway_queue_wait_seconds" in admission:
                    span.set_attribute(
                        "queue_wait",
                        round(admission["gateway_queue_wait_seconds"], 9),
                    )
            response = self._serve(request, key, span, on_progress)
            if span.is_recording:
                span.set_attribute("cache_hit", response.cache_hit)
                span.set_attribute("outcome", _outcome(response))
                span.set_attribute("attempts", response.attempts)
                response.trace = span
        if self.ledger is not None:
            self.ledger.append(
                self._ledger_record(request, response, key, span, admission)
            )
        return response

    def _serve(
        self, request: ForecastRequest, key: str, span: Span, on_progress=None
    ) -> ForecastResponse:
        started = time.perf_counter()
        self.metrics.counter("requests_total").inc()

        if request.use_cache and self.cache.enabled:
            cached = self.cache.get(key)
            if cached is not None:
                wall = time.perf_counter() - started
                self.metrics.counter("cache_hits").inc()
                self.metrics.histogram("request_seconds").observe(wall)
                return ForecastResponse(
                    request, output=cached, cache_hit=True, wall_seconds=wall
                )
            self.metrics.counter("cache_misses").inc()

        deadline = Deadline(request.deadline_seconds)
        state = _RequestState(deadline)
        # "sequential" maps to "pooled" here: engine draws always run on
        # the shared sample pool (outputs are bit-identical regardless).
        if request.execution in ("batched", "continuous"):
            execution = request.execution
        else:
            execution = "pooled"
        forecaster = MultiCastForecaster(
            request.config,
            sample_runner=self._make_runner(state, on_progress),
            tracer=self.tracer,
            state_cache=self.ingest_cache,
            stop=(
                (lambda: deadline.expired)
                if execution in ("batched", "continuous")
                else None
            ),
            scheduler=(
                self._scheduler_instance() if execution == "continuous" else None
            ),
        )
        spec = ForecastSpec.from_config(
            request.config,
            series=request.history,
            horizon=request.horizon,
            seed=request.effective_seed,
            execution=execution,
        )

        self.metrics.gauge("inflight_requests").add(1)
        try:
            output = forecaster.forecast(spec)
        except ReproError as error:
            wall = time.perf_counter() - started
            message = str(error)
            if deadline.expired:
                self.metrics.counter("requests_deadline_exceeded").inc()
                message = (
                    f"deadline of {request.deadline_seconds}s exceeded "
                    f"({message})"
                )
            self.metrics.counter("requests_failed").inc()
            if span.is_recording:
                span.set_attribute("deadline_remaining", deadline.remaining())
                span.set_attribute("error", message)
            return ForecastResponse(
                request,
                error=message,
                attempts=state.max_attempts,
                wall_seconds=wall,
            )
        finally:
            self.metrics.gauge("inflight_requests").add(-1)

        wall = time.perf_counter() - started
        ingest = output.metadata.get("ingest")
        if ingest == "fork":
            self.metrics.counter("ingest_cache_hits").inc()
        elif ingest == "extend":
            self.metrics.counter("ingest_cache_extends").inc()
        elif ingest == "miss":
            self.metrics.counter("ingest_cache_misses").inc()
        if span.is_recording and ingest is not None:
            span.set_attribute("ingest", ingest)
        for occupancy in output.metadata.get("batch_occupancy", ()):
            self.metrics.histogram("decode_batch_occupancy").observe(occupancy)
        requested = output.metadata.get("requested_samples", request.config.num_samples)
        completed = output.metadata.get("completed_samples", requested)
        partial = completed < requested
        if partial:
            self.metrics.counter("requests_partial").inc()
        elif request.use_cache:
            # Partial ensembles are never cached: a retry may do better.
            self.cache.put(key, output)

        self.metrics.histogram("request_seconds").observe(wall)
        for stage, seconds in output.timings.items():
            self.metrics.histogram(f"stage_{stage}_seconds").observe(seconds)

        if span.is_recording:
            span.set_attribute("deadline_remaining", deadline.remaining())
        return ForecastResponse(
            request,
            output=output,
            partial=partial,
            attempts=state.max_attempts,
            wall_seconds=wall,
        )

    def _ledger_record(
        self,
        request: ForecastRequest,
        response: ForecastResponse,
        key: str,
        span: Span,
        admission: dict | None = None,
    ) -> dict:
        """One self-contained JSONL record for the run ledger.

        The ``metrics`` field is a compact counter snapshot at record time
        (request totals, cache hits, failures) — enough to cross-check a
        ``ledger summarize`` report against a ``--metrics-out`` dump.
        ``admission`` carries the gateway's outcome and queue wait when the
        request arrived through one (``admission="direct"`` otherwise).
        """
        output = response.output
        admission = admission or {}
        gateway_wait = admission.get("gateway_queue_wait_seconds")
        record = {
            "unix_time": round(time.time(), 3),
            "name": request.name,
            "tenant": request.tenant,
            "admission": admission.get("admission", "direct"),
            "gateway_queue_wait_seconds": (
                round(gateway_wait, 9) if gateway_wait is not None else None
            ),
            "outcome": _outcome(response),
            "config_hash": key,
            "seed": int(request.effective_seed),
            "scheme": request.config.scheme,
            "sax": request.config.sax is not None,
            "model": request.config.model,
            "horizon": int(request.horizon),
            "execution": (
                output.metadata.get("execution", request.execution)
                if output
                else request.execution
            ),
            "strategy": (
                output.metadata.get("strategy", request.config.strategy)
                if output
                else request.config.strategy
            ),
            "cache_hit": response.cache_hit,
            "partial": response.partial,
            "attempts": response.attempts,
            "error": response.error,
            "wall_seconds": round(response.wall_seconds, 9),
            "prompt_tokens": output.prompt_tokens if output else 0,
            "generated_tokens": output.generated_tokens if output else 0,
            "ingest": output.metadata.get("ingest") if output else None,
            "queue_wait_seconds": (
                round(output.metadata["queue_wait_seconds"], 9)
                if output and "queue_wait_seconds" in output.metadata
                else None
            ),
            "timings": (
                {k: round(v, 9) for k, v in output.timings.items()}
                if output
                else {}
            ),
            "spans": span.to_dict() if span.is_recording else None,
            "metrics": {
                name: instrument["value"]
                for name, instrument in self.metrics.snapshot().items()
                if instrument.get("type") == "counter"
            },
        }
        return record

    # -- sample fan-out -------------------------------------------------------

    def _make_runner(self, state: _RequestState, on_progress=None):
        """Build the per-request sample runner handed to the forecaster.

        Tasks go to the shared sample pool; each is wrapped in the retry
        policy.  Gathering honours the request deadline: draws that are
        still pending when it expires are abandoned (reported as ``None``),
        which downstream becomes a partial-ensemble forecast — or, when
        nothing finished in time, a deadline error.

        ``on_progress`` (when given) is called as ``(completed, total)``
        from pool threads each time a draw finishes successfully — the
        gateway's streaming hook.  Progress is advisory: a callback that
        raises is dropped, never the draw.
        """

        def runner(
            tasks: list[SampleTask],
        ) -> list[GenerationResult | None]:
            futures = [
                self._samples.submit(self._draw_with_retry, task, state)
                for task in tasks
            ]
            if on_progress is not None:
                total = len(tasks)
                progress_lock = threading.Lock()
                completed_box = [0]

                def _notify(future) -> None:
                    if future.cancelled() or future.exception() is not None:
                        return
                    with progress_lock:
                        completed_box[0] += 1
                        completed = completed_box[0]
                    try:
                        on_progress(completed, total)
                    except Exception:  # noqa: BLE001 - advisory hook
                        pass

                for future in futures:
                    future.add_done_callback(_notify)
            results: list[GenerationResult | None] = []
            for future in futures:
                try:
                    results.append(future.result(timeout=state.deadline.remaining()))
                except FutureTimeoutError:
                    future.cancel()
                    self.metrics.counter("samples_abandoned").inc()
                    results.append(None)
                except GenerationError:
                    self.metrics.counter("samples_failed").inc()
                    results.append(None)
            return results

        return runner

    def _draw_with_retry(
        self, task: SampleTask, state: _RequestState
    ) -> GenerationResult:
        def on_retry(attempt: int, error: Exception) -> None:
            del attempt, error
            self.metrics.counter("sample_retries").inc()

        try:
            result, attempts = self.retry.run(
                task,
                deadline=state.deadline,
                sleep=self._sleep,
                on_retry=on_retry,
            )
        except GenerationError:
            state.record_attempts(self.retry.max_attempts)
            raise
        state.record_attempts(attempts)
        return result

"""Content-addressed LRU cache of forecast outputs.

A forecast is a pure function of (history values, configuration, horizon,
seed), so repeated requests — backtest windows re-run with new settings
elsewhere, dashboard refreshes, retried jobs — can be answered from memory.
Keys are SHA-256 digests of the exact input bytes, making collisions
practically impossible and the cache safe to share between configs.

Entries are copied on the way in and out: callers may freely mutate a
returned :class:`~repro.core.output.ForecastOutput` (e.g. seasonal
restoration does) without corrupting the cached value.
"""

from __future__ import annotations

import copy
import hashlib
import threading
from collections import OrderedDict

import numpy as np

from repro.core.config import MultiCastConfig
from repro.core.output import ForecastOutput
from repro.exceptions import ConfigError

__all__ = ["ForecastCache", "forecast_digest"]


def forecast_digest(
    history: np.ndarray,
    config: MultiCastConfig,
    horizon: int,
    seed: int | None = None,
) -> str:
    """SHA-256 hex digest identifying one forecast computation.

    ``config`` is a frozen dataclass whose ``repr`` lists every field, so
    two configs hash equal exactly when every pipeline-relevant setting is
    equal.  The effective seed (request override or config default) is part
    of the key because sampling is seed-deterministic.
    """
    values = np.ascontiguousarray(np.asarray(history, dtype=float))
    effective_seed = config.seed if seed is None else seed
    digest = hashlib.sha256()
    digest.update(str(values.shape).encode())
    digest.update(values.tobytes())
    digest.update(repr(config).encode())
    digest.update(str(int(horizon)).encode())
    digest.update(str(int(effective_seed)).encode())
    return digest.hexdigest()


class ForecastCache:
    """Thread-safe LRU mapping digest → :class:`ForecastOutput`.

    ``max_entries=0`` builds a disabled cache (every ``get`` misses, every
    ``put`` is dropped) so callers can turn caching off without branching.
    """

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 0:
            raise ConfigError(f"max_entries must be >= 0, got {max_entries}")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, ForecastOutput] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def enabled(self) -> bool:
        """False for a zero-capacity cache (stores and lookups are no-ops)."""
        return self.max_entries > 0

    def get(self, key: str) -> ForecastOutput | None:
        """The cached output for ``key`` (a private copy), or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return copy.deepcopy(entry)

    def put(self, key: str, output: ForecastOutput) -> None:
        """Store a private copy of ``output``, evicting the LRU entry if full."""
        if not self.enabled:
            return
        entry = copy.deepcopy(output)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = entry
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (hit/miss statistics are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def stats(self) -> dict:
        """Hit/miss/eviction accounting since construction."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": self._hits / lookups if lookups else 0.0,
            }

    def __repr__(self) -> str:
        stats = self.stats
        return (
            f"ForecastCache(entries={stats['entries']}/{self.max_entries}, "
            f"hits={stats['hits']}, misses={stats['misses']})"
        )

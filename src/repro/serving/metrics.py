"""Process-local metrics: counters, gauges, and latency histograms.

The serving engine needs to answer "how is the service doing?" without any
external dependency, so this module implements the minimal Prometheus-style
instrument set in pure Python.  All instruments are thread-safe; a
:class:`MetricsRegistry` groups them under names and exports one JSON
snapshot for dashboards, tests, and the ``batch`` CLI's ``--metrics-out``.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager

import numpy as np

from repro.exceptions import ConfigError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Quantiles reported by every histogram snapshot.
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


class Counter:
    """A monotonically increasing count (requests served, cache hits, ...)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Increase the count; negative increments are rejected."""
        if amount < 0:
            raise ConfigError(f"counters only go up; got increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current count."""
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        """Exportable state: ``{"type": "counter", "value": ...}``."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that goes up and down (in-flight requests, cache size)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        """Shift the gauge by ``amount`` (negative to decrement)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current level."""
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        """Exportable state: ``{"type": "gauge", "value": ...}``."""
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Observation distribution with exact quantiles over a sliding window.

    Keeps the most recent ``window`` observations (default 4096 — enough for
    exact p99 at serving scale while bounding memory) plus running
    count/total over the full lifetime.
    """

    def __init__(self, window: int = 4096) -> None:
        if window < 1:
            raise ConfigError(f"histogram window must be >= 1, got {window}")
        self._lock = threading.Lock()
        self._window = window
        self._values: list[float] = []
        self._count = 0
        self._total = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation (e.g. a request latency in seconds)."""
        value = float(value)
        with self._lock:
            self._values.append(value)
            if len(self._values) > self._window:
                del self._values[: len(self._values) - self._window]
            self._count += 1
            self._total += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        """Lifetime number of observations (not bounded by the window)."""
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        """Lifetime sum of observations."""
        with self._lock:
            return self._total

    @property
    def mean(self) -> float:
        """Lifetime mean observation (0 when empty)."""
        with self._lock:
            return self._total / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Exact ``q``-quantile of the windowed observations (0 if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if not self._values:
                return 0.0
            return float(np.quantile(np.asarray(self._values), q))

    def snapshot(self) -> dict:
        """Count/total/mean/min/max plus exact p50/p95/p99 quantiles."""
        with self._lock:
            values = np.asarray(self._values) if self._values else None
            out = {
                "type": "histogram",
                "count": self._count,
                "total": self._total,
                "mean": self._total / self._count if self._count else 0.0,
                "min": self._min if self._count else 0.0,
                "max": self._max if self._count else 0.0,
            }
        for q in DEFAULT_QUANTILES:
            key = f"p{int(q * 100)}"
            out[key] = float(np.quantile(values, q)) if values is not None else 0.0
        return out


class MetricsRegistry:
    """Named instruments with get-or-create semantics and JSON export.

    >>> registry = MetricsRegistry()
    >>> registry.counter("requests_total").inc()
    >>> with registry.timer("request_seconds"):
    ...     pass
    >>> snapshot = registry.snapshot()
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, kind):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = kind()
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise ConfigError(
                    f"metric {name!r} is a {type(instrument).__name__}, "
                    f"not a {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the named gauge."""
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Get or create the named histogram."""
        return self._get_or_create(name, Histogram)

    @contextmanager
    def timer(self, histogram_name: str):
        """Time a block and observe the elapsed seconds."""
        histogram = self.histogram(histogram_name)
        started = time.perf_counter()
        try:
            yield
        finally:
            histogram.observe(time.perf_counter() - started)

    def snapshot(self) -> dict:
        """One nested dict of every instrument's current state."""
        with self._lock:
            instruments = dict(self._instruments)
        return {name: inst.snapshot() for name, inst in sorted(instruments.items())}

    def to_json(self, indent: int | None = 2) -> str:
        """The full snapshot serialised as JSON (the ``--metrics-out`` dump)."""
        return json.dumps(self.snapshot(), indent=indent)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._instruments

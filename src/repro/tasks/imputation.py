"""Zero-shot imputation of missing spans (paper future work).

A missing run is infilled *bidirectionally*: the in-context model continues
the observed prefix forward across the gap, a second model continues the
reversed suffix backward, and the two constrained generations are blended
with linear cross-fade weights so the fill stays anchored at both ends.
Several samples are drawn per direction and the per-timestamp median taken,
exactly like the forecasting pipeline.

Multivariate input is imputed per dimension (each dimension's observed
values fit their own scaler).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import MultiCastConfig
from repro.encoding import parse_token_stream
from repro.exceptions import DataError
from repro.llm import PeriodicPatternConstraint, child_seeds, get_model
from repro.scaling import FixedDigitScaler
from repro.tasks._serialize import TOKENS_PER_STEP, serialize_series

__all__ = ["impute"]


def _missing_runs(mask: np.ndarray) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` runs where ``mask`` is True (= missing)."""
    runs = []
    start = None
    for i, missing in enumerate(mask):
        if missing and start is None:
            start = i
        elif not missing and start is not None:
            runs.append((start, i))
            start = None
    if start is not None:
        runs.append((start, mask.size))
    return runs


def _generate_fill(
    context_values: np.ndarray,
    length: int,
    scaler: FixedDigitScaler,
    config: MultiCastConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Median constrained continuation of ``context_values`` (1-D floats)."""
    serialized = serialize_series(
        context_values, scaler=scaler, trailing_separator=True
    )
    model = get_model(config.model, vocab_size=len(serialized.vocabulary))
    pattern = [serialized.digit_ids] * serialized.codec.num_digits + [
        frozenset([serialized.separator_id])
    ]
    constraint = PeriodicPatternConstraint(pattern)
    needed = length * TOKENS_PER_STEP(serialized.codec.num_digits)
    seeds = child_seeds(rng, config.num_samples)
    samples = np.empty((config.num_samples, length))
    for s in range(config.num_samples):
        result = model.generate(
            serialized.ids,
            needed,
            np.random.default_rng(seeds[s]),
            constraint=constraint,
            # Infill decodes conservatively: the gap is anchored on both
            # sides, so exploration only hurts.
            temperature=0.35,
        )
        parsed = parse_token_stream(
            serialized.vocabulary.decode(result.tokens), serialized.codec
        )
        values = scaler.inverse_transform(parsed)
        if values.size < length:
            pad_value = values[-1] if values.size else context_values[-1]
            values = np.concatenate([values, np.full(length - values.size, pad_value)])
        samples[s] = values[:length]
    return np.median(samples, axis=0)


def _impute_univariate(
    series: np.ndarray,
    mask: np.ndarray,
    config: MultiCastConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    observed = series[~mask]
    if observed.size < 4:
        raise DataError("imputation needs at least 4 observed values")
    scaler = FixedDigitScaler(num_digits=config.num_digits).fit(observed)
    result = series.astype(float).copy()
    for start, stop in _missing_runs(mask):
        length = stop - start
        prefix = result[:start][~mask[:start]]
        suffix = result[stop:][~mask[stop:]]
        forward = backward = None
        if prefix.size >= 2:
            forward = _generate_fill(prefix, length, scaler, config, rng)
        if suffix.size >= 2:
            backward = _generate_fill(suffix[::-1], length, scaler, config, rng)[::-1]
        if forward is None and backward is None:
            raise DataError(
                f"missing run [{start}, {stop}) has no usable context on "
                "either side"
            )
        if forward is None:
            fill = backward
        elif backward is None:
            fill = forward
        else:
            # Cross-fade: trust the forward pass near the left anchor and
            # the backward pass near the right anchor.
            weights = (
                np.arange(1, length + 1) / (length + 1) if length > 1 else np.array([0.5])
            )
            fill = (1.0 - weights) * forward + weights * backward
        result[start:stop] = fill
    return result


def impute(
    series: np.ndarray,
    mask: np.ndarray,
    config: MultiCastConfig | None = None,
    seed: int | None = None,
) -> np.ndarray:
    """Fill masked entries of a series with zero-shot constrained generation.

    Parameters
    ----------
    series:
        ``(n,)`` or ``(n, d)`` float array.  Masked entries may hold any
        placeholder value (they are ignored).
    mask:
        Boolean array of the same leading shape; True marks *missing*.
        For 2-D input the mask may be 1-D (same gaps in all dimensions) or
        2-D (per-dimension gaps).
    config:
        Reuses :class:`MultiCastConfig` for ``num_digits``, ``num_samples``,
        ``model`` and ``seed``.

    Returns a new array with the gaps filled; observed entries are untouched.
    """
    config = config or MultiCastConfig()
    values = np.asarray(series, dtype=float)
    missing = np.asarray(mask, dtype=bool)
    rng = np.random.default_rng(config.seed if seed is None else seed)

    if values.ndim == 1:
        if missing.shape != values.shape:
            raise DataError("mask shape must match the series")
        if not missing.any():
            return values.copy()
        if missing.all():
            raise DataError("cannot impute a fully-missing series")
        return _impute_univariate(values, missing, config, rng)

    if values.ndim != 2:
        raise DataError(f"expected (n,) or (n, d) input, got shape {values.shape}")
    if missing.ndim == 1:
        missing = np.repeat(missing[:, None], values.shape[1], axis=1)
    if missing.shape != values.shape:
        raise DataError("mask shape must match the series")
    columns = []
    for k in range(values.shape[1]):
        if missing[:, k].any():
            columns.append(
                _impute_univariate(values[:, k], missing[:, k], config, rng)
            )
        else:
            columns.append(values[:, k].copy())
    return np.stack(columns, axis=1)

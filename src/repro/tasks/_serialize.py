"""Shared serialisation helper for the zero-shot task extensions.

All three tasks (imputation, anomaly, change-point) need the same move:
turn a univariate float series into the corpus-id stream the LLM substrate
consumes, with the scaler kept around to decode model output.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.encoding import (
    SEPARATOR,
    DigitCodec,
    digit_vocabulary,
    render_token_stream,
)
from repro.encoding.vocabulary import Vocabulary
from repro.exceptions import DataError
from repro.scaling import FixedDigitScaler

__all__ = ["SerializedSeries", "serialize_series", "TOKENS_PER_STEP"]


def TOKENS_PER_STEP(num_digits: int) -> int:
    """Stream tokens per timestamp: the digits plus one separator."""
    return num_digits + 1


@dataclass
class SerializedSeries:
    """A series rendered as corpus ids, with everything needed to decode."""

    ids: list[int]
    scaler: FixedDigitScaler
    vocabulary: Vocabulary
    codec: DigitCodec

    @property
    def separator_id(self) -> int:
        return self.vocabulary.id_of(SEPARATOR)

    @property
    def digit_ids(self) -> frozenset[int]:
        return self.vocabulary.ids_of("0123456789")


def serialize_series(
    series: np.ndarray,
    num_digits: int = 3,
    scaler: FixedDigitScaler | None = None,
    trailing_separator: bool = True,
) -> SerializedSeries:
    """Scale + tokenize a 1-D series into corpus ids.

    If ``scaler`` is given it must already be fitted (used to keep one scale
    across the pieces of a split series); otherwise a fresh scaler is fit on
    ``series`` itself.
    """
    values = np.asarray(series, dtype=float)
    if values.ndim != 1 or values.size < 1:
        raise DataError(f"expected a non-empty 1-D series, got shape {values.shape}")
    if scaler is None:
        scaler = FixedDigitScaler(num_digits=num_digits).fit(values)
    codec = DigitCodec(scaler.num_digits)
    vocabulary = digit_vocabulary()
    tokens = render_token_stream(scaler.transform(values).tolist(), codec)
    if trailing_separator:
        tokens = tokens + [SEPARATOR]
    return SerializedSeries(
        ids=vocabulary.encode(tokens),
        scaler=scaler,
        vocabulary=vocabulary,
        codec=codec,
    )

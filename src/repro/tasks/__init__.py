"""Zero-shot time-series tasks beyond forecasting.

The paper's conclusion names imputation, anomaly detection, and change-point
detection as the natural next applications of the same machinery ("we plan
to expand our research on employing LLMs for zero-shot solutions on other
similar time series-related tasks").  This package implements all three on
top of the identical serialisation + in-context-model substrate:

* :func:`~repro.tasks.imputation.impute` — bidirectional constrained infill
  of missing spans;
* :func:`~repro.tasks.anomaly.anomaly_scores` — per-timestamp surprise
  (negative log-likelihood) under the in-context model;
* :func:`~repro.tasks.changepoint.changepoint_scores` — predictability-drop
  scoring of candidate change points.
"""

from repro.tasks.imputation import impute
from repro.tasks.anomaly import anomaly_scores, detect_anomalies
from repro.tasks.changepoint import changepoint_scores, detect_changepoints
from repro.tasks.evaluation import (
    DetectionScore,
    inject_level_shift,
    inject_point_anomalies,
    inject_regime_change,
    score_detections,
)

__all__ = [
    "impute",
    "anomaly_scores",
    "detect_anomalies",
    "changepoint_scores",
    "detect_changepoints",
    "DetectionScore",
    "score_detections",
    "inject_point_anomalies",
    "inject_level_shift",
    "inject_regime_change",
]

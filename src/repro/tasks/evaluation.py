"""Evaluation harness for the zero-shot task extensions.

Forecasting has RMSE; detection tasks need their own protocol.  This module
provides (i) corruption generators that plant ground-truth events into a
clean series — point anomalies, level shifts, and regime changes — and
(ii) tolerance-windowed precision/recall/F1 for scoring a detector's hits
against the planted positions (a hit within ``tolerance`` steps of a true
event counts, one hit per event).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError

__all__ = [
    "inject_point_anomalies",
    "inject_level_shift",
    "inject_regime_change",
    "DetectionScore",
    "score_detections",
]


def inject_point_anomalies(
    series: np.ndarray,
    count: int,
    magnitude: float = 4.0,
    seed: int = 0,
    margin: int = 10,
) -> tuple[np.ndarray, np.ndarray]:
    """Plant ``count`` isolated spikes; returns (corrupted, true_positions).

    Spikes alternate sign, have amplitude ``magnitude`` times the series'
    standard deviation, and stay ``margin`` steps away from the edges and
    from each other.
    """
    values = np.asarray(series, dtype=float).copy()
    if values.ndim != 1:
        raise DataError("expected a univariate series")
    if count < 1:
        raise DataError(f"count must be >= 1, got {count}")
    usable = values.size - 2 * margin
    if usable < count * (margin + 1):
        raise DataError("series too short for the requested anomalies")
    rng = np.random.default_rng(seed)
    positions: list[int] = []
    while len(positions) < count:
        candidate = int(rng.integers(margin, values.size - margin))
        if all(abs(candidate - p) > margin for p in positions):
            positions.append(candidate)
    scale = values.std() if values.std() > 0 else 1.0
    for i, position in enumerate(sorted(positions)):
        sign = 1.0 if i % 2 == 0 else -1.0
        values[position] += sign * magnitude * scale
    return values, np.asarray(sorted(positions), dtype=int)


def inject_level_shift(
    series: np.ndarray, position: int, magnitude: float = 3.0
) -> np.ndarray:
    """Add a persistent step of ``magnitude`` std-units from ``position`` on."""
    values = np.asarray(series, dtype=float).copy()
    if values.ndim != 1:
        raise DataError("expected a univariate series")
    if not 0 < position < values.size:
        raise DataError(f"position {position} outside the series")
    scale = values.std() if values.std() > 0 else 1.0
    values[position:] += magnitude * scale
    return values


def inject_regime_change(
    length_a: int,
    length_b: int,
    period_a: float = 20.0,
    period_b: float = 7.0,
    offset_b: float = 2.0,
    noise: float = 0.05,
    seed: int = 0,
) -> tuple[np.ndarray, int]:
    """Two concatenated seasonal regimes; returns (series, break_position)."""
    if length_a < 8 or length_b < 8:
        raise DataError("each regime needs at least 8 points")
    rng = np.random.default_rng(seed)
    part_a = np.sin(2 * np.pi * np.arange(length_a) / period_a)
    part_b = offset_b + np.sin(2 * np.pi * np.arange(length_b) / period_b)
    series = np.concatenate([part_a, part_b])
    series += noise * rng.normal(size=series.size)
    return series, length_a


@dataclass(frozen=True)
class DetectionScore:
    """Tolerance-windowed detection quality."""

    precision: float
    recall: float
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        if self.precision + self.recall == 0.0:
            return 0.0
        return 2.0 * self.precision * self.recall / (self.precision + self.recall)


def score_detections(
    detected: np.ndarray,
    truth: np.ndarray,
    tolerance: int = 3,
) -> DetectionScore:
    """Match detections to planted events within ``tolerance`` steps.

    Greedy one-to-one matching, nearest first: each true event absorbs at
    most one detection; unmatched detections are false positives, unmatched
    events false negatives.
    """
    if tolerance < 0:
        raise DataError(f"tolerance must be >= 0, got {tolerance}")
    hits = sorted(int(d) for d in np.asarray(detected, dtype=int))
    events = sorted(int(t) for t in np.asarray(truth, dtype=int))
    matched_hits: set[int] = set()
    matched_events: set[int] = set()
    pairs = sorted(
        (abs(h - e), hi, ei)
        for hi, h in enumerate(hits)
        for ei, e in enumerate(events)
        if abs(h - e) <= tolerance
    )
    for _, hi, ei in pairs:
        if hi in matched_hits or ei in matched_events:
            continue
        matched_hits.add(hi)
        matched_events.add(ei)
    tp = len(matched_events)
    fp = len(hits) - len(matched_hits)
    fn = len(events) - len(matched_events)
    precision = tp / len(hits) if hits else (1.0 if not events else 0.0)
    recall = tp / len(events) if events else 1.0
    return DetectionScore(
        precision=precision,
        recall=recall,
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
    )

"""Zero-shot anomaly detection by in-context surprise (paper future work).

Each timestamp's digit tokens are scored by their negative log-likelihood
under the in-context model, conditioned on everything before them — one
causal pass over the serialised stream.  A value that breaks the pattern
the model has induced so far is expensive to encode and gets a high score.

The first few timestamps are always surprising (the model has no context
yet), so detection applies a warm-up window before thresholding.
Multivariate input is scored per dimension and aggregated by the per-
timestamp maximum (an anomaly in any dimension flags the timestamp).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import MultiCastConfig
from repro.exceptions import DataError
from repro.llm import get_model
from repro.tasks._serialize import TOKENS_PER_STEP, serialize_series

__all__ = ["anomaly_scores", "detect_anomalies"]


def _univariate_scores(series: np.ndarray, config: MultiCastConfig) -> np.ndarray:
    serialized = serialize_series(
        series, num_digits=config.num_digits, trailing_separator=False
    )
    model = get_model(config.model, vocab_size=len(serialized.vocabulary))
    token_nll = model.sequence_nll(serialized.ids)
    per_step = TOKENS_PER_STEP(serialized.codec.num_digits)
    n = series.size
    scores = np.empty(n)
    for t in range(n):
        start = t * per_step
        stop = min(start + serialized.codec.num_digits, token_nll.size)
        scores[t] = float(token_nll[start:stop].mean())
    return scores


def anomaly_scores(
    series: np.ndarray, config: MultiCastConfig | None = None
) -> np.ndarray:
    """Per-timestamp surprise scores (higher = more anomalous).

    Accepts ``(n,)`` or ``(n, d)`` input; multivariate scores are the
    per-timestamp maximum across dimensions.
    """
    config = config or MultiCastConfig()
    values = np.asarray(series, dtype=float)
    if values.ndim == 1:
        values = values[:, None]
    if values.ndim != 2 or values.shape[0] < 4:
        raise DataError("anomaly scoring needs an (n>=4, d) series")
    if not np.isfinite(values).all():
        raise DataError("series contains NaN or inf")
    columns = [
        _univariate_scores(values[:, k], config) for k in range(values.shape[1])
    ]
    return np.max(np.stack(columns, axis=1), axis=1)


def detect_anomalies(
    series: np.ndarray,
    config: MultiCastConfig | None = None,
    threshold_quantile: float = 0.98,
    warmup: int = 8,
) -> np.ndarray:
    """Indices whose score exceeds the given quantile, after a warm-up.

    ``warmup`` timestamps at the start are exempt (the in-context model is
    still cold there) and excluded from the quantile estimate.
    """
    if not 0.0 < threshold_quantile < 1.0:
        raise DataError(
            f"threshold_quantile must be in (0, 1), got {threshold_quantile}"
        )
    scores = anomaly_scores(series, config)
    if warmup < 0 or warmup >= scores.size:
        raise DataError(f"warmup must be in [0, {scores.size - 1}], got {warmup}")
    active = scores[warmup:]
    threshold = float(np.quantile(active, threshold_quantile))
    hits = np.nonzero(active > threshold)[0] + warmup
    return hits

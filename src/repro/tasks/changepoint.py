"""Zero-shot change-point detection by predictability drop (paper future work).

At each candidate position the series is split into a left and a right
window.  The right window's serialised tokens are scored under an
in-context model conditioned on the left window; a structural break makes
the right window expensive to encode given the left.  Subtracting the right
window's *self*-conditioned code length (the same model warmed up on the
right window's own past) normalises away how intrinsically noisy the region
is — the classic compression-distance construction, with the PPM model
playing the compressor.

Scores are high at breaks; :func:`detect_changepoints` picks peaks above a
quantile threshold with a minimum separation.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import MultiCastConfig
from repro.exceptions import DataError
from repro.llm import get_model
from repro.scaling import FixedDigitScaler
from repro.tasks._serialize import serialize_series

__all__ = ["changepoint_scores", "detect_changepoints"]


def _window_nll(
    window: np.ndarray,
    context: np.ndarray | None,
    scaler: FixedDigitScaler,
    config: MultiCastConfig,
) -> float:
    """Mean token NLL of ``window`` conditioned on ``context`` (may be None)."""
    target = serialize_series(window, scaler=scaler, trailing_separator=False)
    model = get_model(config.model, vocab_size=len(target.vocabulary))
    if context is None:
        context_ids: list[int] = []
    else:
        context_ids = serialize_series(
            context, scaler=scaler, trailing_separator=True
        ).ids
    return float(model.sequence_nll(target.ids, context=context_ids).mean())


def changepoint_scores(
    series: np.ndarray,
    window: int = 20,
    config: MultiCastConfig | None = None,
) -> np.ndarray:
    """Change-point score per timestamp (0 where windows don't fit).

    ``scores[t]`` compares how well the left window ``series[t-window:t]``
    predicts the right window ``series[t:t+window]`` against the right
    window's self-predictability.  Univariate input only; apply per
    dimension for multivariate series.
    """
    config = config or MultiCastConfig()
    values = np.asarray(series, dtype=float)
    if values.ndim != 1:
        raise DataError("changepoint_scores expects a univariate series")
    n = values.size
    if window < 4:
        raise DataError(f"window must be >= 4, got {window}")
    if n < 2 * window + 1:
        raise DataError(
            f"series of length {n} too short for window={window}"
        )
    if not np.isfinite(values).all():
        raise DataError("series contains NaN or inf")

    scaler = FixedDigitScaler(num_digits=config.num_digits).fit(values)
    scores = np.zeros(n)
    for t in range(window, n - window + 1):
        left = values[t - window : t]
        right = values[t : t + window]
        cross = _window_nll(right, left, scaler, config)
        # Self-predictability: the right window conditioned on its own
        # first half, measuring local noisiness.
        half = window // 2
        own = _window_nll(right[half:], right[:half], scaler, config)
        scores[t] = cross - own
    return scores


def detect_changepoints(
    series: np.ndarray,
    window: int = 20,
    config: MultiCastConfig | None = None,
    threshold_quantile: float = 0.95,
    min_separation: int | None = None,
) -> np.ndarray:
    """Peak positions of the change-point score above a quantile threshold.

    Peaks closer than ``min_separation`` (default: ``window``) collapse to
    the strongest one, since one structural break inflates a whole
    neighbourhood of scores.
    """
    if not 0.0 < threshold_quantile < 1.0:
        raise DataError(
            f"threshold_quantile must be in (0, 1), got {threshold_quantile}"
        )
    scores = changepoint_scores(series, window=window, config=config)
    min_separation = window if min_separation is None else min_separation
    active = scores[scores != 0.0]
    if active.size == 0:
        return np.empty(0, dtype=int)
    threshold = float(np.quantile(active, threshold_quantile))
    candidates = np.nonzero(scores > threshold)[0]
    picked: list[int] = []
    for index in candidates[np.argsort(scores[candidates])[::-1]]:
        if all(abs(index - p) >= min_separation for p in picked):
            picked.append(int(index))
    return np.asarray(sorted(picked), dtype=int)

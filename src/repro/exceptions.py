"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class at API boundaries while still being able to
distinguish failure modes when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class ScalingError(ReproError):
    """A scaler was misused (e.g. transform before fit) or cannot represent
    its input (e.g. non-finite values)."""


class EncodingError(ReproError):
    """Tokenization, vocabulary lookup, or stream parsing failed."""


class GenerationError(ReproError):
    """The language model substrate could not produce a usable continuation."""


class DataError(ReproError):
    """A dataset is malformed (wrong shape, NaNs, too short for the task)."""


class FittingError(ReproError):
    """A statistical model (ARIMA, LSTM) failed to fit its training data."""

"""Load-test drivers: how arrivals hit the gateway.

Two canonical shapes:

* :func:`run_open_loop` — arrivals fire on a fixed schedule (``rate``
  requests/second) regardless of how the system keeps up.  This is the
  honest overload test: when the gateway falls behind, latency and shed
  rate grow instead of the offered load silently dropping (no
  coordinated omission).
* :func:`run_closed_loop` — ``concurrency`` workers each keep exactly
  one request in flight, submitting the next the moment the previous
  resolves.  This measures sustainable throughput at a fixed
  concurrency rather than behaviour under a fixed offered rate.

Both return one :class:`RequestSample` per workload item, in arrival
order, which :mod:`repro.loadtest.report` aggregates.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from repro.gateway.admission import Overloaded, QuotaExceeded
from repro.gateway.gateway import ForecastGateway
from repro.loadtest.workload import WorkloadItem
from repro.serving.request import ForecastRequest

__all__ = ["RequestSample", "run_closed_loop", "run_open_loop"]


@dataclass(frozen=True)
class RequestSample:
    """What one arrival experienced, end to end.

    ``outcome`` is ``"ok"``, ``"partial"``, ``"failed"`` (served with an
    error), ``"shed"`` or ``"quota"`` (rejected at the door).
    ``latency_seconds`` is submit-to-resolution for served requests and
    submit-to-rejection (effectively 0) for rejected ones.
    ``deadline_hit`` is True when the request was served successfully
    within its own deadline (always True for successful requests that
    had no deadline, always False for rejections).
    """

    name: str
    tenant: str
    outcome: str
    latency_seconds: float
    coalesced: bool = False
    cache_hit: bool = False
    deadline_hit: bool = False


async def _serve_one(
    gateway: ForecastGateway, item: WorkloadItem
) -> RequestSample:
    """Submit one workload item and watch it to resolution."""
    started = time.perf_counter()
    request = ForecastRequest.from_spec(
        item.spec,
        deadline_seconds=item.deadline_seconds,
        name=item.name,
        tenant=item.tenant,
    )
    try:
        handle = await gateway.submit(request)
    except Overloaded:
        return RequestSample(
            name=item.name,
            tenant=item.tenant,
            outcome="shed",
            latency_seconds=time.perf_counter() - started,
        )
    except QuotaExceeded:
        return RequestSample(
            name=item.name,
            tenant=item.tenant,
            outcome="quota",
            latency_seconds=time.perf_counter() - started,
        )
    response = await gateway.result(handle)
    latency = time.perf_counter() - started
    if not response.ok:
        outcome = "failed"
    elif response.partial:
        outcome = "partial"
    else:
        outcome = "ok"
    deadline_hit = response.ok and (
        item.deadline_seconds is None or latency <= item.deadline_seconds
    )
    return RequestSample(
        name=item.name,
        tenant=item.tenant,
        outcome=outcome,
        latency_seconds=latency,
        coalesced=handle.coalesced,
        cache_hit=response.cache_hit,
        deadline_hit=deadline_hit,
    )


async def run_open_loop(
    gateway: ForecastGateway,
    workload: list[WorkloadItem],
    *,
    rate: float,
) -> list[RequestSample]:
    """Fire arrivals at ``rate`` requests/second, never waiting for results.

    Arrival ``i`` is scheduled at ``i / rate`` seconds after the start;
    if the loop falls behind schedule it submits immediately (offered
    load is preserved, not thinned).  Returns samples in arrival order
    once every request resolves.
    """
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    start = time.perf_counter()
    tasks: list[asyncio.Task] = []
    for index, item in enumerate(workload):
        delay = start + index / rate - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(_serve_one(gateway, item)))
    return list(await asyncio.gather(*tasks))


async def run_closed_loop(
    gateway: ForecastGateway,
    workload: list[WorkloadItem],
    *,
    concurrency: int = 4,
) -> list[RequestSample]:
    """Serve the workload with ``concurrency`` one-in-flight workers.

    Workers pull the next arrival as soon as their previous request
    resolves — offered load self-adjusts to what the system sustains.
    Returns samples in arrival order.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    queue: asyncio.Queue = asyncio.Queue()
    for position, item in enumerate(workload):
        queue.put_nowait((position, item))
    samples: list[RequestSample | None] = [None] * len(workload)

    async def worker() -> None:
        while True:
            try:
                position, item = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            samples[position] = await _serve_one(gateway, item)

    await asyncio.gather(
        *(worker() for _ in range(min(concurrency, len(workload))))
    )
    return [sample for sample in samples if sample is not None]

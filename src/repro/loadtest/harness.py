"""The synchronous load-test entry point the CLI and benchmarks share.

:func:`run_loadtest` owns the whole lifecycle: build (or accept) a
workload, stand up a :class:`~repro.gateway.gateway.ForecastGateway`
with the configured admission limits, drive it with the chosen driver
(open- or closed-loop), and fold the samples into a
:class:`~repro.loadtest.report.LoadTestReport`.  It is a plain blocking
function (``asyncio.run`` inside) so ``repro-cli loadtest``,
``benchmarks/bench_loadtest.py`` and the test suite all call the same
code path.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.exceptions import ConfigError
from repro.gateway.admission import TenantQuota
from repro.gateway.gateway import ForecastGateway
from repro.loadtest.drivers import run_closed_loop, run_open_loop
from repro.loadtest.report import LoadTestReport, build_report
from repro.loadtest.workload import (
    WorkloadItem,
    replay_workload,
    synthesize_workload,
)
from repro.serving.cache import ForecastCache
from repro.serving.engine import ForecastEngine

__all__ = ["LoadTestConfig", "run_loadtest"]

_DRIVERS = ("open", "closed")


@dataclass(frozen=True)
class LoadTestConfig:
    """Everything one load-test run needs, in one place.

    ``driver`` selects :func:`~repro.loadtest.drivers.run_open_loop`
    (``"open"``, paced by ``rate`` requests/second) or
    :func:`~repro.loadtest.drivers.run_closed_loop` (``"closed"``, paced
    by ``concurrency`` in-flight workers).  ``ledger_path`` switches the
    workload source from synthesis to ledger replay.  ``shards`` selects
    the engine behind the gateway: ``0`` (default) serves in-process,
    ``N >= 1`` stands up a :class:`~repro.sharding.ShardedEngine` with
    ``N`` decode worker processes (bit-identical results; see
    ``docs/SERVING.md``, "Scaling out").  The remaining fields mirror
    :func:`~repro.loadtest.workload.synthesize_workload` and the
    gateway's admission knobs.
    """

    requests: int = 1000
    driver: str = "open"
    rate: float = 200.0
    concurrency: int = 8
    ledger_path: str | None = None
    distinct: int = 50
    seed: int = 0
    history_length: int = 64
    horizon: int = 3
    num_samples: int = 2
    model: str = "uniform-sim"
    execution: str = "batched"
    deadline_seconds: float | None = None
    max_pending: int = 64
    quota_rate: float | None = None
    quota_burst: float = 1.0
    coalesce: bool = True
    use_result_cache: bool = True
    tenants: tuple[str, ...] = ("alpha", "beta", "gamma")
    ledger_out: str | None = field(default=None)
    shards: int = 0

    def __post_init__(self) -> None:
        if self.driver not in _DRIVERS:
            raise ConfigError(
                f"driver must be one of {_DRIVERS}, got {self.driver!r}"
            )
        if self.requests < 1:
            raise ConfigError(f"requests must be >= 1, got {self.requests}")
        if self.shards < 0:
            raise ConfigError(f"shards must be >= 0, got {self.shards}")


def _build_workload(config: LoadTestConfig) -> list[WorkloadItem]:
    if config.ledger_path is not None:
        items = replay_workload(
            config.ledger_path,
            history_length=config.history_length,
            num_samples=config.num_samples,
            model=config.model,
            execution=config.execution,
            deadline_seconds=config.deadline_seconds,
        )
        if len(items) < config.requests:
            repeat = -(-config.requests // len(items))  # ceil division
            items = replay_workload(
                config.ledger_path,
                repeat=repeat,
                history_length=config.history_length,
                num_samples=config.num_samples,
                model=config.model,
                execution=config.execution,
                deadline_seconds=config.deadline_seconds,
            )
        return items[: config.requests]
    return synthesize_workload(
        config.requests,
        distinct=config.distinct,
        seed=config.seed,
        history_length=config.history_length,
        horizon=config.horizon,
        num_samples=config.num_samples,
        model=config.model,
        execution=config.execution,
        tenants=config.tenants,
        deadline_seconds=config.deadline_seconds,
    )


def run_loadtest(
    config: LoadTestConfig,
    *,
    workload: list[WorkloadItem] | None = None,
) -> LoadTestReport:
    """Run one load test end to end; blocking, deterministic workload.

    Pass ``workload`` to drive a pre-built arrival list (tests do);
    otherwise the workload comes from ``config`` (ledger replay when
    ``config.ledger_path`` is set, synthesis otherwise).
    """
    items = workload if workload is not None else _build_workload(config)
    if config.shards > 0:
        from repro.sharding import ShardedEngine

        engine = ShardedEngine(
            num_shards=config.shards,
            result_cache_entries=128 if config.use_result_cache else 0,
            ledger=config.ledger_out,
        )
    else:
        engine = ForecastEngine(
            cache=None
            if config.use_result_cache
            else ForecastCache(max_entries=0),
            ledger=config.ledger_out,
        )
    quota = (
        TenantQuota(rate=config.quota_rate, burst=config.quota_burst)
        if config.quota_rate is not None
        else None
    )

    async def _run() -> list:
        async with ForecastGateway(
            engine,
            max_pending=config.max_pending,
            default_quota=quota,
            coalesce=config.coalesce,
        ) as gateway:
            if config.driver == "open":
                return await run_open_loop(gateway, items, rate=config.rate)
            return await run_closed_loop(
                gateway, items, concurrency=config.concurrency
            )

    started = time.perf_counter()
    try:
        samples = asyncio.run(_run())
    finally:
        engine.close()
    wall = time.perf_counter() - started
    return build_report(samples, wall)

"""Ledger-replay load testing for the serving gateway.

The package turns "does the gateway hold up under load?" into a
repeatable measurement:

* :mod:`repro.loadtest.workload` — arrival lists, synthesized
  (:func:`synthesize_workload`) or rebuilt from run-ledger JSONL
  (:func:`replay_workload`);
* :mod:`repro.loadtest.drivers` — open-loop (fixed offered rate, no
  coordinated omission) and closed-loop (fixed concurrency) drivers;
* :mod:`repro.loadtest.report` — :class:`LoadTestReport` with deadline
  hit-rate, p50/p95/p99 latency, shed/coalesce/cache-hit rates, and SLO
  gating via :class:`SLOThresholds`;
* :mod:`repro.loadtest.harness` — :func:`run_loadtest`, the blocking
  entry point shared by ``repro-cli loadtest`` and
  ``benchmarks/bench_loadtest.py``.
"""

from repro.loadtest.drivers import (
    RequestSample,
    run_closed_loop,
    run_open_loop,
)
from repro.loadtest.harness import LoadTestConfig, run_loadtest
from repro.loadtest.report import LoadTestReport, SLOThresholds, build_report
from repro.loadtest.workload import (
    WorkloadItem,
    replay_workload,
    synthesize_workload,
)

__all__ = [
    "LoadTestConfig",
    "LoadTestReport",
    "RequestSample",
    "SLOThresholds",
    "WorkloadItem",
    "build_report",
    "replay_workload",
    "run_closed_loop",
    "run_loadtest",
    "run_open_loop",
    "synthesize_workload",
]

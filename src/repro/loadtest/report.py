"""Aggregating load-test samples into an SLO-checkable report.

:class:`LoadTestReport` condenses a list of per-arrival
:class:`~repro.loadtest.drivers.RequestSample` into the numbers an
operator actually pages on: deadline hit-rate, latency percentiles
(p50/p95/p99), shed rate, quota-rejection rate, coalesce rate, cache-hit
rate, and sustained throughput.  :class:`SLOThresholds` +
:meth:`LoadTestReport.violations` turn the report into a pass/fail gate
(CI runs the smoke load test and asserts zero violations at trivial
load).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.loadtest.drivers import RequestSample

__all__ = ["LoadTestReport", "SLOThresholds", "build_report"]


@dataclass(frozen=True)
class SLOThresholds:
    """The pass/fail line for a load test (None disables a check).

    ``min_deadline_hit_rate`` / ``max_shed_rate`` / ``max_failed_rate``
    are fractions of all arrivals; ``max_p99_seconds`` applies to served
    (non-rejected) request latency.
    """

    min_deadline_hit_rate: float | None = None
    max_p99_seconds: float | None = None
    max_shed_rate: float | None = None
    max_failed_rate: float | None = None


@dataclass(frozen=True)
class LoadTestReport:
    """Everything a load-test run measured, JSON-serializable.

    Rates are fractions of ``total`` arrivals.  Latency percentiles are
    over *served* requests only (rejections resolve in microseconds and
    would drag percentiles into meaninglessness); ``throughput_rps`` is
    served requests divided by wall time.
    """

    total: int
    ok: int
    partial: int
    failed: int
    shed: int
    quota_rejected: int
    coalesced: int
    cache_hits: int
    deadline_hit_rate: float
    shed_rate: float
    quota_rate: float
    coalesce_rate: float
    cache_hit_rate: float
    failed_rate: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    latency_mean: float
    wall_seconds: float
    throughput_rps: float
    per_tenant: dict = field(default_factory=dict)

    def violations(self, slo: SLOThresholds) -> list[str]:
        """Human-readable SLO breaches (empty list = the test passes)."""
        found = []
        if (
            slo.min_deadline_hit_rate is not None
            and self.deadline_hit_rate < slo.min_deadline_hit_rate
        ):
            found.append(
                f"deadline hit-rate {self.deadline_hit_rate:.4f} < "
                f"required {slo.min_deadline_hit_rate:.4f}"
            )
        if (
            slo.max_p99_seconds is not None
            and self.latency_p99 > slo.max_p99_seconds
        ):
            found.append(
                f"p99 latency {self.latency_p99:.4f}s > "
                f"allowed {slo.max_p99_seconds:.4f}s"
            )
        if slo.max_shed_rate is not None and self.shed_rate > slo.max_shed_rate:
            found.append(
                f"shed rate {self.shed_rate:.4f} > "
                f"allowed {slo.max_shed_rate:.4f}"
            )
        if (
            slo.max_failed_rate is not None
            and self.failed_rate > slo.max_failed_rate
        ):
            found.append(
                f"failed rate {self.failed_rate:.4f} > "
                f"allowed {slo.max_failed_rate:.4f}"
            )
        return found

    def to_dict(self) -> dict:
        """A plain-JSON view (what ``BENCH_loadtest.json`` embeds)."""
        return {
            "total": self.total,
            "ok": self.ok,
            "partial": self.partial,
            "failed": self.failed,
            "shed": self.shed,
            "quota_rejected": self.quota_rejected,
            "coalesced": self.coalesced,
            "cache_hits": self.cache_hits,
            "deadline_hit_rate": round(self.deadline_hit_rate, 6),
            "shed_rate": round(self.shed_rate, 6),
            "quota_rate": round(self.quota_rate, 6),
            "coalesce_rate": round(self.coalesce_rate, 6),
            "cache_hit_rate": round(self.cache_hit_rate, 6),
            "failed_rate": round(self.failed_rate, 6),
            "latency_p50": round(self.latency_p50, 6),
            "latency_p95": round(self.latency_p95, 6),
            "latency_p99": round(self.latency_p99, 6),
            "latency_mean": round(self.latency_mean, 6),
            "wall_seconds": round(self.wall_seconds, 3),
            "throughput_rps": round(self.throughput_rps, 2),
            "per_tenant": self.per_tenant,
        }

    def summary(self) -> str:
        """A compact multi-line console summary."""
        return (
            f"requests={self.total} ok={self.ok} partial={self.partial} "
            f"failed={self.failed} shed={self.shed} "
            f"quota={self.quota_rejected}\n"
            f"deadline hit-rate={self.deadline_hit_rate:.4f} "
            f"shed rate={self.shed_rate:.4f} "
            f"coalesce rate={self.coalesce_rate:.4f} "
            f"cache-hit rate={self.cache_hit_rate:.4f}\n"
            f"latency p50={self.latency_p50 * 1e3:.2f}ms "
            f"p95={self.latency_p95 * 1e3:.2f}ms "
            f"p99={self.latency_p99 * 1e3:.2f}ms "
            f"throughput={self.throughput_rps:.1f} req/s "
            f"wall={self.wall_seconds:.2f}s"
        )


def build_report(
    samples: list[RequestSample], wall_seconds: float
) -> LoadTestReport:
    """Fold per-arrival samples into one :class:`LoadTestReport`."""
    total = len(samples)
    if total == 0:
        raise ValueError("cannot build a report from zero samples")
    by_outcome = {"ok": 0, "partial": 0, "failed": 0, "shed": 0, "quota": 0}
    for sample in samples:
        by_outcome[sample.outcome] = by_outcome.get(sample.outcome, 0) + 1
    served = [s for s in samples if s.outcome in ("ok", "partial", "failed")]
    latencies = np.array([s.latency_seconds for s in served], dtype=float)
    if latencies.size:
        p50, p95, p99 = np.percentile(latencies, [50, 95, 99])
        mean = float(latencies.mean())
    else:
        p50 = p95 = p99 = mean = 0.0

    per_tenant: dict[str, dict] = {}
    for sample in samples:
        bucket = per_tenant.setdefault(
            sample.tenant, {"total": 0, "ok": 0, "shed": 0, "quota": 0}
        )
        bucket["total"] += 1
        if sample.outcome in ("ok", "partial"):
            bucket["ok"] += 1
        elif sample.outcome == "shed":
            bucket["shed"] += 1
        elif sample.outcome == "quota":
            bucket["quota"] += 1

    return LoadTestReport(
        total=total,
        ok=by_outcome["ok"],
        partial=by_outcome["partial"],
        failed=by_outcome["failed"],
        shed=by_outcome["shed"],
        quota_rejected=by_outcome["quota"],
        coalesced=sum(1 for s in samples if s.coalesced),
        cache_hits=sum(1 for s in samples if s.cache_hit),
        deadline_hit_rate=sum(1 for s in samples if s.deadline_hit) / total,
        shed_rate=by_outcome["shed"] / total,
        quota_rate=by_outcome["quota"] / total,
        coalesce_rate=sum(1 for s in samples if s.coalesced) / total,
        cache_hit_rate=sum(1 for s in samples if s.cache_hit) / total,
        failed_rate=by_outcome["failed"] / total,
        latency_p50=float(p50),
        latency_p95=float(p95),
        latency_p99=float(p99),
        latency_mean=mean,
        wall_seconds=wall_seconds,
        throughput_rps=(len(served) / wall_seconds) if wall_seconds > 0 else 0.0,
        per_tenant=per_tenant,
    )

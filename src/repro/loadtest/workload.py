"""Workloads: what a load test replays.

A workload is a list of :class:`WorkloadItem` — one per arrival, in
arrival order.  Two sources:

* :func:`synthesize_workload` — a fully synthetic stream with a
  configurable number of *distinct* request shapes drawn repeatedly
  (repetition is what exercises the gateway's single-flight coalescing
  and the engine's result cache);
* :func:`replay_workload` — rebuilt from a
  :class:`~repro.observability.ledger.RunLedger` JSONL file.  The ledger
  records a request's *identity* (config hash, seed, model, scheme,
  horizon, tenant) but not its raw series, so histories are synthesized
  deterministically from the recorded ``config_hash`` — two records that
  collided in the original run collide in the replay too, preserving the
  workload's duplicate structure (and therefore its coalesce/cache
  behaviour) without shipping the data.

Everything is deterministic under a fixed ``seed``: the same call
produces byte-identical histories and the same arrival order.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.config import MultiCastConfig
from repro.core.spec import ForecastSpec
from repro.exceptions import ConfigError

__all__ = ["WorkloadItem", "replay_workload", "synthesize_workload"]


@dataclass(frozen=True)
class WorkloadItem:
    """One arrival in a load-test workload.

    ``spec`` is the executable request; ``tenant`` routes quota
    accounting; ``deadline_seconds`` (optional) becomes the request's
    serving deadline; ``name`` labels the request in the ledger.
    """

    spec: ForecastSpec
    tenant: str = "default"
    deadline_seconds: float | None = None
    name: str = ""


def _history(rng: np.random.Generator, length: int) -> np.ndarray:
    """A plausible univariate series: trend + seasonality + noise."""
    t = np.arange(length, dtype=float)
    trend = rng.uniform(-0.02, 0.02) * t
    season = rng.uniform(0.5, 2.0) * np.sin(
        2 * np.pi * t / rng.integers(6, 24) + rng.uniform(0, 2 * np.pi)
    )
    noise = rng.normal(0.0, 0.1, size=length)
    return 10.0 + trend + season + noise


def synthesize_workload(
    num_requests: int,
    *,
    distinct: int = 50,
    seed: int = 0,
    history_length: int = 64,
    horizon: int = 3,
    num_samples: int = 2,
    model: str = "uniform-sim",
    scheme: str = "vi",
    execution: str = "batched",
    tenants: tuple[str, ...] = ("alpha", "beta", "gamma"),
    deadline_seconds: float | None = None,
) -> list[WorkloadItem]:
    """A deterministic synthetic workload of ``num_requests`` arrivals.

    ``distinct`` request shapes (series + config + seed) are generated
    once, then each arrival draws one uniformly — so a 10⁴-request
    workload over 50 shapes revisits each shape ~200 times, giving the
    coalescer and result cache realistic duplicate pressure.  Tenants
    round-robin over ``tenants``.
    """
    if num_requests < 1:
        raise ConfigError(f"num_requests must be >= 1, got {num_requests}")
    if distinct < 1:
        raise ConfigError(f"distinct must be >= 1, got {distinct}")
    rng = np.random.default_rng(seed)
    shapes = []
    for index in range(distinct):
        config = MultiCastConfig(
            scheme=scheme,
            num_samples=num_samples,
            model=model,
            seed=int(rng.integers(0, 2**31 - 1)),
        )
        shapes.append(
            ForecastSpec.from_config(
                config,
                series=_history(rng, history_length),
                horizon=horizon,
                execution=execution,
            )
        )
    picks = rng.integers(0, distinct, size=num_requests)
    return [
        WorkloadItem(
            spec=shapes[int(pick)],
            tenant=tenants[arrival % len(tenants)],
            deadline_seconds=deadline_seconds,
            name=f"synthetic-{arrival:05d}",
        )
        for arrival, pick in enumerate(picks)
    ]


def replay_workload(
    ledger_path: str | Path,
    *,
    limit: int | None = None,
    repeat: int = 1,
    history_length: int = 64,
    num_samples: int = 2,
    model: str | None = None,
    execution: str = "batched",
    deadline_seconds: float | None = None,
) -> list[WorkloadItem]:
    """Rebuild a workload from a run-ledger JSONL file.

    Each ledger record becomes one arrival (``repeat`` cycles the whole
    file to scale small ledgers up to load-test size).  The recorded
    ``config_hash`` seeds the synthetic history, so records that shared
    a hash in the original run produce identical specs here — the
    duplicate (coalesce/cache) structure of the original traffic
    survives the replay.  ``model`` overrides the recorded model (e.g.
    to replay a llama2-7b-sim ledger against the cheap uniform-sim);
    ``num_samples`` caps ensemble size because the ledger does not
    record it.  Gateway rejection records (``admission`` of ``shed`` or
    ``quota``) are skipped — they carry no engine work to replay.
    """
    path = Path(ledger_path)
    if not path.exists():
        raise ConfigError(f"ledger not found: {path}")
    if repeat < 1:
        raise ConfigError(f"repeat must be >= 1, got {repeat}")
    records = []
    with path.open("r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("admission") in ("shed", "quota"):
                continue
            records.append(record)
            if limit is not None and len(records) >= limit:
                break
    if not records:
        raise ConfigError(f"ledger {path} has no replayable records")

    items = []
    for cycle in range(repeat):
        for index, record in enumerate(records):
            digest = str(record.get("config_hash", f"record-{index}"))
            try:
                history_seed = int(digest[:16], 16)
            except ValueError:
                history_seed = index
            rng = np.random.default_rng(history_seed % (2**63))
            config = MultiCastConfig(
                scheme=record.get("scheme", "vi"),
                num_samples=num_samples,
                model=model or record.get("model", "uniform-sim"),
                seed=int(record.get("seed", 0)),
            )
            spec = ForecastSpec.from_config(
                config,
                series=_history(rng, history_length),
                horizon=int(record.get("horizon", 3)),
                execution=execution,
            )
            items.append(
                WorkloadItem(
                    spec=spec,
                    tenant=str(record.get("tenant") or "default"),
                    deadline_seconds=deadline_seconds,
                    name=record.get("name") or f"replay-{cycle}-{index:05d}",
                )
            )
    return items

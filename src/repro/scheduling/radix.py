"""Radix-tree prefill cache: prefix-shared ingest state across requests.

The flat :class:`~repro.llm.state_cache.IngestStateCache` keys whole
prompts; two requests whose prompts merely *share a prefix* each pay their
own ingest.  :class:`RadixPrefillTree` stores prompts in a
path-compressed prefix tree (SGLang-style radix cache) with a frozen
in-context model snapshot attached to tree nodes, so

* an exact repeat forks the deepest snapshot and skips ingest entirely;
* a prompt extending any cached prefix — including a prefix contributed
  by an *unrelated* request — forks the deepest covering snapshot and
  advances only its own suffix;
* a prompt *shorter* than anything cached still resolves to the longest
  checkpoint at or below its length, because :meth:`RadixPrefillTree.prefill`
  deposits snapshots at doubling boundaries while it ingests (in-context
  states cannot be rewound, so prefix coverage has to be built on the way
  up).

Eviction is LRU by **resident tokens** (the sum of all edge segment
lengths), and every node carries a thread-safe refcount: the continuous
scheduler pins the node a resident decode forked from, and pinned nodes
(plus their ancestors) are never evicted mid-flight.

Snapshots obey the same freezing contract as the flat cache: the tree owns
every deposited model, lookups hand back either the shared instance (exact
hit — fork before mutating) or a private fork (extend), and depositors
must not advance a model after inserting it.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.exceptions import ConfigError
from repro.llm.interface import LanguageModel
from repro.llm.state_cache import checkpoint_lengths

__all__ = ["PrefillResult", "RadixLookup", "RadixPrefillTree"]


class _Node:
    """One radix-tree node: an edge segment plus an optional snapshot.

    ``segment`` is the token run on the edge from the parent; ``depth`` is
    the total number of prompt tokens covered from the root through this
    node.  ``model`` (when set) is a frozen in-context state conditioned
    on exactly those ``depth`` tokens.  ``refs`` counts live pins.
    """

    __slots__ = ("segment", "children", "model", "depth", "refs", "tick", "parent")

    def __init__(
        self, segment: tuple[int, ...], depth: int, parent: "_Node | None"
    ) -> None:
        self.segment = segment
        self.children: dict[int, _Node] = {}
        self.model: LanguageModel | None = None
        self.depth = depth
        self.refs = 0
        self.tick = 0
        self.parent = parent


@dataclass
class RadixLookup:
    """Outcome of one tree lookup (mirrors ``IngestLookup``).

    ``model`` is the shared cached instance for ``outcome == "fork"``
    (fork before mutating), a private fork for ``"extend"``, and ``None``
    for ``"miss"``.  ``matched`` counts the leading prompt tokens the
    returned state covers.
    """

    model: LanguageModel | None
    matched: int
    outcome: str
    _node: "_Node | None" = field(default=None, repr=False)


@dataclass
class PrefillResult:
    """A prompt fully resolved through the tree, ready to decode from.

    ``model`` is frozen (tree-owned or shared); fork before decoding.
    ``ingested`` counts the suffix tokens actually ingested by this call
    (0 on an exact hit).  While ``pinned``, the covering node will not be
    evicted; hand the result back via :meth:`RadixPrefillTree.release`.
    """

    model: LanguageModel
    context: tuple[int, ...]
    matched: int
    ingested: int
    outcome: str
    _node: "_Node | None" = field(default=None, repr=False)


def _common_prefix(a: tuple[int, ...], b: tuple[int, ...]) -> int:
    """Length of the longest common prefix of two token runs."""
    limit = min(len(a), len(b))
    i = 0
    while i < limit and a[i] == b[i]:
        i += 1
    return i


class RadixPrefillTree:
    """Thread-safe radix tree of prefilled models, bounded by resident tokens.

    Parameters
    ----------
    max_tokens:
        Eviction budget: total tokens across all edge segments.  ``0``
        builds a disabled tree (every lookup misses, deposits are
        dropped), so callers can switch prefix caching off without
        branching.
    """

    def __init__(self, max_tokens: int = 262_144) -> None:
        if max_tokens < 0:
            raise ConfigError(f"max_tokens must be >= 0, got {max_tokens}")
        self.max_tokens = max_tokens
        self._lock = threading.Lock()
        self._roots: dict[tuple[str, int], _Node] = {}
        self._inflight: dict[tuple, threading.Event] = {}
        self._total_tokens = 0
        self._tick = 0
        self._hits = 0
        self._extends = 0
        self._misses = 0
        self._evictions = 0
        self._tokens_saved = 0

    @property
    def enabled(self) -> bool:
        """False for a zero-budget tree (lookups and deposits are no-ops)."""
        return self.max_tokens > 0

    # -- internal helpers (callers hold the lock) ------------------------------

    def _root(self, model_name: str, vocab_size: int) -> _Node:
        key = (model_name, int(vocab_size))
        root = self._roots.get(key)
        if root is None:
            root = _Node(segment=(), depth=0, parent=None)
            self._roots[key] = root
        return root

    def _touch(self, node: _Node) -> None:
        self._tick += 1
        node.tick = self._tick

    def _walk(self, root: _Node, tokens: tuple[int, ...]) -> tuple[_Node, int]:
        """Deepest node whose full path is a prefix of ``tokens``.

        Returns ``(node, matched)`` where ``matched == node.depth`` is the
        number of ``tokens`` covered; divergence or a query ending mid-edge
        stops the walk at the last fully matched node.
        """
        node = root
        i = 0
        while i < len(tokens):
            child = node.children.get(tokens[i])
            if child is None:
                break
            common = _common_prefix(child.segment, tokens[i:])
            if common < len(child.segment):
                break
            node = child
            i += common
            self._touch(node)
        return node, i

    def _best_snapshot(self, node: _Node) -> _Node | None:
        """The nearest ancestor-or-self of ``node`` holding a snapshot."""
        while node is not None:
            if node.model is not None:
                return node
            node = node.parent
        return None

    def _insert(
        self, root: _Node, tokens: tuple[int, ...], model: LanguageModel
    ) -> _Node:
        """Attach ``model`` as the snapshot covering exactly ``tokens``.

        Splits edges where the new path diverges from (or stops inside)
        an existing segment.  If the node already carries a snapshot the
        existing one is kept — deposits race benignly because equal paths
        imply bit-identical states.
        """
        node = root
        i = 0
        while i < len(tokens):
            child = node.children.get(tokens[i])
            if child is None:
                leaf = _Node(
                    segment=tokens[i:], depth=node.depth + len(tokens) - i,
                    parent=node,
                )
                node.children[tokens[i]] = leaf
                self._total_tokens += len(leaf.segment)
                node = leaf
                i = len(tokens)
                break
            common = _common_prefix(child.segment, tokens[i:])
            if common < len(child.segment):
                # Split the edge: a new interior node takes the shared run,
                # the existing child keeps its identity (and pins) below.
                mid = _Node(
                    segment=child.segment[:common],
                    depth=child.depth - (len(child.segment) - common),
                    parent=node,
                )
                node.children[child.segment[0]] = mid
                child.segment = child.segment[common:]
                child.parent = mid
                mid.children[child.segment[0]] = child
                node = mid
                i += common
            else:
                node = child
                i += common
        if node.model is None:
            node.model = model
        self._touch(node)
        self._evict()
        return node

    def _evict(self) -> None:
        """Drop least-recently-used unpinned leaves until within budget.

        A pinned node protects itself only; interior nodes become leaves
        (and thus evictable) as their subtrees are pruned.
        """
        while self._total_tokens > self.max_tokens:
            victim: _Node | None = None
            for root in self._roots.values():
                stack = list(root.children.values())
                while stack:
                    node = stack.pop()
                    if node.children:
                        stack.extend(node.children.values())
                    elif node.refs == 0 and (
                        victim is None or node.tick < victim.tick
                    ):
                        victim = node
            if victim is None:
                return
            victim.parent.children.pop(victim.segment[0])
            self._total_tokens -= len(victim.segment)
            self._evictions += 1

    # -- public API ------------------------------------------------------------

    def lookup(
        self,
        model_name: str,
        vocab_size: int,
        tokens: Sequence[int],
        pin: bool = False,
    ) -> RadixLookup:
        """Resolve a prompt to the deepest cached snapshot covering a prefix.

        Outcomes mirror the flat cache: ``"fork"`` (a snapshot covers the
        whole prompt; the shared instance is returned), ``"extend"`` (a
        strict prefix is covered; a private fork is returned) or
        ``"miss"``.  ``pin=True`` increments the covering node's refcount
        so eviction skips it until :meth:`release` is called.
        """
        prompt = tuple(int(t) for t in tokens)
        with self._lock:
            if not self.enabled:
                self._misses += 1
                return RadixLookup(model=None, matched=0, outcome="miss")
            node, _ = self._walk(self._root(model_name, vocab_size), prompt)
            best = self._best_snapshot(node)
            if best is None or best.depth == 0:
                self._misses += 1
                return RadixLookup(model=None, matched=0, outcome="miss")
            self._touch(best)
            if pin:
                best.refs += 1
            if best.depth == len(prompt):
                self._hits += 1
                self._tokens_saved += best.depth
                return RadixLookup(
                    model=best.model, matched=best.depth, outcome="fork",
                    _node=best if pin else None,
                )
            self._extends += 1
            self._tokens_saved += best.depth
            parent = best.model
        # Fork outside the lock: snapshots are frozen, so concurrent forks
        # are pure reads and fork cost must not serialise readers.
        return RadixLookup(
            model=parent.fork(), matched=best.depth, outcome="extend",
            _node=best if pin else None,
        )

    def insert(
        self,
        model_name: str,
        vocab_size: int,
        tokens: Sequence[int],
        model: LanguageModel,
    ) -> None:
        """Deposit a frozen model conditioned on exactly ``tokens``.

        Takes ownership: the caller must not advance ``model`` afterwards.
        Prompts longer than the whole budget are not cached at all.
        """
        prompt = tuple(int(t) for t in tokens)
        if not self.enabled or len(prompt) > self.max_tokens:
            return
        with self._lock:
            self._insert(self._root(model_name, vocab_size), prompt, model)

    def prefill(
        self,
        model_name: str,
        vocab_size: int,
        tokens: Sequence[int],
        factory: Callable[[], LanguageModel],
        pin: bool = False,
    ) -> PrefillResult:
        """Resolve a prompt end to end: lookup, ingest the gap, deposit.

        The one-call ingest driver the continuous scheduler uses.  An
        exact hit returns the shared snapshot with nothing ingested; an
        extend forks the deepest covering snapshot and advances only the
        suffix; a miss builds a fresh model via ``factory``.  On the way,
        snapshots are deposited at doubling
        :func:`~repro.llm.state_cache.checkpoint_lengths` boundaries past
        the matched prefix, plus the full prompt — which is what lets
        later *shorter* or *diverging* prompts find a usable prefix.

        Identical prompts in flight at once are **single-flighted**: the
        first caller ingests while the rest wait on its completion, then
        fork the deposited snapshot — N concurrent tenants over one prompt
        pay one ingest, not N racing ones.

        The returned model is frozen (fork before decoding).  With
        ``pin=True`` the covering node is refcounted until
        :meth:`release`.
        """
        prompt = tuple(int(t) for t in tokens)
        key = (model_name, int(vocab_size), prompt)
        leader = False
        while True:
            lookup = self.lookup(model_name, vocab_size, prompt, pin=pin)
            if lookup.outcome == "fork":
                return PrefillResult(
                    model=lookup.model, context=prompt, matched=lookup.matched,
                    ingested=0, outcome="fork", _node=lookup._node,
                )
            if not self.enabled:
                break
            with self._lock:
                pending = self._inflight.get(key)
                if pending is None:
                    self._inflight[key] = threading.Event()
                    leader = True
            if leader:
                break
            # Another thread is ingesting this exact prompt: drop any pin
            # from the stale lookup, wait, then re-resolve (normally a fork).
            if pin:
                self.release(lookup)
            pending.wait()
        try:
            if lookup.outcome == "extend":
                model = lookup.model  # already a private fork
                cursor = lookup.matched
            else:
                model = factory()
                cursor = 0
            boundaries = [
                b for b in checkpoint_lengths(len(prompt)) if b > cursor
            ] + [len(prompt)]
            for boundary in boundaries:
                if cursor == 0:
                    model.reset(prompt[:boundary])
                else:
                    for token in prompt[cursor:boundary]:
                        model.advance(token)
                cursor = boundary
                deposit = model if boundary == len(prompt) else model.fork()
                self.insert(model_name, vocab_size, prompt[:boundary], deposit)
            node = lookup._node
            if pin and node is None:
                # Miss path: pin the full-prompt node we just deposited.
                with self._lock:
                    if self.enabled:
                        walked, matched = self._walk(
                            self._root(model_name, vocab_size), prompt
                        )
                        if matched == len(prompt) and walked.depth == len(prompt):
                            walked.refs += 1
                            node = walked
            return PrefillResult(
                model=model, context=prompt, matched=lookup.matched,
                ingested=len(prompt) - lookup.matched, outcome=lookup.outcome,
                _node=node,
            )
        finally:
            if leader:
                with self._lock:
                    pending = self._inflight.pop(key, None)
                if pending is not None:
                    pending.set()

    def release(self, handle: PrefillResult | RadixLookup) -> None:
        """Drop the pin taken by ``lookup(pin=True)`` / ``prefill(pin=True)``."""
        node = handle._node
        if node is None:
            return
        with self._lock:
            if node.refs > 0:
                node.refs -= 1
            handle._node = None

    def clear(self) -> None:
        """Drop every snapshot and node (statistics are kept)."""
        with self._lock:
            self._roots.clear()
            self._total_tokens = 0

    def __len__(self) -> int:
        """Number of snapshot-bearing nodes across all namespaces."""
        with self._lock:
            count = 0
            for root in self._roots.values():
                stack = [root]
                while stack:
                    node = stack.pop()
                    if node.model is not None:
                        count += 1
                    stack.extend(node.children.values())
            return count

    @property
    def stats(self) -> dict:
        """Lookup/eviction accounting plus the prefill tokens saved."""
        with self._lock:
            nodes = 0
            snapshots = 0
            for root in self._roots.values():
                stack = [root]
                while stack:
                    node = stack.pop()
                    nodes += 1
                    if node.model is not None:
                        snapshots += 1
                    stack.extend(node.children.values())
            lookups = self._hits + self._extends + self._misses
            return {
                "nodes": nodes,
                "snapshots": snapshots,
                "resident_tokens": self._total_tokens,
                "max_tokens": self.max_tokens,
                "hits": self._hits,
                "extends": self._extends,
                "misses": self._misses,
                "evictions": self._evictions,
                "tokens_saved": self._tokens_saved,
                "hit_rate": (
                    (self._hits + self._extends) / lookups if lookups else 0.0
                ),
            }

    def __repr__(self) -> str:
        stats = self.stats
        return (
            f"RadixPrefillTree(snapshots={stats['snapshots']}, "
            f"tokens={stats['resident_tokens']}/{self.max_tokens}, "
            f"hits={stats['hits']}, extends={stats['extends']}, "
            f"misses={stats['misses']})"
        )

"""Cross-request continuous batching over the simulated substrates.

:mod:`repro.llm.batch` batches the S sample streams *within* one forecast;
this package batches *across* forecasts, the way production LLM servers do
(iteration-level scheduling as in Orca/vLLM, radix-tree prefix caching as
in SGLang):

* :class:`RadixPrefillTree` — a prefix tree over prompt token sequences
  with a frozen in-context model snapshot per node, so unrelated requests
  whose prompts share a prefix dedupe their ingest work.  It generalises
  :class:`~repro.llm.state_cache.IngestStateCache`'s exact-hit /
  longest-prefix logic: snapshots are deposited at branch points and at
  doubling checkpoint boundaries, entries are LRU-evicted by resident
  tokens, and node refcounts pin state that resident decodes still use.
* :class:`ContinuousScheduler` — one shared decode loop that many
  concurrent requests join and retire from mid-flight.  Each iteration
  scores every resident group with
  :meth:`~repro.llm.interface.LanguageModel.next_distribution_batch`,
  each stream samples from its own seed-derived generator, and new
  requests are admitted between iterations — they never wait for a
  resident batch to drain.  Results are **bit-identical** to running each
  request alone with ``execution="batched"`` (pinned by the
  ``sched_equivalence`` fuzz family and ``tests/test_scheduling.py``).

The serving engine drives this subsystem for ``execution="continuous"``
requests; see ``docs/ARCHITECTURE.md`` ("Continuous scheduling").
"""

from repro.scheduling.radix import PrefillResult, RadixLookup, RadixPrefillTree
from repro.scheduling.scheduler import ContinuousScheduler, ScheduledDecode

__all__ = [
    "ContinuousScheduler",
    "PrefillResult",
    "RadixLookup",
    "RadixPrefillTree",
    "ScheduledDecode",
]

"""One shared decode loop for many concurrent forecast requests.

:class:`~repro.llm.batch.BatchedDecoder` advances the S sample streams of
*one* request in lockstep; :class:`ContinuousScheduler` generalises that
loop across requests, the way iteration-level schedulers (Orca, vLLM) run
a serving fleet: every resident request contributes its live groups to one
global step, new requests are admitted *between* iterations — they never
wait for a resident batch to drain — and requests retire stream by stream
the moment their budgets are met.

Bit-identity with per-request ``execution="batched"`` falls out of three
substrate facts:

* each stream samples from its **own** seed-derived generator, and the
  scheduler consumes each stream's RNG in exactly the per-step order the
  single-request decoder would (retire → stop poll → score → sample);
* model state is a pure function of (prompt + generated tokens), so
  scoring a request's groups alongside a stranger's groups cannot change
  any row — :meth:`~repro.llm.interface.LanguageModel.
  next_distribution_batch` guarantees row *i* is bit-identical to
  ``models[i].next_distribution()``;
* the deterministic filtering half of sampling
  (:func:`~repro.llm.sampling.filter_distribution`) depends only on the
  row and the request's own sampling knobs.

The ``sched_equivalence`` fuzz family and ``tests/test_scheduling.py``
pin this equivalence across random interleavings.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Sequence

import numpy as np

from repro.exceptions import GenerationError
from repro.llm.constraints import Constraint
from repro.llm.interface import GenerationResult, LanguageModel
from repro.llm.sampling import filter_distribution, mask_for_ids
from repro.llm.simulated import SimulatedLLM
from repro.observability.spans import NULL_TRACER
from repro.scheduling.radix import RadixPrefillTree

__all__ = ["ContinuousScheduler", "ScheduledDecode"]


class _Stream:
    """One in-flight sample stream: its identity, RNG, and token budget."""

    __slots__ = ("index", "rng", "budget")

    def __init__(self, index: int, rng: np.random.Generator, budget: int) -> None:
        self.index = index
        self.rng = rng
        self.budget = budget


class _Group:
    """Streams of one request sharing a generated prefix (and one model)."""

    __slots__ = ("model", "streams", "tokens", "log_probs")

    def __init__(
        self,
        model: LanguageModel,
        streams: list[_Stream],
        tokens: list[int],
        log_probs: list[float],
    ) -> None:
        self.model = model
        self.streams = streams
        self.tokens = tokens
        self.log_probs = log_probs


class ScheduledDecode:
    """Caller-facing handle for one request resident in the scheduler.

    Returned by :meth:`ContinuousScheduler.submit`; the caller blocks on
    :meth:`result` (or polls :meth:`done`) while the shared loop decodes.
    After completion the handle carries the same telemetry a
    :class:`~repro.llm.batch.BatchedDecoder` would: ``results`` (stream
    order; ``None`` for streams abandoned by an early ``stop``),
    ``occupancy`` and ``group_counts`` (this request's live streams /
    distinct model states per step *it* was resident), ``steps`` and
    ``stopped`` — plus the scheduling outcomes ``queue_wait_seconds``,
    ``ingest`` and ``ingested_tokens``.
    """

    def __init__(self, batch_width: int, ingest: str, ingested_tokens: int) -> None:
        self.batch_width = batch_width
        self.results: list[GenerationResult | None] = [None] * batch_width
        self.occupancy: list[int] = []
        self.group_counts: list[int] = []
        self.steps = 0
        self.stopped = False
        self.queue_wait_seconds = 0.0
        self.ingest = ingest
        self.ingested_tokens = ingested_tokens
        self._event = threading.Event()
        self._error: BaseException | None = None

    def done(self) -> bool:
        """True once every stream has retired (or the request failed)."""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> list[GenerationResult | None]:
        """Block until the request retires; return per-stream results.

        Re-raises the scheduler loop's exception if this request failed;
        raises :class:`TimeoutError` if ``timeout`` elapses first.
        """
        if not self._event.wait(timeout):
            raise TimeoutError("scheduled decode did not finish in time")
        if self._error is not None:
            raise self._error
        return self.results


class _Job:
    """Scheduler-internal state for one resident request."""

    __slots__ = (
        "handle",
        "groups",
        "position",
        "constraint",
        "temperature",
        "top_k",
        "top_p",
        "stop",
        "vocab_size",
        "mask_cache",
        "pin",
        "enqueued_at",
    )

    def __init__(
        self,
        handle: ScheduledDecode,
        root: _Group,
        constraint: Constraint | None,
        temperature: float,
        top_k: int | None,
        top_p: float | None,
        stop: Callable[[], bool] | None,
        vocab_size: int,
        pin,
    ) -> None:
        self.handle = handle
        self.groups = [root]
        self.position = 0
        self.constraint = constraint
        self.temperature = temperature
        self.top_k = top_k
        self.top_p = top_p
        self.stop = stop
        self.vocab_size = vocab_size
        self.mask_cache: dict[frozenset, np.ndarray] = {}
        self.pin = pin
        self.enqueued_at = time.monotonic()

    def width(self) -> int:
        """Live streams this job currently holds in the shared batch."""
        return sum(len(group.streams) for group in self.groups)

    def mask_at(self, position: int) -> np.ndarray | None:
        """This step's admissibility mask (cached per pattern slot)."""
        if self.constraint is None:
            return None
        allowed = self.constraint.allowed_at(position)
        mask = self.mask_cache.get(allowed)
        if mask is None:
            mask = mask_for_ids(allowed, self.vocab_size)
            self.mask_cache[allowed] = mask
        return mask


class ContinuousScheduler:
    """Global iteration-level scheduler shared by concurrent requests.

    Parameters
    ----------
    max_resident_streams:
        Admission cap: total live streams across resident requests.  A
        request queues (FIFO) until it fits; to guarantee progress, the
        queue head is always admitted when nothing is resident, even if
        wider than the cap.
    prefill_tree:
        Optional :class:`~repro.scheduling.RadixPrefillTree` deduplicating
        prompt ingest across requests; nodes a resident request forked
        from stay pinned against eviction until it retires.
    metrics:
        Optional :class:`~repro.serving.metrics.MetricsRegistry` receiving
        ``sched_*`` counters, gauges, and histograms.
    tracer:
        Optional tracer; the loop emits one ``llm:sched_step`` span per
        shared iteration (resident request/stream/group counts).

    The loop thread starts lazily on the first :meth:`submit` and runs as
    a daemon; :meth:`close` drains pending and resident work, then joins.
    """

    def __init__(
        self,
        max_resident_streams: int = 64,
        prefill_tree: RadixPrefillTree | None = None,
        metrics=None,
        tracer=None,
    ) -> None:
        if max_resident_streams < 1:
            raise GenerationError(
                f"max_resident_streams must be >= 1, got {max_resident_streams}"
            )
        self.max_resident_streams = max_resident_streams
        self.prefill_tree = prefill_tree
        self._metrics = metrics
        self._tracer = NULL_TRACER if tracer is None else tracer
        self._cond = threading.Condition()
        self._pending: list[_Job] = []
        self._resident: list[_Job] = []
        self._thread: threading.Thread | None = None
        self._closed = False
        self._admitted = 0
        self._completed = 0
        self._steps = 0

    # ------------------------------------------------------------------
    # submission (caller threads)
    # ------------------------------------------------------------------

    def submit(
        self,
        llm: SimulatedLLM,
        context: Sequence[int],
        max_new_tokens: int | Sequence[int],
        rngs: Sequence[np.random.Generator],
        constraint: Constraint | None = None,
        temperature: float | None = None,
        tracer=None,
        stop: Callable[[], bool] | None = None,
    ) -> ScheduledDecode:
        """Join the shared loop with one request's stream ensemble.

        Mirrors :meth:`~repro.llm.simulated.SimulatedLLM.generate_batch`:
        prompt ingest happens here on the caller's thread (through the
        radix tree when one is attached, depositing checkpoints and
        emitting the same ``llm:ingest`` span shape), then the streams are
        enqueued and decoded by the loop thread.  Under the same RNGs the
        returned results are bit-identical to a standalone
        ``generate_batch`` call.  ``stop`` is polled between shared steps
        from the loop thread, so it must be thread-safe (deadlines are).
        """
        if len(rngs) == 0:
            raise GenerationError("a scheduled decode needs at least one stream")
        if isinstance(max_new_tokens, (int, np.integer)):
            budgets = [int(max_new_tokens)] * len(rngs)
        else:
            budgets = [int(b) for b in max_new_tokens]
        if len(budgets) != len(rngs):
            raise GenerationError(
                f"{len(rngs)} streams but {len(budgets)} token budgets"
            )
        if any(budget < 0 for budget in budgets):
            raise GenerationError("max_new_tokens must be >= 0 for every stream")
        tracer = self._tracer if tracer is None else tracer
        prompt = tuple(int(t) for t in context)
        pin = None
        if self.prefill_tree is not None and self.prefill_tree.enabled:
            with tracer.span(
                "llm:ingest", context_tokens=len(prompt), ingest="radix"
            ) as span:
                pin = self.prefill_tree.prefill(
                    llm.name,
                    llm.vocab_size,
                    prompt,
                    lambda: llm.spec.factory(llm.vocab_size),
                    pin=True,
                )
                if span.is_recording:
                    span.set_attribute("ingest", pin.outcome)
                    span.set_attribute("ingested_tokens", pin.ingested)
            llm._sleep(pin.ingested, 0)
            model, ingest, ingested = pin.model, pin.outcome, pin.ingested
        else:
            session = llm.prefill(prompt, tracer=tracer)
            model, ingest, ingested = (
                session.model,
                session.outcome,
                session.ingested_tokens,
            )
        handle = ScheduledDecode(
            batch_width=len(rngs), ingest=ingest, ingested_tokens=ingested
        )
        streams = [
            _Stream(i, rng, budget)
            for i, (rng, budget) in enumerate(zip(rngs, budgets))
        ]
        # Fork the frozen prefill state once, exactly like BatchedDecoder's
        # root group — the tree (or cache) keeps the shared original.
        root = _Group(model=model.fork(), streams=streams, tokens=[], log_probs=[])
        job = _Job(
            handle=handle,
            root=root,
            constraint=constraint,
            temperature=(
                llm.spec.temperature if temperature is None else temperature
            ),
            top_k=None,
            top_p=llm.spec.top_p,
            stop=stop,
            vocab_size=llm.vocab_size,
            pin=pin,
        )
        if self._metrics is not None:
            self._metrics.counter("sched_requests_total").inc()
        with self._cond:
            if self._closed:
                raise GenerationError("scheduler is closed")
            self._pending.append(job)
            if self._metrics is not None:
                self._metrics.gauge("sched_queue_depth").set(len(self._pending))
            self._ensure_thread()
            self._cond.notify_all()
        return handle

    def _ensure_thread(self) -> None:
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="continuous-scheduler", daemon=True
            )
            self._thread.start()

    # ------------------------------------------------------------------
    # the shared loop (scheduler thread)
    # ------------------------------------------------------------------

    def _admit_locked(self) -> None:
        """Admit queued jobs FIFO while they fit under the stream cap."""
        resident_streams = sum(job.width() for job in self._resident)
        while self._pending:
            job = self._pending[0]
            width = job.handle.batch_width
            if self._resident and resident_streams + width > self.max_resident_streams:
                break
            self._pending.pop(0)
            job.handle.queue_wait_seconds = time.monotonic() - job.enqueued_at
            self._resident.append(job)
            resident_streams += width
            self._admitted += 1
            if self._metrics is not None:
                self._metrics.histogram("sched_queue_wait_seconds").observe(
                    job.handle.queue_wait_seconds
                )
        if self._metrics is not None:
            self._metrics.gauge("sched_queue_depth").set(len(self._pending))
            self._metrics.gauge("sched_resident_requests").set(len(self._resident))
            self._metrics.gauge("sched_resident_streams").set(resident_streams)

    def _finalize_locked(self, job: _Job, error: BaseException | None = None) -> None:
        """Retire a job: record telemetry, release its pin, wake its caller."""
        handle = job.handle
        if handle._event.is_set():
            return
        handle.steps = len(handle.occupancy)
        handle._error = error
        if job in self._resident:
            self._resident.remove(job)
        if job.pin is not None and self.prefill_tree is not None:
            self.prefill_tree.release(job.pin)
            job.pin = None
        self._completed += 1
        if self._metrics is not None:
            self._metrics.counter("sched_requests_completed").inc()
            self._metrics.gauge("sched_resident_requests").set(len(self._resident))
            self._metrics.gauge("sched_resident_streams").set(
                sum(item.width() for item in self._resident)
            )
        handle._event.set()
        self._cond.notify_all()

    def _run(self) -> None:
        while True:
            with self._cond:
                self._admit_locked()
                while not self._resident:
                    if self._closed and not self._pending:
                        return
                    self._cond.wait()
                    self._admit_locked()
                jobs = list(self._resident)
            try:
                self._step(jobs)
            except BaseException as exc:  # fail resident jobs, keep serving
                with self._cond:
                    for job in jobs:
                        self._finalize_locked(job, error=exc)

    def _step(self, jobs: list[_Job]) -> None:
        """One shared iteration over every resident job.

        Per job the step performs *exactly* the single-request decoder's
        sequence — retire streams at budget, poll ``stop``, record
        occupancy, score, sample per stream with its own RNG, partition
        groups by sampled token (first partition advances the model in
        place, later partitions fork first) — so each job's RNG
        consumption and model trajectory are independent of who else is
        resident.
        """
        live_jobs: list[_Job] = []
        for job in jobs:
            handle = job.handle
            live_groups: list[_Group] = []
            for group in job.groups:
                keep: list[_Stream] = []
                for stream in group.streams:
                    if stream.budget <= job.position:
                        handle.results[stream.index] = GenerationResult(
                            tokens=list(group.tokens),
                            log_probs=list(group.log_probs),
                        )
                    else:
                        keep.append(stream)
                if keep:
                    group.streams = keep
                    live_groups.append(group)
            job.groups = live_groups
            if not job.groups:
                with self._cond:
                    self._finalize_locked(job)
                continue
            if job.stop is not None and job.stop():
                handle.stopped = True
                with self._cond:
                    self._finalize_locked(job)
                continue
            handle.occupancy.append(job.width())
            handle.group_counts.append(len(job.groups))
            live_jobs.append(job)
        if not live_jobs:
            return
        with self._tracer.span("llm:sched_step") as span:
            pairs = [(job, group) for job in live_jobs for group in job.groups]
            if span.is_recording:
                span.set_attribute("resident_requests", len(live_jobs))
                span.set_attribute(
                    "resident_streams",
                    sum(len(group.streams) for _, group in pairs),
                )
                span.set_attribute("groups", len(pairs))
            # Score every distinct model state once, partitioned by
            # concrete model class so homogeneous vectorised overrides of
            # next_distribution_batch stay on their fast path.
            rows: dict[int, np.ndarray] = {}
            by_type: dict[type, list[int]] = {}
            for index, (_, group) in enumerate(pairs):
                by_type.setdefault(type(group.model), []).append(index)
            for model_type, indices in by_type.items():
                matrix = model_type.next_distribution_batch(
                    [pairs[index][1].model for index in indices]
                )
                for row, index in enumerate(indices):
                    rows[index] = matrix[row]
            next_groups: dict[int, list[_Group]] = {id(job): [] for job in live_jobs}
            for index, (job, group) in enumerate(pairs):
                p, greedy = filter_distribution(
                    rows[index],
                    temperature=job.temperature,
                    top_k=job.top_k,
                    top_p=job.top_p,
                    allowed_mask=job.mask_at(job.position),
                )
                size = p.size
                buckets: dict[int, list[_Stream]] = {}
                drawn: dict[int, float] = {}
                for stream in group.streams:
                    if greedy:
                        token = int(np.argmax(p))
                    else:
                        token = int(stream.rng.choice(size, p=p))
                    members = buckets.get(token)
                    if members is None:
                        buckets[token] = [stream]
                        drawn[token] = float(p[token])
                    else:
                        members.append(stream)
                items = list(buckets.items())
                forks = [group.model] + [group.model.fork() for _ in items[1:]]
                for (token, members), model in zip(items, forks):
                    model.advance(token)
                    next_groups[id(job)].append(
                        _Group(
                            model=model,
                            streams=members,
                            tokens=group.tokens + [token],
                            log_probs=group.log_probs
                            + [float(np.log(max(drawn[token], 1e-300)))],
                        )
                    )
            for job in live_jobs:
                job.groups = next_groups[id(job)]
                job.position += 1
        self._steps += 1
        if self._metrics is not None:
            self._metrics.histogram("sched_step_occupancy").observe(
                sum(job.width() for job in live_jobs)
            )
            self._metrics.histogram("sched_step_groups").observe(
                sum(len(job.groups) for job in live_jobs)
            )

    # ------------------------------------------------------------------
    # lifecycle / introspection
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drain pending and resident requests, then stop the loop thread."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
            thread = self._thread
        if thread is not None:
            while True:
                with self._cond:
                    if not self._pending and not self._resident:
                        break
                    self._cond.wait(timeout=0.1)
            thread.join(timeout=10.0)

    @property
    def stats(self) -> dict:
        """Queue/residency/throughput accounting for snapshots and tests."""
        with self._cond:
            return {
                "resident_requests": len(self._resident),
                "resident_streams": sum(job.width() for job in self._resident),
                "queue_depth": len(self._pending),
                "admitted": self._admitted,
                "completed": self._completed,
                "steps": self._steps,
                "max_resident_streams": self.max_resident_streams,
            }

    def __repr__(self) -> str:
        stats = self.stats
        return (
            f"ContinuousScheduler(resident={stats['resident_requests']}, "
            f"queued={stats['queue_depth']}, steps={stats['steps']}, "
            f"max_resident_streams={self.max_resident_streams})"
        )

"""CSV persistence so users can bring their own data.

The format is deliberately plain: a header row with dimension names followed
by one comma-separated row per timestamp.  :func:`load_csv` is the path for
running MultiCast on the *real* Gas Rate / ETDataset / Jena files when they
are available.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import DataError

__all__ = ["save_csv", "load_csv"]


def save_csv(dataset: Dataset, path: str | Path) -> None:
    """Write a dataset as a headed CSV file."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(dataset.dim_names)
        for row in dataset.values:
            writer.writerow([f"{v:.10g}" for v in row])


def load_csv(path: str | Path, name: str | None = None) -> Dataset:
    """Read a headed CSV file into a :class:`Dataset`."""
    path = Path(path)
    if not path.exists():
        raise DataError(f"no such file: {path}")
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path} is empty") from None
        rows: list[list[float]] = []
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(header):
                raise DataError(
                    f"{path}:{line_number}: expected {len(header)} columns, "
                    f"got {len(row)}"
                )
            try:
                rows.append([float(cell) for cell in row])
            except ValueError as exc:
                raise DataError(f"{path}:{line_number}: {exc}") from None
    if not rows:
        raise DataError(f"{path} has a header but no data rows")
    return Dataset(
        name=name or path.stem,
        values=np.asarray(rows, dtype=float),
        dim_names=tuple(header),
        description=f"Loaded from {path}",
    )

"""Datasets: container type, synthetic generators, and CSV persistence.

The paper evaluates on three real multivariate series — Gas Rate (darts /
Box-Jenkins, 296×2), Electricity (ETDataset 3-day resample, 242×3) and
Weather (Max Planck Jena, 217×4).  Offline, we generate statistically
faithful stand-ins with matching shapes, scales and — crucially — the
inter-dimensional correlations the paper's argument rests on (see DESIGN.md
section 2 for the substitution rationale).
"""

from repro.data.dataset import Dataset
from repro.data.generators import (
    electricity,
    gas_rate,
    load_paper_datasets,
    synthetic_multivariate,
    weather,
)
from repro.data.io import load_csv, save_csv
from repro.data.preprocessing import difference_dataset, fill_missing, resample

__all__ = [
    "Dataset",
    "gas_rate",
    "electricity",
    "weather",
    "synthetic_multivariate",
    "load_paper_datasets",
    "load_csv",
    "resample",
    "fill_missing",
    "difference_dataset",
    "save_csv",
]

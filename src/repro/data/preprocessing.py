"""Dataset preprocessing: resampling, gap handling, differencing views.

The paper itself resamples the ETDataset "on a 3-day basis" before
forecasting (Section IV-A2); :func:`resample` provides exactly that
operation for user data.  :func:`fill_missing` bridges real exports with
NaN holes into the NaN-free :class:`~repro.data.Dataset` contract, either
with simple interpolation or with the zero-shot imputer.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import DataError

__all__ = ["resample", "fill_missing", "difference_dataset"]

_AGGREGATIONS = {
    "mean": np.mean,
    "median": np.median,
    "first": lambda block, axis: block[0] if axis == 0 else block[:, 0],
    "last": lambda block, axis: block[-1] if axis == 0 else block[:, -1],
    "max": np.max,
    "min": np.min,
}


def resample(dataset: Dataset, factor: int, aggregation: str = "mean") -> Dataset:
    """Downsample by aggregating blocks of ``factor`` consecutive timestamps.

    This is the paper's ETDataset preparation (hourly → 3-day is a resample
    by 72 with the mean).  A trailing partial block is aggregated over the
    values it contains.
    """
    if factor < 1:
        raise DataError(f"factor must be >= 1, got {factor}")
    if aggregation not in _AGGREGATIONS:
        raise DataError(
            f"aggregation must be one of {sorted(_AGGREGATIONS)}, "
            f"got {aggregation!r}"
        )
    if factor == 1:
        return dataset
    values = np.asarray(dataset.values)
    n = values.shape[0]
    num_blocks = -(-n // factor)
    if num_blocks < 2:
        raise DataError(
            f"resampling {n} timestamps by {factor} leaves fewer than 2 points"
        )
    aggregate = _AGGREGATIONS[aggregation]
    rows = [
        aggregate(values[i * factor : (i + 1) * factor], axis=0)
        for i in range(num_blocks)
    ]
    return Dataset(
        name=f"{dataset.name}_x{factor}",
        values=np.asarray(rows),
        dim_names=dataset.dim_names,
        description=(
            f"{dataset.description} [resampled by {factor} with {aggregation}]"
        ).strip(),
    )


def fill_missing(
    values: np.ndarray,
    dim_names: tuple[str, ...] | None = None,
    name: str = "filled",
    method: str = "interpolate",
    config=None,
) -> Dataset:
    """Turn an array with NaN holes into a NaN-free :class:`Dataset`.

    ``method``:

    * ``"interpolate"`` — linear interpolation per dimension, edges padded
      with the nearest observation;
    * ``"ffill"`` — last observation carried forward (first gap back-filled);
    * ``"zero-shot"`` — :func:`repro.tasks.impute` with ``config`` (a
      :class:`~repro.core.MultiCastConfig`), the paper-style imputer.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2:
        raise DataError(f"expected (n,) or (n, d) input, got shape {arr.shape}")
    missing = np.isnan(arr)
    if np.isinf(arr).any():
        raise DataError("fill_missing handles NaN gaps, not inf values")
    if missing.all(axis=0).any():
        raise DataError("a dimension is entirely missing")

    if method == "zero-shot":
        from repro.core.config import MultiCastConfig
        from repro.tasks import impute

        filled = impute(
            np.nan_to_num(arr), missing, config or MultiCastConfig(num_samples=3)
        )
    elif method in ("interpolate", "ffill"):
        filled = arr.copy()
        for k in range(arr.shape[1]):
            column = filled[:, k]
            holes = missing[:, k]
            if not holes.any():
                continue
            observed_idx = np.nonzero(~holes)[0]
            if method == "interpolate":
                column[holes] = np.interp(
                    np.nonzero(holes)[0], observed_idx, column[observed_idx]
                )
            else:
                last = column[observed_idx[0]]
                for i in range(column.size):
                    if holes[i]:
                        column[i] = last
                    else:
                        last = column[i]
    else:
        raise DataError(
            f"method must be 'interpolate', 'ffill', or 'zero-shot', got {method!r}"
        )

    if dim_names is None:
        dim_names = tuple(f"dim_{i}" for i in range(arr.shape[1]))
    return Dataset(name=name, values=filled, dim_names=dim_names)


def difference_dataset(dataset: Dataset, order: int = 1) -> Dataset:
    """A differenced view of a dataset (loses ``order`` leading timestamps)."""
    if order < 1:
        raise DataError(f"order must be >= 1, got {order}")
    values = np.asarray(dataset.values)
    if values.shape[0] <= order + 1:
        raise DataError("dataset too short to difference")
    for _ in range(order):
        values = np.diff(values, axis=0)
    return Dataset(
        name=f"{dataset.name}_diff{order}",
        values=values,
        dim_names=dataset.dim_names,
        description=f"{dataset.description} [differenced {order}x]".strip(),
    )

"""Synthetic stand-ins for the paper's three datasets, plus a generic generator.

Each generator is deterministic for a given seed and matches the real
dataset's length, dimensionality, value scales, and — the property the paper
leans on — the cross-dimensional correlation structure:

* :func:`gas_rate` — the Box-Jenkins gas furnace is the canonical
  transfer-function pair: input gas feed rate drives output CO₂ percentage
  with a dead time of ≈3-5 steps and negative gain.  We simulate exactly that
  structure (AR(2) input, lagged transfer function with AR(1) noise on the
  output).
* :func:`electricity` — ETDataset's HUFL/HULL are two load measurements that
  co-move; OT (oil temperature) responds to load with thermal inertia.  We
  generate a shared seasonal load factor, two load channels driven by it on
  very different scales, and OT as a lagged exponential response.
* :func:`weather` — the four Jena variables are thermodynamically linked; we
  simulate air temperature and derive VPmax via the Magnus formula, Tpot via
  the Kelvin offset, and H2OC from relative humidity × VPmax, so the
  correlations are physical rather than statistical.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import DataError

__all__ = [
    "gas_rate",
    "electricity",
    "weather",
    "synthetic_multivariate",
    "load_paper_datasets",
]


def _ar_process(
    rng: np.random.Generator,
    n: int,
    coefficients: tuple[float, ...],
    noise_scale: float,
    burn_in: int = 100,
) -> np.ndarray:
    """A stationary AR(p) path of length ``n`` (burn-in discarded)."""
    p = len(coefficients)
    total = n + burn_in
    x = np.zeros(total)
    noise = rng.normal(0.0, noise_scale, size=total)
    for t in range(total):
        acc = noise[t]
        for i, phi in enumerate(coefficients, start=1):
            if t - i >= 0:
                acc += phi * x[t - i]
        x[t] = acc
    return x[burn_in:]


def gas_rate(n: int = 296, seed: int = 7) -> Dataset:
    """Simulated Box-Jenkins gas furnace: (input gas rate, output CO₂ %).

    Dimension 0 ("GasRate", ft³/min, roughly −2.5..2.5 around 0) is an AR(2)
    input signal.  Dimension 1 ("CO2", ≈45..60 %) responds through a lagged
    transfer function with *negative* gain — more fuel lowers the CO₂
    percentage a few steps later — plus AR(1) measurement noise.  This is the
    structure of the real series (Box & Jenkins 1970), so the two dimensions
    carry the strong lagged correlation that makes the dataset "ideal for
    multivariate forecasting" (paper Section IV-A2).
    """
    rng = np.random.default_rng(seed)
    extra = 10  # room for the transfer-function lags
    gas = _ar_process(rng, n + extra, (1.52, -0.63), noise_scale=0.25)
    gas = np.clip(gas, -2.8, 2.8)

    co2 = np.empty(n + extra)
    transfer = (-0.55, -0.75, -0.55)  # gain at lags 3, 4, 5
    ar_noise = _ar_process(rng, n + extra, (0.8,), noise_scale=0.35)
    for t in range(n + extra):
        response = 0.0
        for i, g in enumerate(transfer, start=3):
            if t - i >= 0:
                response += g * gas[t - i]
        co2[t] = 53.0 + response + ar_noise[t]

    values = np.stack([gas[extra:], co2[extra:]], axis=1)
    return Dataset(
        name="gas_rate",
        values=values,
        dim_names=("GasRate", "CO2"),
        description=(
            "Simulated Box-Jenkins gas furnace: AR(2) input gas feed rate; "
            "CO2 % output via a negative-gain transfer function at lags 3-5 "
            "with AR(1) noise. Stand-in for the darts gasrate_co2 series."
        ),
    )


def electricity(n: int = 242, seed: int = 11) -> Dataset:
    """Simulated ETDataset slice: (HUFL, HULL, OT) at a 3-day resample.

    A shared seasonal load factor (annual cycle ≈120 steps of 3 days plus a
    faster weekly-ish ripple) drives both load channels; HUFL is an order of
    magnitude larger than HULL, as in the real data.  OT follows the load
    through a first-order thermal response (exponential smoothing of a
    weighted load mix) with its own seasonal drift, preserving OT's role as
    the regression target driven by the loads.
    """
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    annual = np.sin(2.0 * np.pi * t / 120.0)
    ripple = 0.4 * np.sin(2.0 * np.pi * t / 9.0 + 0.7)
    load_factor = annual + ripple + _ar_process(rng, n, (0.7,), 0.18)

    hufl = 8.0 + 4.5 * load_factor + _ar_process(rng, n, (0.5,), 0.45)
    hull = 2.2 + 1.1 * load_factor + _ar_process(rng, n, (0.5,), 0.22)

    ot = np.empty(n)
    level = 30.0
    for i in range(n):
        drive = 18.0 + 1.4 * hufl[i] + 2.0 * hull[i] + 6.0 * annual[i]
        level += 0.25 * (drive - level)  # thermal inertia
        ot[i] = level
    ot = ot + _ar_process(rng, n, (0.6,), 0.8)

    values = np.stack([hufl, hull, ot], axis=1)
    return Dataset(
        name="electricity",
        values=values,
        dim_names=("HUFL", "HULL", "OT"),
        description=(
            "Simulated ETDataset (3-day resample): shared seasonal load "
            "factor drives HUFL and HULL on different scales; OT is a lagged "
            "thermal response to the loads. Stand-in for ETDataset ETTh1."
        ),
    )


def _magnus_vpmax(temp_c: np.ndarray) -> np.ndarray:
    """Saturation water-vapour pressure (mbar) via the Magnus formula."""
    return 6.1094 * np.exp(17.625 * temp_c / (temp_c + 243.04))


def weather(n: int = 217, seed: int = 13) -> Dataset:
    """Simulated Jena weather slice: (Tlog, H2OC, VPmax, Tpot).

    Air temperature Tlog (°C) is seasonal with AR noise.  The other three
    dimensions are *derived through the actual thermodynamic relations*:
    VPmax from the Magnus saturation-vapour-pressure formula, Tpot (K) as the
    potential temperature T + 273.15 plus a small pressure-correction term,
    and H2OC (mmol/mol) from simulated relative humidity × VPmax over
    standard pressure.  The physical derivations reproduce exactly the
    inter-dimensional correlations the paper highlights.
    """
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    # ~4 annual cycles across the 217 samples (a multi-year weekly resample).
    seasonal = 10.0 + 9.0 * np.sin(2.0 * np.pi * (t - 25.0) / 55.0)
    temp_c = seasonal + _ar_process(rng, n, (0.75,), 1.1)

    vpmax = _magnus_vpmax(temp_c)

    pressure_term = 0.6 * np.sin(2.0 * np.pi * t / 60.0) + _ar_process(
        rng, n, (0.5,), 0.25
    )
    tpot = temp_c + 273.15 + 1.5 + pressure_term

    humidity = np.clip(
        70.0 - 1.2 * (temp_c - seasonal) + _ar_process(rng, n, (0.8,), 4.0),
        25.0,
        100.0,
    )
    standard_pressure_mbar = 1000.0
    h2oc = (humidity / 100.0) * vpmax / standard_pressure_mbar * 1000.0

    values = np.stack([temp_c, h2oc, vpmax, tpot], axis=1)
    return Dataset(
        name="weather",
        values=values,
        dim_names=("Tlog", "H2OC", "VPmax", "Tpot"),
        description=(
            "Simulated Max Planck Jena weather: seasonal air temperature; "
            "VPmax from the Magnus formula, Tpot = T + 273.15 + pressure "
            "term, H2OC from relative humidity x VPmax. Stand-in for the "
            "Jena weather-station extract."
        ),
    )


def synthetic_multivariate(
    n: int = 200,
    num_dims: int = 3,
    period: float = 24.0,
    trend: float = 0.01,
    noise_scale: float = 0.2,
    coupling: float = 0.6,
    seed: int = 0,
) -> Dataset:
    """A generic correlated seasonal dataset for tests and examples.

    Dimension 0 is ``trend*t + sin(2*pi*t/period) + AR noise``; each further
    dimension mixes the previous one (weight ``coupling``) with its own
    phase-shifted seasonal component, producing a chain of correlated series.
    """
    if num_dims < 1:
        raise DataError(f"num_dims must be >= 1, got {num_dims}")
    if n < 8:
        raise DataError(f"n must be >= 8, got {n}")
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=float)
    columns: list[np.ndarray] = []
    for d in range(num_dims):
        phase = 2.0 * np.pi * d / max(num_dims, 1)
        own = (
            trend * t
            + np.sin(2.0 * np.pi * t / period + phase)
            + _ar_process(rng, n, (0.6,), noise_scale)
        )
        if d == 0:
            columns.append(own)
        else:
            columns.append(coupling * columns[d - 1] + (1.0 - coupling) * own + d)
    values = np.stack(columns, axis=1)
    return Dataset(
        name=f"synthetic_{num_dims}d",
        values=values,
        dim_names=tuple(f"x{d}" for d in range(num_dims)),
        description="Generic correlated seasonal synthetic dataset.",
    )


def load_paper_datasets(seed_offset: int = 0) -> list[Dataset]:
    """The paper's three datasets (Table I), in paper order."""
    return [
        gas_rate(seed=7 + seed_offset),
        electricity(seed=11 + seed_offset),
        weather(seed=13 + seed_offset),
    ]

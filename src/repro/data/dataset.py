"""The multivariate time-series container used throughout the library.

Values are stored as a float array shaped ``(n_timestamps, n_dims)`` —
column ``i`` is dimension ``i``.  A :class:`Dataset` is immutable by
convention; transformations return new instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DataError

__all__ = ["Dataset"]


@dataclass(frozen=True)
class Dataset:
    """A named multivariate time series.

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"gas_rate"``).
    values:
        Float array shaped ``(n_timestamps, n_dims)``.
    dim_names:
        One name per dimension, e.g. ``("GasRate", "CO2")``.
    description:
        Free-text provenance, including any simulation substitutions.
    """

    name: str
    values: np.ndarray
    dim_names: tuple[str, ...]
    description: str = ""
    _frozen: bool = field(default=True, repr=False, compare=False)

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float)
        if values.ndim == 1:
            values = values[:, None]
        if values.ndim != 2:
            raise DataError(f"values must be (n, d), got shape {values.shape}")
        if values.shape[0] < 2:
            raise DataError("a dataset needs at least two timestamps")
        if not np.isfinite(values).all():
            raise DataError(f"dataset {self.name!r} contains NaN or inf")
        if len(self.dim_names) != values.shape[1]:
            raise DataError(
                f"{len(self.dim_names)} dimension names for "
                f"{values.shape[1]} dimensions"
            )
        values.setflags(write=False)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "dim_names", tuple(self.dim_names))

    @property
    def num_timestamps(self) -> int:
        return int(self.values.shape[0])

    @property
    def num_dims(self) -> int:
        return int(self.values.shape[1])

    def __len__(self) -> int:
        return self.num_timestamps

    def dimension(self, key: int | str) -> np.ndarray:
        """One dimension as a 1-D array, by index or by name."""
        if isinstance(key, str):
            try:
                key = self.dim_names.index(key)
            except ValueError:
                raise DataError(
                    f"dimension {key!r} not in {self.dim_names}"
                ) from None
        if not 0 <= key < self.num_dims:
            raise DataError(f"dimension index {key} out of range")
        return np.asarray(self.values[:, key])

    def select_dims(self, keys: list[int | str]) -> "Dataset":
        """A new dataset restricted to the given dimensions, in order."""
        columns = [self.dimension(k) for k in keys]
        names = []
        for k in keys:
            names.append(k if isinstance(k, str) else self.dim_names[k])
        return Dataset(
            name=self.name,
            values=np.stack(columns, axis=1),
            dim_names=tuple(names),
            description=self.description,
        )

    def head(self, n: int) -> "Dataset":
        """The first ``n`` timestamps as a new dataset."""
        if not 2 <= n <= self.num_timestamps:
            raise DataError(f"head length {n} outside [2, {self.num_timestamps}]")
        return Dataset(self.name, self.values[:n], self.dim_names, self.description)

    def train_test_split(self, test_fraction: float = 0.2) -> tuple[np.ndarray, np.ndarray]:
        """Hold out the trailing fraction: ``(history, future)`` arrays.

        This is the standard forecasting protocol the paper follows — models
        see the history and are scored on the held-out tail.
        """
        if not 0.0 < test_fraction < 1.0:
            raise DataError(f"test_fraction must be in (0, 1), got {test_fraction}")
        split = self.num_timestamps - max(1, int(round(self.num_timestamps * test_fraction)))
        if split < 2:
            raise DataError("dataset too short for the requested split")
        return np.asarray(self.values[:split]), np.asarray(self.values[split:])

    def summary_row(self) -> dict[str, object]:
        """The dataset's row of the paper's Table I."""
        return {
            "dataset": self.name,
            "dimensions": self.num_dims,
            "length": self.num_timestamps,
        }

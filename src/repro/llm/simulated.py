"""Named simulated backend models and their registry.

A :class:`SimulatedLLM` bundles an in-context model class with the sampling
profile and latency that characterise a specific backend, so the rest of the
library selects models by name exactly as the paper selects LLaMA2 or Phi-2:

* ``"llama2-7b-sim"`` — deep context (PPM order 12), moderate temperature:
  the stronger model.  Slower per token (7B forward pass on CPU).
* ``"phi2-2.7b-sim"`` — shallow context (PPM order 2), high temperature:
  captures the paper's observation that Phi-2 follows the trend but drifts
  off-scale, roughly doubling RMSE (Table III, Fig. 2).  Faster per token.
* ``"ngram-sim"`` — the fixed-order n-gram stand-in (ablation).
* ``"uniform-sim"`` — no model at all (control).

New presets can be added with :func:`register_model`.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigError
from repro.llm.constraints import Constraint
from repro.llm.cost import TokenCostModel
from repro.llm.interface import GenerationResult, LanguageModel
from repro.llm.ctw import CTWLanguageModel
from repro.llm.ngram import NgramBackoffLM, UniformLM
from repro.llm.ppm import PPMLanguageModel
from repro.llm.recency import RecencyPPMLanguageModel
from repro.llm.wrappers import ShiftBiasedLM
from repro.observability.spans import NULL_TRACER

__all__ = [
    "SimulatedLLM",
    "ModelSpec",
    "register_model",
    "get_model",
    "available_models",
]


@dataclass(frozen=True)
class ModelSpec:
    """Recipe for constructing a named simulated model.

    ``realtime_scale`` optionally converts the cost model's *simulated*
    seconds into real ones: each :meth:`SimulatedLLM.generate` call sleeps
    ``cost.seconds(...) * realtime_scale`` after sampling, emulating the
    latency of a remote inference API.  The sleep releases the GIL, so this
    is what makes thread-pooled serving benchmarks representative of hosted
    backends; 0 (the default) keeps generation as fast as the substrate.
    """

    name: str
    factory: Callable[[int], LanguageModel]
    temperature: float = 1.0
    top_p: float | None = None
    cost: TokenCostModel = field(default_factory=TokenCostModel)
    realtime_scale: float = 0.0
    description: str = ""


class SimulatedLLM:
    """A named backend model: in-context LM + sampling profile + cost model.

    The object is stateless across calls — every :meth:`generate` builds a
    fresh in-context model from the prompt, mirroring how a zero-shot API
    call carries no state between requests.
    """

    def __init__(self, spec: ModelSpec, vocab_size: int) -> None:
        self.spec = spec
        self.vocab_size = vocab_size

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def cost(self) -> TokenCostModel:
        return self.spec.cost

    def generate(
        self,
        context: Sequence[int],
        max_new_tokens: int,
        rng: np.random.Generator,
        constraint: Constraint | None = None,
        temperature: float | None = None,
        tracer=None,
    ) -> GenerationResult:
        """One constrained sample of ``max_new_tokens`` continuation tokens.

        ``temperature`` overrides the preset's sampling temperature for this
        call (tasks like imputation decode more conservatively than
        forecasting).  ``tracer`` wraps the call in an ``llm:generate``
        span (naming the backend preset) with the base model's
        ``llm:ingest`` / ``llm:decode`` phases nested beneath it.
        """
        model = self.spec.factory(self.vocab_size)
        tracer = NULL_TRACER if tracer is None else tracer
        with tracer.span(
            "llm:generate",
            model=self.name,
            context_tokens=len(context),
            max_new_tokens=max_new_tokens,
        ) as span:
            result = model.generate(
                context,
                max_new_tokens,
                rng,
                constraint=constraint,
                temperature=(
                    self.spec.temperature if temperature is None else temperature
                ),
                top_p=self.spec.top_p,
                tracer=tracer,
            )
            if self.spec.realtime_scale > 0.0:
                time.sleep(
                    self.spec.cost.seconds(len(context), len(result.tokens))
                    * self.spec.realtime_scale
                )
            span.set_attribute("tokens_generated", len(result.tokens))
        return result

    def sequence_nll(
        self, tokens: Sequence[int], context: Sequence[int] = ()
    ) -> np.ndarray:
        """Per-token NLL under a fresh in-context model (anomaly scoring)."""
        model = self.spec.factory(self.vocab_size)
        return model.sequence_nll(tokens, context)

    def __repr__(self) -> str:
        return f"SimulatedLLM({self.name!r}, vocab_size={self.vocab_size})"


_REGISTRY: dict[str, ModelSpec] = {}


def register_model(spec: ModelSpec, overwrite: bool = False) -> None:
    """Add a model preset to the registry."""
    if spec.name in _REGISTRY and not overwrite:
        raise ConfigError(f"model {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec


def get_model(name: str, vocab_size: int) -> SimulatedLLM:
    """Instantiate a registered preset for a given vocabulary size."""
    try:
        spec = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigError(f"unknown model {name!r}; available: {known}") from None
    return SimulatedLLM(spec, vocab_size)


def available_models() -> list[str]:
    """Names of all registered presets."""
    return sorted(_REGISTRY)


register_model(
    ModelSpec(
        name="llama2-7b-sim",
        factory=lambda v: PPMLanguageModel(v, max_order=12),
        temperature=1.0,
        top_p=None,
        cost=TokenCostModel(seconds_per_generated_token=0.5),
        description="LLaMA2-7B stand-in: deep in-context induction (PPM-12).",
    )
)
register_model(
    ModelSpec(
        name="phi2-2.7b-sim",
        factory=lambda v: ShiftBiasedLM(
            PPMLanguageModel(v, max_order=1, uniform_floor=5e-2),
            shift_weight=0.8,
            shift_steps=5,
        ),
        temperature=1.5,
        top_p=None,
        cost=TokenCostModel(seconds_per_generated_token=0.2),
        description=(
            "Phi-2 stand-in: shallow context (PPM-1), noisy sampling, and a "
            "systematic upward decoding bias; tracks trends but sits 1-2 "
            "units off-scale, roughly doubling RMSE (paper Table III, Fig. 2b)."
        ),
    )
)
register_model(
    ModelSpec(
        name="ctw-sim",
        factory=lambda v: CTWLanguageModel(v, depth=8),
        temperature=1.0,
        cost=TokenCostModel(seconds_per_generated_token=0.5),
        description=(
            "Context Tree Weighting: exact Bayesian mixture over all tree "
            "sources up to depth 8 — the theoretically optimal in-context "
            "predictor family (lower code length than PPM on noisy streams)."
        ),
    )
)
register_model(
    ModelSpec(
        name="ppm-recency-sim",
        factory=lambda v: RecencyPPMLanguageModel(v, max_order=12, halflife=400.0),
        temperature=1.0,
        cost=TokenCostModel(seconds_per_generated_token=0.5),
        description=(
            "Recency-weighted PPM: like the llama2 preset but with "
            "exponentially decayed counts, tracking regime changes."
        ),
    )
)
register_model(
    ModelSpec(
        name="ngram-sim",
        factory=lambda v: NgramBackoffLM(v, order=5, alpha=0.5),
        temperature=0.8,
        cost=TokenCostModel(seconds_per_generated_token=0.3),
        description="Fixed-order interpolated n-gram stand-in (ablation).",
    )
)
register_model(
    ModelSpec(
        name="uniform-sim",
        factory=UniformLM,
        temperature=1.0,
        cost=TokenCostModel(seconds_per_generated_token=0.1),
        description="Uniform control model — ignores its context.",
    )
)

"""Named simulated backend models and their registry.

A :class:`SimulatedLLM` bundles an in-context model class with the sampling
profile and latency that characterise a specific backend, so the rest of the
library selects models by name exactly as the paper selects LLaMA2 or Phi-2:

* ``"llama2-7b-sim"`` — deep context (PPM order 12), moderate temperature:
  the stronger model.  Slower per token (7B forward pass on CPU).
* ``"phi2-2.7b-sim"`` — shallow context (PPM order 2), high temperature:
  captures the paper's observation that Phi-2 follows the trend but drifts
  off-scale, roughly doubling RMSE (Table III, Fig. 2).  Faster per token.
* ``"ngram-sim"`` — the fixed-order n-gram stand-in (ablation).
* ``"uniform-sim"`` — no model at all (control).

New presets can be added with :func:`register_model`.

Prompt ingest is shared, not repeated: :meth:`SimulatedLLM.prefill` builds
(or fetches from an :class:`~repro.llm.state_cache.IngestStateCache`) a
:class:`PrefilledSession`, and :meth:`SimulatedLLM.generate` accepts that
session to fork-and-decode instead of re-ingesting the prompt — the
substrate's equivalent of KV-cache prefix reuse.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigError, GenerationError
from repro.llm.batch import BatchedDecoder
from repro.llm.constraints import Constraint
from repro.llm.cost import TokenCostModel
from repro.llm.ctw import CTWLanguageModel
from repro.llm.interface import GenerationResult, LanguageModel
from repro.llm.ngram import NgramBackoffLM, UniformLM
from repro.llm.ppm import PPMLanguageModel
from repro.llm.recency import RecencyPPMLanguageModel
from repro.llm.state_cache import IngestStateCache
from repro.llm.wrappers import ShiftBiasedLM
from repro.observability.spans import NULL_TRACER

__all__ = [
    "SimulatedLLM",
    "ModelSpec",
    "PrefilledSession",
    "register_model",
    "get_model",
    "available_models",
]


@dataclass(frozen=True)
class ModelSpec:
    """Recipe for constructing a named simulated model.

    ``realtime_scale`` optionally converts the cost model's *simulated*
    seconds into real ones: each :meth:`SimulatedLLM.generate` call sleeps
    ``cost.seconds(...) * realtime_scale`` after sampling, emulating the
    latency of a remote inference API.  The sleep releases the GIL, so this
    is what makes thread-pooled serving benchmarks representative of hosted
    backends; 0 (the default) keeps generation as fast as the substrate.
    Ingest latency is charged where ingest happens: a prefill that reuses a
    cached state only sleeps for the tokens it actually ingested, and a
    generate call given a session sleeps for its decode tokens only.
    """

    name: str
    factory: Callable[[int], LanguageModel]
    temperature: float = 1.0
    top_p: float | None = None
    cost: TokenCostModel = field(default_factory=TokenCostModel)
    realtime_scale: float = 0.0
    description: str = ""


@dataclass
class PrefilledSession:
    """A prompt ingested once, ready to be forked per sample draw.

    Attributes
    ----------
    model:
        The prefilled in-context model.  **Frozen by contract** — consumers
        must :meth:`~repro.llm.interface.LanguageModel.fork` it before
        decoding, which is what makes one session safely shareable across
        every draw of an ensemble (and across threads).
    context:
        The prompt tokens the session is conditioned on.
    ingested_tokens:
        How many of those tokens this prefill actually ingested (0 on an
        exact cache hit, the suffix length on an incremental extension,
        ``len(context)`` on a miss).
    outcome:
        ``"fork"``, ``"extend"`` or ``"miss"`` — where the state came from.
    """

    model: LanguageModel
    context: tuple[int, ...]
    ingested_tokens: int
    outcome: str


class SimulatedLLM:
    """A named backend model: in-context LM + sampling profile + cost model.

    The object carries no decode state across calls — each :meth:`generate`
    conditions on exactly the prompt it is given, mirroring how a zero-shot
    API call carries no state between requests.  What *can* persist is the
    deterministic ingest work: pass ``state_cache`` (or a ``session`` from
    :meth:`prefill`) to reuse previously built in-context structure.
    """

    def __init__(
        self,
        spec: ModelSpec,
        vocab_size: int,
        state_cache: IngestStateCache | None = None,
    ) -> None:
        self.spec = spec
        self.vocab_size = vocab_size
        self.state_cache = state_cache

    @property
    def name(self) -> str:
        """The registry preset name (e.g. ``"llama2-7b-sim"``)."""
        return self.spec.name

    @property
    def cost(self) -> TokenCostModel:
        """The preset's simulated-seconds cost model."""
        return self.spec.cost

    def _sleep(self, prompt_tokens: int, generated_tokens: int) -> None:
        if self.spec.realtime_scale > 0.0:
            time.sleep(
                self.spec.cost.seconds(prompt_tokens, generated_tokens)
                * self.spec.realtime_scale
            )

    def prefill(
        self,
        context: Sequence[int],
        tracer=None,
        state_cache: IngestStateCache | None = None,
    ) -> PrefilledSession:
        """Ingest ``context`` once, reusing cached state where possible.

        With a cache (the ``state_cache`` argument, falling back to the
        instance's), an exact hit skips ingest entirely (outcome
        ``"fork"``), a strict-prefix hit forks the cached state and
        advances only the new suffix (``"extend"``), and a miss ingests in
        full; the resulting state is deposited back for future calls.
        Emits one ``llm:ingest`` span whose ``ingest`` attribute records
        the outcome and whose ``ingested_tokens`` records the work actually
        done — which is also all the realtime latency charged.
        """
        tracer = NULL_TRACER if tracer is None else tracer
        cache = self.state_cache if state_cache is None else state_cache
        prompt = tuple(int(t) for t in context)
        lookup = None
        if cache is not None and cache.enabled:
            lookup = cache.get(self.name, self.vocab_size, prompt)
        outcome = "miss" if lookup is None else lookup.outcome
        with tracer.span(
            "llm:ingest",
            context_tokens=len(prompt),
            ingest=outcome,
        ) as span:
            if lookup is not None and lookup.outcome == "fork":
                model = lookup.model
                ingested = 0
            elif lookup is not None and lookup.outcome == "extend":
                model = lookup.model  # already a private fork
                for token in prompt[lookup.matched :]:
                    model.advance(token)
                ingested = len(prompt) - lookup.matched
                cache.put(self.name, self.vocab_size, prompt, model)
            else:
                model = self.spec.factory(self.vocab_size)
                ingested = len(prompt)
                if cache is not None:
                    # Deposits doubling-boundary checkpoints along the way,
                    # so later *shorter* queries of this prompt can extend
                    # from the longest cached prefix instead of missing.
                    cache.ingest(self.name, self.vocab_size, prompt, model)
                else:
                    model.reset(prompt)
            span.set_attribute("ingested_tokens", ingested)
            self._sleep(ingested, 0)
        return PrefilledSession(
            model=model, context=prompt, ingested_tokens=ingested, outcome=outcome
        )

    def generate(
        self,
        context: Sequence[int],
        max_new_tokens: int,
        rng: np.random.Generator,
        constraint: Constraint | None = None,
        temperature: float | None = None,
        tracer=None,
        session: PrefilledSession | None = None,
    ) -> GenerationResult:
        """One constrained sample of ``max_new_tokens`` continuation tokens.

        ``temperature`` overrides the preset's sampling temperature for this
        call (tasks like imputation decode more conservatively than
        forecasting).  ``tracer`` wraps the call in an ``llm:generate``
        span (naming the backend preset) with the ``llm:ingest`` /
        ``llm:decode`` phases nested beneath it.

        ``session`` — a :class:`PrefilledSession` from :meth:`prefill` for
        the *same* prompt — switches to the fork-after-prefill hot path:
        the prefilled state is forked and decoded without re-ingesting, the
        span carries ``ingest="fork"`` in place of a nested ``llm:ingest``,
        and realtime latency covers only the decoded tokens.  Outputs are
        bit-identical to the re-ingest path under the same RNG state.
        """
        tracer = NULL_TRACER if tracer is None else tracer
        if session is not None and session.context != tuple(
            int(t) for t in context
        ):
            raise GenerationError(
                "prefilled session does not match the generate() context"
            )
        attrs = {
            "model": self.name,
            "context_tokens": len(context),
            "max_new_tokens": max_new_tokens,
        }
        if session is not None:
            attrs["ingest"] = "fork"
        with tracer.span("llm:generate", **attrs) as span:
            if session is not None:
                if max_new_tokens < 0:
                    raise GenerationError(
                        f"max_new_tokens must be >= 0, got {max_new_tokens}"
                    )
                model = session.model.fork()
                result = model.decode(
                    max_new_tokens,
                    rng,
                    constraint=constraint,
                    temperature=(
                        self.spec.temperature if temperature is None else temperature
                    ),
                    top_p=self.spec.top_p,
                    tracer=tracer,
                )
                self._sleep(0, len(result.tokens))
            else:
                model = self.spec.factory(self.vocab_size)
                result = model.generate(
                    context,
                    max_new_tokens,
                    rng,
                    constraint=constraint,
                    temperature=(
                        self.spec.temperature if temperature is None else temperature
                    ),
                    top_p=self.spec.top_p,
                    tracer=tracer,
                )
                self._sleep(len(context), len(result.tokens))
            span.set_attribute("tokens_generated", len(result.tokens))
        return result

    def generate_batch(
        self,
        context: Sequence[int],
        max_new_tokens: int | Sequence[int],
        rngs: Sequence[np.random.Generator],
        constraint: Constraint | None = None,
        temperature: float | None = None,
        tracer=None,
        session: PrefilledSession | None = None,
        state_cache: IngestStateCache | None = None,
        stop=None,
    ) -> BatchedDecoder:
        """Decode one constrained continuation per RNG, in lockstep.

        The batched counterpart of calling :meth:`generate` once per
        sample: all streams fork from one prefilled session (``session``
        if given, else an internal :meth:`prefill`) and advance together
        through a :class:`~repro.llm.batch.BatchedDecoder`, which emits
        the ``llm:decode_batch`` span.  Under the same per-stream RNGs the
        results are bit-identical to per-sample :meth:`generate` calls.

        ``stop`` is an optional zero-argument callable polled between
        steps (deadline enforcement); when it fires, unfinished streams
        report ``None``.  Realtime latency is charged for one stream's
        decode steps — the whole point of batching is that the S streams
        share each model pass.  Returns the decoder, whose ``results``,
        ``occupancy`` and ``group_counts`` carry the outcome.
        """
        tracer = NULL_TRACER if tracer is None else tracer
        prompt = tuple(int(t) for t in context)
        if session is None:
            session = self.prefill(prompt, tracer=tracer, state_cache=state_cache)
        elif session.context != prompt:
            raise GenerationError(
                "prefilled session does not match the generate_batch() context"
            )
        decoder = BatchedDecoder(
            session.model,
            rngs,
            max_new_tokens,
            constraint=constraint,
            temperature=(
                self.spec.temperature if temperature is None else temperature
            ),
            top_p=self.spec.top_p,
        )
        decoder.decode(
            tracer=tracer, stop=stop, span_attributes={"model": self.name}
        )
        self._sleep(0, decoder.steps)
        return decoder

    def sequence_nll(
        self, tokens: Sequence[int], context: Sequence[int] = ()
    ) -> np.ndarray:
        """Per-token NLL under a fresh in-context model (anomaly scoring)."""
        model = self.spec.factory(self.vocab_size)
        return model.sequence_nll(tokens, context)

    def __repr__(self) -> str:
        return f"SimulatedLLM({self.name!r}, vocab_size={self.vocab_size})"


_REGISTRY: dict[str, ModelSpec] = {}


def register_model(spec: ModelSpec, overwrite: bool = False) -> None:
    """Add a model preset to the registry."""
    if spec.name in _REGISTRY and not overwrite:
        raise ConfigError(f"model {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec


def get_model(
    name: str, vocab_size: int, state_cache: IngestStateCache | None = None
) -> SimulatedLLM:
    """Instantiate a registered preset for a given vocabulary size.

    ``state_cache`` attaches a shared ingest-state cache so the instance's
    :meth:`~SimulatedLLM.prefill` calls reuse prompt state across requests.
    """
    try:
        spec = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigError(f"unknown model {name!r}; available: {known}") from None
    return SimulatedLLM(spec, vocab_size, state_cache=state_cache)


def available_models() -> list[str]:
    """Names of all registered presets."""
    return sorted(_REGISTRY)


register_model(
    ModelSpec(
        name="llama2-7b-sim",
        factory=lambda v: PPMLanguageModel(v, max_order=12),
        temperature=1.0,
        top_p=None,
        cost=TokenCostModel(seconds_per_generated_token=0.5),
        description="LLaMA2-7B stand-in: deep in-context induction (PPM-12).",
    )
)
register_model(
    ModelSpec(
        name="phi2-2.7b-sim",
        factory=lambda v: ShiftBiasedLM(
            PPMLanguageModel(v, max_order=1, uniform_floor=5e-2),
            shift_weight=0.8,
            shift_steps=5,
        ),
        temperature=1.5,
        top_p=None,
        cost=TokenCostModel(seconds_per_generated_token=0.2),
        description=(
            "Phi-2 stand-in: shallow context (PPM-1), noisy sampling, and a "
            "systematic upward decoding bias; tracks trends but sits 1-2 "
            "units off-scale, roughly doubling RMSE (paper Table III, Fig. 2b)."
        ),
    )
)
register_model(
    ModelSpec(
        name="ctw-sim",
        factory=lambda v: CTWLanguageModel(v, depth=8),
        temperature=1.0,
        cost=TokenCostModel(seconds_per_generated_token=0.5),
        description=(
            "Context Tree Weighting: exact Bayesian mixture over all tree "
            "sources up to depth 8 — the theoretically optimal in-context "
            "predictor family (lower code length than PPM on noisy streams)."
        ),
    )
)
register_model(
    ModelSpec(
        name="ppm-recency-sim",
        factory=lambda v: RecencyPPMLanguageModel(v, max_order=12, halflife=400.0),
        temperature=1.0,
        cost=TokenCostModel(seconds_per_generated_token=0.5),
        description=(
            "Recency-weighted PPM: like the llama2 preset but with "
            "exponentially decayed counts, tracking regime changes."
        ),
    )
)
register_model(
    ModelSpec(
        name="ngram-sim",
        factory=lambda v: NgramBackoffLM(v, order=5, alpha=0.5),
        temperature=0.8,
        cost=TokenCostModel(seconds_per_generated_token=0.3),
        description="Fixed-order interpolated n-gram stand-in (ablation).",
    )
)
register_model(
    ModelSpec(
        name="uniform-sim",
        factory=UniformLM,
        temperature=1.0,
        cost=TokenCostModel(seconds_per_generated_token=0.1),
        description="Uniform control model — ignores its context.",
    )
)

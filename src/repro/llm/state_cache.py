"""Shared-prefix ingest-state cache: prefill once, fork forever after.

Prompt ingest — :meth:`~repro.llm.interface.LanguageModel.reset` — is the
substrate's analogue of LLM prefill: O(n · order) dictionary updates that
are re-paid from scratch on every call even though ingest is deterministic
and prompts repeat heavily in practice (every sample of an ensemble shares
one prompt; rolling-origin backtest windows and dashboard refreshes extend
each other).  Real serving stacks eliminate exactly this redundancy with
KV-cache / prefix reuse; this module is the in-context-model version.

An :class:`IngestStateCache` maps ``(model preset, vocab size, prompt
tokens)`` to a *prefilled* :class:`~repro.llm.interface.LanguageModel`.
Lookups resolve three ways:

* **fork** — the exact prompt is cached: callers fork the stored state and
  skip ingest entirely (O(state) instead of O(n · order) Python updates);
* **extend** — a cached prompt is a strict *prefix* of the new one (the
  rolling-origin case): the stored state is forked and only the suffix is
  advanced, turning O(n) prefill into O(Δ);
* **miss** — nothing usable is cached: the caller ingests in full and
  deposits the result for the next request.

In-context states cannot be *rewound*: a model prefilled on a long prompt
is useless for a strictly shorter query, even though that query is a
prefix of what was ingested.  :meth:`IngestStateCache.ingest` therefore
deposits **checkpoints** while it ingests — frozen snapshots at doubling
token boundaries (16, 32, 64, ...) — so a later shorter query resolves to
the longest cached prefix at or below its length instead of missing
outright.  (:class:`repro.scheduling.RadixPrefillTree` generalises the
same idea to a prefix tree shared across unrelated prompts.)

Entries are LRU-evicted by total *token* count (not entry count), since a
prefilled state's memory footprint scales with its prompt length.  An
optional **spill tier** (``spill=``, duck-typed; see
:class:`repro.sharding.SpillStore`) turns eviction into demotion: evicted
states are serialized to a shared store, and a lookup that misses both
memory tiers consults it before reporting a miss — so prefill state
survives process restarts and migrates across sharded workers.

Thread-safety contract: cached models are **frozen** — :meth:`get` hands
back the shared instance (or a private fork for the extend case) and every
consumer must :meth:`~repro.llm.interface.LanguageModel.fork` before
mutating; :meth:`put` takes ownership of the deposited model, which the
caller must not advance afterwards.  :class:`~repro.llm.simulated.
SimulatedLLM.prefill` implements this discipline for you.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass

from repro.exceptions import ConfigError
from repro.llm.interface import LanguageModel

__all__ = ["IngestLookup", "IngestStateCache", "checkpoint_lengths"]

#: Shortest prefix worth snapshotting during ingest; below this the ingest
#: is cheaper than the bookkeeping.
CHECKPOINT_FLOOR = 16


def checkpoint_lengths(n: int) -> tuple[int, ...]:
    """Doubling snapshot boundaries strictly below ``n``.

    ``(16, 32, 64, ...)`` up to (excluding) ``n`` — O(log n) checkpoints
    that guarantee any future prefix query of length ``q >= 16`` finds a
    cached state covering at least ``q // 2`` tokens.
    """
    lengths = []
    length = CHECKPOINT_FLOOR
    while length < n:
        lengths.append(length)
        length *= 2
    return tuple(lengths)


@dataclass
class IngestLookup:
    """Outcome of one cache lookup.

    Attributes
    ----------
    model:
        A prefilled model covering ``matched`` prompt tokens, or ``None``
        on a miss.  For ``outcome == "fork"`` this is the *shared* cached
        instance — fork before mutating.  For ``"extend"`` it is a private
        fork the caller may advance (and should deposit back via ``put``).
    matched:
        Number of leading prompt tokens the returned state already covers.
    outcome:
        ``"fork"`` (exact hit), ``"extend"`` (strict-prefix hit) or
        ``"miss"``.
    """

    model: LanguageModel | None
    matched: int
    outcome: str


class IngestStateCache:
    """Thread-safe LRU of prefilled in-context models, bounded by tokens.

    Parameters
    ----------
    max_tokens:
        Total prompt-token budget across all entries; least-recently-used
        entries are evicted once the budget is exceeded.  ``0`` builds a
        disabled cache (every ``get`` misses, every ``put`` is dropped), so
        callers can switch caching off without branching.
    spill:
        Optional second tier (duck-typed; anything with
        ``store(model_name, vocab_size, tokens, model)`` and
        ``fetch(model_name, vocab_size, tokens) -> (model | None, matched)``
        — :class:`repro.sharding.SpillStore` is the shipped
        implementation).  Evicted entries are demoted into it, and
        lookups that miss memory consult it before reporting a miss.
    """

    def __init__(self, max_tokens: int = 262_144, *, spill=None) -> None:
        if max_tokens < 0:
            raise ConfigError(f"max_tokens must be >= 0, got {max_tokens}")
        self.max_tokens = max_tokens
        self.spill = spill
        self._spill_hits = 0
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, LanguageModel] = OrderedDict()
        self._total_tokens = 0
        self._hits = 0
        self._extends = 0
        self._misses = 0
        self._evictions = 0
        self._tokens_saved = 0

    @property
    def enabled(self) -> bool:
        """False for a zero-budget cache (stores and lookups are no-ops)."""
        return self.max_tokens > 0

    @staticmethod
    def _key(model_name: str, vocab_size: int, tokens: tuple) -> tuple:
        return (model_name, int(vocab_size), tokens)

    def get(
        self, model_name: str, vocab_size: int, tokens: Sequence[int]
    ) -> IngestLookup:
        """Resolve a prompt against the cache.

        Prefers an exact match (``"fork"``); otherwise the *longest* cached
        strict prefix under the same ``(model_name, vocab_size)`` namespace
        (``"extend"``, returning a private fork prefilled to ``matched``
        tokens); otherwise the spill tier, when one is attached; otherwise
        a ``"miss"``.  A spill hit is promoted back into the memory tier.
        """
        prompt = tuple(int(t) for t in tokens)
        namespace = (model_name, int(vocab_size))
        parent = None
        best_length = 0
        with self._lock:
            if not self.enabled:
                self._misses += 1
                return IngestLookup(model=None, matched=0, outcome="miss")
            exact = self._entries.get(self._key(model_name, vocab_size, prompt))
            if exact is not None:
                self._entries.move_to_end(
                    self._key(model_name, vocab_size, prompt)
                )
                self._hits += 1
                self._tokens_saved += len(prompt)
                return IngestLookup(model=exact, matched=len(prompt), outcome="fork")
            best_key = None
            for key in self._entries:
                cached_tokens = key[2]
                if (
                    key[:2] == namespace
                    and best_length < len(cached_tokens) < len(prompt)
                    and prompt[: len(cached_tokens)] == cached_tokens
                ):
                    best_key, best_length = key, len(cached_tokens)
            if best_key is not None:
                self._entries.move_to_end(best_key)
                parent = self._entries[best_key]
                self._extends += 1
                self._tokens_saved += best_length
        if parent is not None:
            # Fork outside the lock: cached entries are frozen, so concurrent
            # forks are pure reads, and fork cost must not serialise readers.
            return IngestLookup(
                model=parent.fork(), matched=best_length, outcome="extend"
            )
        if self.spill is not None:
            loaded, matched = self.spill.fetch(model_name, vocab_size, prompt)
            if loaded is not None:
                outcome = "fork" if matched == len(prompt) else "extend"
                with self._lock:
                    if outcome == "fork":
                        self._hits += 1
                    else:
                        self._extends += 1
                    self._spill_hits += 1
                    self._tokens_saved += matched
                # Promote: the next lookup for this prompt should hit memory.
                self.put(model_name, vocab_size, prompt[:matched], loaded.fork())
                return IngestLookup(model=loaded, matched=matched, outcome=outcome)
        with self._lock:
            self._misses += 1
        return IngestLookup(model=None, matched=0, outcome="miss")

    def ingest(
        self,
        model_name: str,
        vocab_size: int,
        tokens: Sequence[int],
        model: LanguageModel,
    ) -> LanguageModel:
        """Ingest ``tokens`` into a *fresh* ``model``, depositing checkpoints.

        The miss-path counterpart of :meth:`get`: the prompt is ingested in
        full (bit-identical to ``model.reset(tokens)`` — incremental
        ``advance`` after a prefix ``reset`` is the same contract the
        extend path already relies on), but frozen snapshots are deposited
        at :func:`checkpoint_lengths` boundaries along the way, plus the
        full prompt.  A later query for any *shorter* prefix of this
        prompt then resolves to the longest cached checkpoint at or below
        its length — previously such queries missed outright, because an
        end state cannot serve a shorter prefix.

        Returns the fully ingested model, which the cache owns (frozen);
        callers must fork before decoding, exactly as after :meth:`put`.
        """
        prompt = tuple(int(t) for t in tokens)
        if not self.enabled:
            model.reset(prompt)
            return model
        cursor = 0
        for boundary in checkpoint_lengths(len(prompt)):
            if cursor == 0:
                model.reset(prompt[:boundary])
            else:
                for token in prompt[cursor:boundary]:
                    model.advance(token)
            cursor = boundary
            self.put(model_name, vocab_size, prompt[:boundary], model.fork())
        if cursor == 0:
            model.reset(prompt)
        else:
            for token in prompt[cursor:]:
                model.advance(token)
        self.put(model_name, vocab_size, prompt, model)
        return model

    def put(
        self,
        model_name: str,
        vocab_size: int,
        tokens: Sequence[int],
        model: LanguageModel,
    ) -> None:
        """Deposit a prefilled model, taking ownership of it.

        The caller must not mutate ``model`` afterwards (fork it instead).
        Prompts longer than the whole budget are not cached at all.  With a
        spill tier attached, entries this deposit evicts are demoted to it
        (serialized outside the lock) instead of destroyed.
        """
        prompt = tuple(int(t) for t in tokens)
        if not self.enabled or len(prompt) > self.max_tokens:
            return
        key = self._key(model_name, vocab_size, prompt)
        demoted = []
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = model
                return
            self._entries[key] = model
            self._total_tokens += len(prompt)
            while self._total_tokens > self.max_tokens:
                evicted_key, evicted_model = self._entries.popitem(last=False)
                self._total_tokens -= len(evicted_key[2])
                self._evictions += 1
                if self.spill is not None:
                    demoted.append((evicted_key, evicted_model))
        for (name, vocab, evicted_tokens), evicted_model in demoted:
            self.spill.store(name, vocab, evicted_tokens, evicted_model)

    def clear(self) -> None:
        """Drop every entry (hit/extend/miss statistics are kept)."""
        with self._lock:
            self._entries.clear()
            self._total_tokens = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> dict:
        """Lookup/eviction accounting plus the prefill tokens saved."""
        with self._lock:
            lookups = self._hits + self._extends + self._misses
            return {
                "entries": len(self._entries),
                "total_tokens": self._total_tokens,
                "max_tokens": self.max_tokens,
                "hits": self._hits,
                "extends": self._extends,
                "misses": self._misses,
                "evictions": self._evictions,
                "tokens_saved": self._tokens_saved,
                "spill_hits": self._spill_hits,
                "hit_rate": (self._hits + self._extends) / lookups if lookups else 0.0,
            }

    def __repr__(self) -> str:
        stats = self.stats
        return (
            f"IngestStateCache(entries={stats['entries']}, "
            f"tokens={stats['total_tokens']}/{self.max_tokens}, "
            f"hits={stats['hits']}, extends={stats['extends']}, "
            f"misses={stats['misses']})"
        )

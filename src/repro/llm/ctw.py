"""Context Tree Weighting (CTW) — a third in-context model family.

CTW (Willems, Shtarkov & Tjalkens, 1995) is the textbook *universal*
sequence predictor: it Bayes-mixes **every** tree source up to depth ``D``
with the Krichevsky-Trofimov estimator at each node, and its code length is
within a vanishing redundancy of the best context tree in hindsight.  Where
PPM heuristically escapes from long contexts to short ones, CTW performs
the exact Bayesian model average — a stronger theoretical stand-in for an
LLM's in-context learning, at somewhat higher constant cost.

Implementation notes (the standard incremental formulation, generalised to
an m-ary alphabet):

* every node ``s`` on the current context path stores its symbol counts,
  ``log_pe`` (the KT probability of the data seen at ``s``) and ``log_pw``
  (the weighted probability), with
  ``P_w(s) = 1/2 P_e(s) + 1/2 * prod_children P_w(child)``;
* the m-ary KT estimator is ``P(a) = (c_a + 1/2) / (C + m/2)``;
* after observing a symbol, ``log_pe``/``log_pw`` update bottom-up along
  the context path only (each node keeps the running sum of its children's
  ``log_pw`` so the product never needs revisiting);
* the predictive distribution follows the same recursion top-down: at a
  node with mixing weight ``w = exp(log(1/2) + log_pe - log_pw)`` the
  prediction is ``w * KT(a) + (1 - w) * P_child(a)``.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.exceptions import GenerationError
from repro.llm.interface import LanguageModel

__all__ = ["CTWLanguageModel"]

_LOG_HALF = math.log(0.5)


def _log_add(a: float, b: float) -> float:
    """log(exp(a) + exp(b)) without overflow."""
    if a < b:
        a, b = b, a
    return a + math.log1p(math.exp(b - a))


class _Node:
    """One context-tree node: counts and sequence log-probabilities."""

    __slots__ = ("counts", "total", "log_pe", "log_pw", "children_log_pw")

    def __init__(self, vocab_size: int) -> None:
        self.counts = np.zeros(vocab_size, dtype=np.float64)
        self.total = 0.0
        self.log_pe = 0.0
        self.log_pw = 0.0
        self.children_log_pw = 0.0

    def kt_probability(self, symbol: int, vocab_size: int) -> float:
        """The m-ary Krichevsky-Trofimov estimator."""
        return (self.counts[symbol] + 0.5) / (self.total + vocab_size / 2.0)

    def mixing_weight(self) -> float:
        """Posterior weight of 'stop splitting here' vs 'defer to children'."""
        return math.exp(min(0.0, _LOG_HALF + self.log_pe - self.log_pw))

    def clone(self) -> "_Node":
        """An independent copy of this node's counts and log-probabilities."""
        fresh = _Node.__new__(_Node)
        fresh.counts = self.counts.copy()
        fresh.total = self.total
        fresh.log_pe = self.log_pe
        fresh.log_pw = self.log_pw
        fresh.children_log_pw = self.children_log_pw
        return fresh


class CTWLanguageModel(LanguageModel):
    """Context Tree Weighting over a dense corpus-id vocabulary.

    Parameters
    ----------
    vocab_size:
        Alphabet size (digits + separator, or a SAX alphabet).
    depth:
        Maximum context length ``D`` mixed over (every tree up to this
        depth participates in the Bayesian average).
    """

    def __init__(self, vocab_size: int, depth: int = 8) -> None:
        super().__init__(vocab_size)
        if depth < 1:
            raise GenerationError(f"depth must be >= 1, got {depth}")
        self.depth = depth
        self._root = _Node(vocab_size)
        self._nodes: dict[tuple[int, ...], _Node] = {}
        self._history: list[int] = []

    # -- session protocol ---------------------------------------------------

    def reset(self, context: Sequence[int]) -> None:
        """Rebuild the context tree from scratch and ingest ``context``."""
        self._root = _Node(self.vocab_size)
        self._nodes = {}
        self._history = []
        for token in context:
            self.advance(int(token))

    def fork(self) -> "CTWLanguageModel":
        """Structure-aware deep copy of the whole node tree.

        Copies one ``_Node`` per *distinct* context seen — typically far
        fewer than the ``n · depth`` bottom-up updates a re-ingest pays on
        the repetitive token streams forecasting produces.
        """
        if type(self) is not CTWLanguageModel:
            return super().fork()
        fresh = CTWLanguageModel(self.vocab_size, depth=self.depth)
        fresh._root = self._root.clone()
        fresh._nodes = {key: node.clone() for key, node in self._nodes.items()}
        fresh._history = list(self._history)
        return fresh

    def _path_nodes(self) -> list[tuple[tuple[int, ...], _Node]]:
        """Nodes on the current context path, root (depth 0) first.

        Context keys grow toward the past: the depth-k node is keyed by the
        last ``k`` symbols (most recent first).  History before the start
        is padded with symbol 0 — the standard CTW boundary convention that
        keeps every path at full depth, which in turn keeps the weighted
        sequence probability exactly normalised from the first symbol on.
        """
        history = self._history
        n = len(history)
        path: list[tuple[tuple[int, ...], _Node]] = [((), self._root)]
        key: tuple[int, ...] = ()
        for k in range(1, self.depth + 1):
            symbol = history[n - k] if n - k >= 0 else 0
            key = key + (symbol,)
            node = self._nodes.get(key)
            if node is None:
                node = _Node(self.vocab_size)
                self._nodes[key] = node
            path.append((key, node))
        return path

    def advance(self, token: int) -> None:
        """Observe ``token``: bottom-up KT and weighted-probability update."""
        self._check_token(token)
        path = self._path_nodes()
        # Bottom-up: update KT estimates and re-mix the weighted probs.
        child_delta = 0.0
        for depth in range(len(path) - 1, -1, -1):
            _, node = path[depth]
            node.log_pe += math.log(node.kt_probability(token, self.vocab_size))
            node.counts[token] += 1.0
            node.total += 1.0
            old_log_pw = node.log_pw
            node.children_log_pw += child_delta
            if depth == self.depth:
                # True leaf of the mixed family: no deeper splits exist.
                node.log_pw = node.log_pe
            else:
                # Internal (or frontier) node: children not on the path —
                # including never-seen ones, whose probability is 1 — enter
                # through the running children product.
                node.log_pw = _log_add(
                    _LOG_HALF + node.log_pe, _LOG_HALF + node.children_log_pw
                )
            child_delta = node.log_pw - old_log_pw
        self._history.append(token)

    def next_distribution(self) -> np.ndarray:
        """Exact CTW predictive: ``P(a) = P_w(x a) / P_w(x)``.

        Implemented as a dry run of :meth:`advance` per candidate symbol,
        which guarantees chain-rule consistency with the weighted sequence
        probability at the root (a property test pins this).
        """
        path = self._path_nodes()
        base = self._root.log_pw
        probs = np.empty(self.vocab_size, dtype=float)
        for symbol in range(self.vocab_size):
            child_delta = 0.0
            new_log_pw = 0.0
            for depth in range(len(path) - 1, -1, -1):
                _, node = path[depth]
                log_pe = node.log_pe + math.log(
                    node.kt_probability(symbol, self.vocab_size)
                )
                if depth == self.depth:
                    new_log_pw = log_pe
                else:
                    new_log_pw = _log_add(
                        _LOG_HALF + log_pe,
                        _LOG_HALF + node.children_log_pw + child_delta,
                    )
                child_delta = new_log_pw - node.log_pw
            probs[symbol] = math.exp(new_log_pw - base)
        return probs / probs.sum()

"""Fixed-order interpolated n-gram model and a uniform control model.

:class:`NgramBackoffLM` recursively interpolates each order with the next
shorter one (Jelinek–Mercer style with an additive prior):

    P_k(t | s_k) = (c(s_k t) + alpha * P_{k-1}(t | s_{k-1})) / (c(s_k) + alpha)

so unseen contexts fall back smoothly and the distribution is always proper.
It serves as a second, simpler LLM stand-in and as a cross-check on PPM in
the ablation benches.  :class:`UniformLM` ignores its context entirely — the
"no model" control used by tests and the constrained-generation ablation.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

import numpy as np

from repro.exceptions import GenerationError
from repro.llm.interface import LanguageModel

__all__ = ["NgramBackoffLM", "UniformLM"]


class NgramBackoffLM(LanguageModel):
    """Interpolated n-gram language model built from the prompt in context.

    Parameters
    ----------
    vocab_size:
        Size of the corpus-id space.
    order:
        Context length of the top-level model (an ``order``-gram conditions
        on ``order`` previous tokens).
    alpha:
        Interpolation strength toward the next-shorter context; also acts as
        the additive prior weight.
    """

    def __init__(self, vocab_size: int, order: int = 4, alpha: float = 0.5) -> None:
        super().__init__(vocab_size)
        if order < 0:
            raise GenerationError(f"order must be >= 0, got {order}")
        if alpha <= 0.0:
            raise GenerationError(f"alpha must be > 0, got {alpha}")
        self.order = order
        self.alpha = alpha
        self._tables: list[dict[tuple[int, ...], np.ndarray]] = []
        self._history: list[int] = []

    def reset(self, context: Sequence[int]) -> None:
        """Drop all counts and ingest ``context``."""
        self._tables = [
            defaultdict(lambda: np.zeros(self.vocab_size, dtype=float))
            for _ in range(self.order + 1)
        ]
        self._history = []
        for token in context:
            self.advance(int(token))

    def fork(self) -> "NgramBackoffLM":
        """Structure-aware deep copy; per-suffix count arrays are copied."""
        if type(self) is not NgramBackoffLM:
            return super().fork()
        fresh = NgramBackoffLM(self.vocab_size, order=self.order, alpha=self.alpha)
        fresh._tables = [
            defaultdict(
                lambda: np.zeros(self.vocab_size, dtype=float),
                ((suffix, counts.copy()) for suffix, counts in table.items()),
            )
            for table in self._tables
        ]
        fresh._history = list(self._history)
        return fresh

    def advance(self, token: int) -> None:
        """Count ``token`` under every suffix order ending here."""
        self._check_token(token)
        history = self._history
        n = len(history)
        for k in range(min(self.order, n) + 1):
            suffix = tuple(history[n - k :]) if k else ()
            self._tables[k][suffix][token] += 1.0
        history.append(token)

    def next_distribution(self) -> np.ndarray:
        """Jelinek–Mercer interpolation from order 0 up to the top order."""
        history = self._history
        n = len(history)
        # Order 0 with a uniform additive prior.
        zero = self._tables[0].get((), np.zeros(self.vocab_size))
        probs = (zero + self.alpha / self.vocab_size) / (zero.sum() + self.alpha)
        for k in range(1, min(self.order, n) + 1):
            suffix = tuple(history[n - k :])
            counts = self._tables[k].get(suffix)
            if counts is None:
                counts = np.zeros(self.vocab_size)
            probs = (counts + self.alpha * probs) / (counts.sum() + self.alpha)
        return probs / probs.sum()

    @classmethod
    def next_distribution_batch(
        cls, models: Sequence["NgramBackoffLM"]
    ) -> np.ndarray:
        """Batched interpolation: gather per-row count vectors, mix as a matrix.

        Requires a homogeneous batch (same class, order, alpha, vocabulary
        and context length — always true for the decode scheduler, whose
        models are lockstep forks of one prefill); anything else falls back
        to stacking per-model calls.  Per-element operation order matches
        the scalar path, so rows are bit-identical.
        """
        first = models[0]
        if (
            any(type(m) is not NgramBackoffLM for m in models)
            or any(m.vocab_size != first.vocab_size for m in models)
            or any(m.order != first.order for m in models)
            or any(m.alpha != first.alpha for m in models)
            or any(len(m._history) != len(first._history) for m in models)
        ):
            return super().next_distribution_batch(models)
        size = first.vocab_size
        alpha = first.alpha
        n = len(first._history)
        empty = np.zeros(size)
        rows = [m._tables[0].get((), empty) for m in models]
        sums = np.array([float(row.sum()) for row in rows])
        probs = (np.stack(rows) + alpha / size) / (sums + alpha)[:, None]
        for k in range(1, min(first.order, n) + 1):
            rows = []
            for model in models:
                suffix = tuple(model._history[n - k :])
                counts = model._tables[k].get(suffix)
                rows.append(empty if counts is None else counts)
            sums = np.array([float(row.sum()) for row in rows])
            probs = (np.stack(rows) + alpha * probs) / (sums + alpha)[:, None]
        totals = np.array([row.sum() for row in probs])
        return probs / totals[:, None]


class UniformLM(LanguageModel):
    """Assigns equal probability to every token, regardless of context."""

    def reset(self, context: Sequence[int]) -> None:
        """Validate the context; a uniform model keeps no state."""
        for token in context:
            self._check_token(int(token))

    def fork(self) -> "UniformLM":
        """Stateless model: a fork is just a fresh instance."""
        if type(self) is not UniformLM:
            return super().fork()
        return UniformLM(self.vocab_size)

    def advance(self, token: int) -> None:
        """Validate the token; nothing to update."""
        self._check_token(token)

    def next_distribution(self) -> np.ndarray:
        """The constant ``1 / vocab_size`` vector."""
        return np.full(self.vocab_size, 1.0 / self.vocab_size)

    @classmethod
    def next_distribution_batch(cls, models: Sequence["UniformLM"]) -> np.ndarray:
        """One constant matrix — the cheapest batched scoring path."""
        first = models[0]
        if any(type(m) is not UniformLM for m in models) or any(
            m.vocab_size != first.vocab_size for m in models
        ):
            return super().next_distribution_batch(models)
        return np.full(
            (len(models), first.vocab_size), 1.0 / first.vocab_size
        )

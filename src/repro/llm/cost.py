"""Per-token latency and pricing model.

The paper's timing results (Tables VII-IX) are driven by token counts: time
doubles when the sample count doubles, and SAX is an order of magnitude
faster because it emits roughly ``1/w`` as many tokens.  Since our substrate
is much faster than a 7B model on a 24-core CPU, each forecast reports both
its real wall time and *simulated seconds* computed here from token counts,
calibrated so the default MultiCast run lands near the paper's ~1000 s.

The cost model also tracks *token usage* for the paper's pricing discussion
("services … usually charge queries by token").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigError

__all__ = ["TokenCostModel"]


@dataclass(frozen=True)
class TokenCostModel:
    """Latency/price accounting for a simulated backend model.

    Parameters
    ----------
    seconds_per_generated_token:
        CPU inference latency per *output* token.  0.5 s/token reproduces the
        paper's ≈1000 s for a 5-sample raw MultiCast run on Gas Rate.
    seconds_per_prompt_token:
        Prompt ingestion cost (prefill is much cheaper than decoding).
    usd_per_1k_tokens:
        A representative hosted-API price used by the token-cost reports.
    """

    seconds_per_generated_token: float = 0.5
    seconds_per_prompt_token: float = 0.002
    usd_per_1k_tokens: float = 0.002

    def __post_init__(self) -> None:
        if self.seconds_per_generated_token < 0:
            raise ConfigError("seconds_per_generated_token must be >= 0")
        if self.seconds_per_prompt_token < 0:
            raise ConfigError("seconds_per_prompt_token must be >= 0")
        if self.usd_per_1k_tokens < 0:
            raise ConfigError("usd_per_1k_tokens must be >= 0")

    def seconds(self, prompt_tokens: int, generated_tokens: int) -> float:
        """Simulated wall-clock seconds for one inference call."""
        return (
            prompt_tokens * self.seconds_per_prompt_token
            + generated_tokens * self.seconds_per_generated_token
        )

    def dollars(self, prompt_tokens: int, generated_tokens: int) -> float:
        """Simulated hosted-API cost for one inference call."""
        return (prompt_tokens + generated_tokens) * self.usd_per_1k_tokens / 1000.0

"""In-context perplexity: scoring backend models without forecasting.

Running a full forecast sweep to pick a backend is expensive; a cheaper,
training-free proxy is the model's *in-context perplexity* on the history
itself — how well the model predicts each next token of the serialised
series given everything before it.  The second half of the series is
scored (the first half is warm-up), matching how in-context competence is
usually probed.

``bits_per_token`` = mean log2 loss; lower is better.  The model-selection
experiment (``bench_model_selection_by_nll``) shows the ranking agrees with
the RMSE ranking of Table III.
"""

from __future__ import annotations

import numpy as np

from repro.encoding import digit_vocabulary, render_token_stream, DigitCodec
from repro.exceptions import DataError
from repro.llm.simulated import get_model
from repro.scaling import FixedDigitScaler

__all__ = ["bits_per_token", "rank_models_by_perplexity"]


def bits_per_token(
    model_name: str,
    series: np.ndarray,
    num_digits: int = 3,
    warmup_fraction: float = 0.5,
) -> float:
    """Mean log2 loss of a backend preset on a serialised series.

    The series is scaled and tokenized exactly as the forecasting pipeline
    would; the model scores tokens after the warm-up prefix.
    """
    values = np.asarray(series, dtype=float)
    if values.ndim != 1 or values.size < 8:
        raise DataError("bits_per_token needs a 1-D series of >= 8 points")
    if not 0.0 < warmup_fraction < 1.0:
        raise DataError(
            f"warmup_fraction must be in (0, 1), got {warmup_fraction}"
        )
    scaler = FixedDigitScaler(num_digits=num_digits).fit(values)
    codec = DigitCodec(num_digits)
    vocabulary = digit_vocabulary()
    tokens = render_token_stream(scaler.transform(values).tolist(), codec)
    ids = vocabulary.encode(tokens)
    split = max(1, int(len(ids) * warmup_fraction))
    model = get_model(model_name, vocab_size=len(vocabulary))
    nll = model.sequence_nll(ids[split:], context=ids[:split])
    return float(nll.mean() / np.log(2.0))


def rank_models_by_perplexity(
    model_names: list[str],
    series: np.ndarray,
    num_digits: int = 3,
) -> list[tuple[str, float]]:
    """Score several presets on one series; best (lowest bits) first."""
    if not model_names:
        raise DataError("need at least one model name")
    scored = [
        (name, bits_per_token(name, series, num_digits=num_digits))
        for name in model_names
    ]
    return sorted(scored, key=lambda pair: pair[1])

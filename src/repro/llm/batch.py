"""Token-level batched decoding for sample ensembles.

MultiCast's point forecast is the per-timestamp median over S i.i.d.
constrained continuations of *one* prompt, so a request decodes S streams
that differ only in their sampling RNG.  The sequential and thread-pooled
paths advance each stream's own token loop — S full passes over the model
per step.  :class:`BatchedDecoder` advances all streams in lockstep
instead (iteration-level batching, as in Orca-style LLM serving): one
vectorised :meth:`~repro.llm.interface.LanguageModel.next_distribution_batch`
call per step scores every live stream, each stream samples from its row
with its own seed-derived generator, and streams that hit their token
budget retire from the batch immediately (no padding waste).

Two substrate properties make this cheap *and* exact:

* **Determinism** — a model's state is a pure function of (prefilled
  prompt + generated tokens), so streams whose generated prefixes are
  equal share bit-identical model state.  The scheduler therefore keeps
  one model per *group* of streams with the same prefix, scoring each
  distinct state once per step and forking (copy-on-write, from PR 3)
  only when sampled tokens split a group.  Early in a decode — and for
  the whole decode at low temperatures — the batch collapses to a
  handful of groups, which is where the ≥3× win over the pooled path
  comes from (see ``benchmarks/bench_batching.py``).
* **Bit-identity** — every stream samples through the same
  :func:`~repro.llm.sampling.sample_from_distribution` routine, with the
  same per-stream generator the sequential path would use, from a
  distribution row that is bit-identical to a per-stream
  ``next_distribution()`` call.  Batched output therefore equals the
  sequential and pooled paths token for token and log-prob for log-prob
  (pinned by ``tests/test_batched_decoding.py`` and the
  ``decode_equivalence`` fuzz family).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.exceptions import GenerationError
from repro.llm.constraints import Constraint
from repro.llm.interface import GenerationResult, LanguageModel
from repro.llm.sampling import filter_distribution, mask_for_ids
from repro.observability.spans import NULL_TRACER

__all__ = ["BatchedDecoder"]


class _Stream:
    """One in-flight sample: its identity, RNG, and token budget."""

    __slots__ = ("index", "rng", "budget")

    def __init__(self, index: int, rng: np.random.Generator, budget: int) -> None:
        self.index = index
        self.rng = rng
        self.budget = budget


class _Group:
    """Streams sharing one generated prefix — and therefore one model."""

    __slots__ = ("model", "streams", "tokens", "log_probs")

    def __init__(
        self,
        model: LanguageModel,
        streams: list[_Stream],
        tokens: list[int],
        log_probs: list[float],
    ) -> None:
        self.model = model
        self.streams = streams
        self.tokens = tokens
        self.log_probs = log_probs


class BatchedDecoder:
    """Lockstep scheduler decoding S streams from one prefilled model.

    Parameters
    ----------
    model:
        A prefilled in-context model (e.g. the ``model`` of a
        :class:`~repro.llm.simulated.PrefilledSession`).  Treated as
        frozen: the decoder forks it once up front and never mutates it,
        so one session can serve many decoders (and other consumers)
        concurrently.
    rngs:
        One :class:`numpy.random.Generator` per stream, in stream order —
        the same seed-derived generators the sequential path would use
        (see :func:`~repro.llm.sampling.child_seeds`).
    max_new_tokens:
        Per-stream token budget: one int shared by all streams, or a
        sequence with one budget per stream.  A stream retires the moment
        its budget is reached.
    constraint, temperature, top_k, top_p:
        As in :meth:`~repro.llm.interface.LanguageModel.decode`, applied
        identically to every stream.  The constraint's admissible mask is
        computed once per step and shared across streams.

    After :meth:`decode`, the instance exposes the run's telemetry:
    ``results`` (per-stream :class:`GenerationResult`, ``None`` for
    streams abandoned by an early stop), ``occupancy`` (live streams per
    step), ``group_counts`` (distinct model states scored per step),
    ``steps`` and ``stopped``.
    """

    def __init__(
        self,
        model: LanguageModel,
        rngs: Sequence[np.random.Generator],
        max_new_tokens: int | Sequence[int],
        constraint: Constraint | None = None,
        temperature: float = 1.0,
        top_k: int | None = None,
        top_p: float | None = None,
    ) -> None:
        if len(rngs) == 0:
            raise GenerationError("a batch needs at least one stream")
        if isinstance(max_new_tokens, (int, np.integer)):
            budgets = [int(max_new_tokens)] * len(rngs)
        else:
            budgets = [int(b) for b in max_new_tokens]
        if len(budgets) != len(rngs):
            raise GenerationError(
                f"{len(rngs)} streams but {len(budgets)} token budgets"
            )
        if any(budget < 0 for budget in budgets):
            raise GenerationError("max_new_tokens must be >= 0 for every stream")
        self._model = model
        self._streams = [
            _Stream(i, rng, budget)
            for i, (rng, budget) in enumerate(zip(rngs, budgets))
        ]
        self._constraint = constraint
        self._temperature = temperature
        self._top_k = top_k
        self._top_p = top_p
        self._mask_cache: dict[frozenset[int], np.ndarray] = {}
        self.batch_width = len(rngs)
        self.results: list[GenerationResult | None] = [None] * len(rngs)
        self.occupancy: list[int] = []
        self.group_counts: list[int] = []
        self.steps = 0
        self.stopped = False

    def _mask_at(self, position: int) -> np.ndarray | None:
        """The step's shared admissibility mask (cached per pattern slot)."""
        if self._constraint is None:
            return None
        allowed = self._constraint.allowed_at(position)
        mask = self._mask_cache.get(allowed)
        if mask is None:
            mask = mask_for_ids(allowed, self._model.vocab_size)
            self._mask_cache[allowed] = mask
        return mask

    def decode(
        self,
        tracer=None,
        stop: Callable[[], bool] | None = None,
        span_attributes: dict | None = None,
    ) -> list[GenerationResult | None]:
        """Run the lockstep loop to completion (or until ``stop`` fires).

        Each step: retire streams whose budget is met, score the distinct
        model states with one ``next_distribution_batch`` call, sample one
        token per live stream from its row with its own RNG, then
        partition each group by sampled token — the first partition keeps
        the group's model (advanced in place), later partitions fork it
        first.  ``stop`` is polled between steps; when it returns True the
        decode aborts, already-retired streams keep their results and
        still-live streams report ``None`` (the engine uses this to honour
        request deadlines with a partial ensemble).

        Emits one ``llm:decode_batch`` span carrying ``batch_width``,
        ``steps``, ``tokens_generated`` and mean occupancy/group counts.
        Returns ``self.results`` (stream order).
        """
        tracer = NULL_TRACER if tracer is None else tracer
        results = self.results
        with tracer.span(
            "llm:decode_batch",
            batch_width=self.batch_width,
            max_new_tokens=max((s.budget for s in self._streams), default=0),
            **(span_attributes or {}),
        ) as span:
            root = _Group(
                model=self._model.fork(),
                streams=list(self._streams),
                tokens=[],
                log_probs=[],
            )
            groups = [root]
            position = 0
            while True:
                live: list[_Group] = []
                for group in groups:
                    keep: list[_Stream] = []
                    for stream in group.streams:
                        if stream.budget <= position:
                            results[stream.index] = GenerationResult(
                                tokens=list(group.tokens),
                                log_probs=list(group.log_probs),
                            )
                        else:
                            keep.append(stream)
                    if keep:
                        group.streams = keep
                        live.append(group)
                groups = live
                if not groups:
                    break
                if stop is not None and stop():
                    self.stopped = True
                    break
                self.occupancy.append(
                    sum(len(group.streams) for group in groups)
                )
                self.group_counts.append(len(groups))
                mask = self._mask_at(position)
                matrix = type(groups[0].model).next_distribution_batch(
                    [group.model for group in groups]
                )
                next_groups: list[_Group] = []
                for row, group in enumerate(groups):
                    # The deterministic filtering half of sampling depends
                    # only on the shared row, so it runs once per group;
                    # each stream then consumes its own RNG exactly as the
                    # sequential path's sample_from_distribution would.
                    p, greedy = filter_distribution(
                        matrix[row],
                        temperature=self._temperature,
                        top_k=self._top_k,
                        top_p=self._top_p,
                        allowed_mask=mask,
                    )
                    size = p.size
                    buckets: dict[int, list[_Stream]] = {}
                    drawn: dict[int, float] = {}
                    for stream in group.streams:
                        if greedy:
                            token = int(np.argmax(p))
                        else:
                            token = int(stream.rng.choice(size, p=p))
                        members = buckets.get(token)
                        if members is None:
                            buckets[token] = [stream]
                            drawn[token] = float(p[token])
                        else:
                            members.append(stream)
                    items = list(buckets.items())
                    # Fork for the later partitions *before* the first one
                    # advances the shared model in place.
                    forks = [group.model] + [
                        group.model.fork() for _ in items[1:]
                    ]
                    for (token, members), model in zip(items, forks):
                        model.advance(token)
                        next_groups.append(
                            _Group(
                                model=model,
                                streams=members,
                                tokens=group.tokens + [token],
                                log_probs=group.log_probs
                                + [float(np.log(max(drawn[token], 1e-300)))],
                            )
                        )
                groups = next_groups
                position += 1
            self.steps = len(self.occupancy)
            if span.is_recording:
                span.set_attribute("steps", self.steps)
                span.set_attribute(
                    "tokens_generated",
                    sum(len(r.tokens) for r in results if r is not None),
                )
                if self.occupancy:
                    span.set_attribute(
                        "mean_occupancy",
                        round(float(np.mean(self.occupancy)), 3),
                    )
                    span.set_attribute(
                        "mean_groups",
                        round(float(np.mean(self.group_counts)), 3),
                    )
                if self.stopped:
                    span.set_attribute("stopped", True)
        return results

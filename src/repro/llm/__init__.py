"""The language-model substrate.

The paper runs LLaMA2-7B and Phi-2 through the Hugging Face API; this
offline reproduction replaces them with from-scratch *in-context* language
models over the same constrained token vocabulary (see DESIGN.md, section 2):

* :class:`~repro.llm.ppm.PPMLanguageModel` — variable-order prediction by
  partial matching, the main stand-in for an LLM's in-context pattern
  induction on numeric token streams;
* :class:`~repro.llm.ngram.NgramBackoffLM` — fixed-order interpolated n-gram;
* :class:`~repro.llm.simulated.SimulatedLLM` — a named wrapper adding the
  sampling profile (temperature/top-p) and a per-token latency model, with
  registry presets ``"llama2-7b-sim"`` and ``"phi2-2.7b-sim"``.

Generation is token-by-token with a hard vocabulary constraint, exactly like
LLMTime's logit mask restricting output to ``[0-9,]``.

Prompt ingest is deterministic, so it is shared rather than repeated:
``LanguageModel.fork()`` snapshots in-context state, ``SimulatedLLM.prefill``
ingests a prompt once per request, and
:class:`~repro.llm.state_cache.IngestStateCache` reuses (and incrementally
extends) prefilled state across requests — the substrate's analogue of
KV-cache prefix reuse.
"""

from repro.llm.interface import GenerationResult, LanguageModel
from repro.llm.batch import BatchedDecoder
from repro.llm.constraints import (
    Constraint,
    PeriodicPatternConstraint,
    SetConstraint,
)
from repro.llm.sampling import (
    child_generators,
    child_seeds,
    filter_distribution,
    mask_for_ids,
    sample_from_distribution,
)
from repro.llm.ctw import CTWLanguageModel
from repro.llm.ppm import PPMLanguageModel
from repro.llm.ngram import NgramBackoffLM, UniformLM
from repro.llm.recency import RecencyPPMLanguageModel
from repro.llm.wrappers import ShiftBiasedLM
from repro.llm.cost import TokenCostModel
from repro.llm.perplexity import bits_per_token, rank_models_by_perplexity
from repro.llm.simulated import (
    ModelSpec,
    PrefilledSession,
    SimulatedLLM,
    available_models,
    get_model,
    register_model,
)
from repro.llm.state_cache import IngestLookup, IngestStateCache

__all__ = [
    "LanguageModel",
    "GenerationResult",
    "Constraint",
    "SetConstraint",
    "PeriodicPatternConstraint",
    "sample_from_distribution",
    "filter_distribution",
    "mask_for_ids",
    "BatchedDecoder",
    "child_seeds",
    "child_generators",
    "PPMLanguageModel",
    "CTWLanguageModel",
    "NgramBackoffLM",
    "UniformLM",
    "RecencyPPMLanguageModel",
    "ShiftBiasedLM",
    "TokenCostModel",
    "bits_per_token",
    "rank_models_by_perplexity",
    "SimulatedLLM",
    "ModelSpec",
    "PrefilledSession",
    "IngestLookup",
    "IngestStateCache",
    "get_model",
    "register_model",
    "available_models",
]

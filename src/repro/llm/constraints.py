"""Logit constraints for structured numeric generation.

LLMTime (and MultiCast after it) masks the model's logits so only digits and
the comma separator can be produced.  Two constraint shapes are provided:

* :class:`SetConstraint` — one fixed admissible set for every position
  (the paper's ``[0-9,]`` mask);
* :class:`PeriodicPatternConstraint` — a cyclic per-position grammar, e.g.
  "b digits then a comma", which guarantees the output parses exactly and is
  what the MultiCast pipeline uses by default.  Turning it off (falling back
  to the plain set mask plus lenient parsing) is the ``bench_ablations``
  ablation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.exceptions import ConfigError

__all__ = ["Constraint", "SetConstraint", "PeriodicPatternConstraint"]


class Constraint(ABC):
    """Maps a generated-token position to the set of admissible ids."""

    @abstractmethod
    def allowed_at(self, position: int) -> frozenset[int]:
        """Admissible token ids at ``position`` (0 = first generated token)."""

    def admits(self, ids: Sequence[int]) -> bool:
        """Whether the grammar admits ``ids`` as a generated stream.

        True iff every token id is in the admissible set of its position —
        the soundness contract the :mod:`repro.fuzz` harness checks against
        demultiplexing: every stream a constraint admits must demux cleanly.
        """
        return all(int(t) in self.allowed_at(p) for p, t in enumerate(ids))


class SetConstraint(Constraint):
    """The same admissible id set at every position."""

    def __init__(self, allowed_ids: Sequence[int] | frozenset[int]) -> None:
        ids = frozenset(int(i) for i in allowed_ids)
        if not ids:
            raise ConfigError("a constraint needs at least one admissible id")
        self._ids = ids

    def allowed_at(self, position: int) -> frozenset[int]:
        """The fixed admissible set, independent of ``position``."""
        return self._ids

    def __repr__(self) -> str:
        return f"SetConstraint({sorted(self._ids)})"


class PeriodicPatternConstraint(Constraint):
    """A cyclic position grammar.

    ``pattern`` lists the admissible set for each position within one period;
    position ``p`` of the generation is constrained by
    ``pattern[(p + phase) % len(pattern)]``.  ``phase`` lets the caller align
    the grammar when the prompt does not end exactly on a period boundary.

    Example — value-concatenation with 3 digits: the pattern is
    ``[digits, digits, digits, {comma}]`` so every fourth token is forced to
    be the separator and each group has exactly three digits.
    """

    def __init__(
        self,
        pattern: Sequence[Sequence[int] | frozenset[int]],
        phase: int = 0,
    ) -> None:
        if len(pattern) == 0:
            raise ConfigError("pattern must contain at least one position")
        self._pattern = [frozenset(int(i) for i in slot) for slot in pattern]
        for i, slot in enumerate(self._pattern):
            if not slot:
                raise ConfigError(f"pattern slot {i} has no admissible ids")
        if phase < 0:
            raise ConfigError(f"phase must be >= 0, got {phase}")
        self._phase = phase % len(self._pattern)

    @property
    def period(self) -> int:
        """Length of one grammar cycle in tokens."""
        return len(self._pattern)

    def allowed_at(self, position: int) -> frozenset[int]:
        """The pattern slot for ``position``, shifted by the phase."""
        if position < 0:
            raise ConfigError(f"position must be >= 0, got {position}")
        return self._pattern[(position + self._phase) % len(self._pattern)]

    def __repr__(self) -> str:
        return (
            f"PeriodicPatternConstraint(period={self.period}, phase={self._phase})"
        )

"""Recency-weighted PPM: decayed continuation counts.

Real LLMs weight recent context more heavily than distant context; plain
PPM counts every historical occurrence equally, so a pattern that changed
mid-series keeps pulling predictions toward its old continuation.
:class:`RecencyPPMLanguageModel` decays each continuation count
exponentially with its age — the weight of an observation ``k`` steps ago
is ``0.5 ** (k / halflife)`` — while keeping the PPM-C escape mechanism
over the *decayed* totals.

Counts are stored in amortised O(1) per observation: each cell keeps an
accumulated decayed weight and the time it was last touched, folding the
decay in lazily on update and on read.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

import numpy as np

from repro.exceptions import GenerationError
from repro.llm.interface import LanguageModel

__all__ = ["RecencyPPMLanguageModel"]


class _DecayedCell:
    """One (suffix, token) weight with lazy exponential decay."""

    __slots__ = ("weight", "touched")

    def __init__(self) -> None:
        self.weight = 0.0
        self.touched = 0

    def bump(self, now: int, gamma: float) -> None:
        self.weight = self.weight * gamma ** (now - self.touched) + 1.0
        self.touched = now

    def value(self, now: int, gamma: float) -> float:
        return self.weight * gamma ** (now - self.touched)


class RecencyPPMLanguageModel(LanguageModel):
    """Variable-order PPM with exponentially decayed counts.

    Parameters
    ----------
    vocab_size, max_order, uniform_floor:
        As in :class:`~repro.llm.ppm.PPMLanguageModel`.
    halflife:
        Age (in tokens) at which an observation's weight halves.  Large
        halflives converge to plain PPM; short ones track regime changes.
    """

    def __init__(
        self,
        vocab_size: int,
        max_order: int = 8,
        halflife: float = 500.0,
        uniform_floor: float = 1e-3,
    ) -> None:
        super().__init__(vocab_size)
        if max_order < 0:
            raise GenerationError(f"max_order must be >= 0, got {max_order}")
        if halflife <= 0:
            raise GenerationError(f"halflife must be > 0, got {halflife}")
        if not 0.0 < uniform_floor < 1.0:
            raise GenerationError(
                f"uniform_floor must be in (0, 1), got {uniform_floor}"
            )
        self.max_order = max_order
        self.halflife = halflife
        self.uniform_floor = uniform_floor
        self._gamma = 0.5 ** (1.0 / halflife)
        self._tables: list[dict[tuple[int, ...], dict[int, _DecayedCell]]] = []
        self._history: list[int] = []

    def reset(self, context: Sequence[int]) -> None:
        self._tables = [
            defaultdict(dict) for _ in range(self.max_order + 1)
        ]
        self._history = []
        for token in context:
            self.advance(int(token))

    def advance(self, token: int) -> None:
        self._check_token(token)
        history = self._history
        n = len(history)
        for k in range(min(self.max_order, n) + 1):
            suffix = tuple(history[n - k :]) if k else ()
            cells = self._tables[k][suffix]
            cell = cells.get(token)
            if cell is None:
                cell = _DecayedCell()
                cells[token] = cell
            cell.bump(n, self._gamma)
        history.append(token)

    def next_distribution(self) -> np.ndarray:
        history = self._history
        now = len(history)
        result = np.zeros(self.vocab_size, dtype=float)
        weight = 1.0

        for k in range(min(self.max_order, now), -1, -1):
            suffix = tuple(history[now - k :]) if k else ()
            cells = self._tables[k].get(suffix)
            if not cells:
                continue
            values = {
                token: cell.value(now, self._gamma)
                for token, cell in cells.items()
            }
            total = sum(values.values())
            if total <= 0.0:
                continue
            distinct = len(values)
            denom = total + distinct
            for token, value in values.items():
                result[token] += weight * value / denom
            weight *= distinct / denom
            if weight < 1e-12:
                break

        floor_weight = max(weight, self.uniform_floor)
        result += floor_weight / self.vocab_size
        return result / result.sum()

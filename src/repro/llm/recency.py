"""Recency-weighted PPM: decayed continuation counts.

Real LLMs weight recent context more heavily than distant context; plain
PPM counts every historical occurrence equally, so a pattern that changed
mid-series keeps pulling predictions toward its old continuation.
:class:`RecencyPPMLanguageModel` decays each continuation count
exponentially with its age — the weight of an observation ``k`` steps ago
is ``0.5 ** (k / halflife)`` — while keeping the PPM-C escape mechanism
over the *decayed* totals.

Counts are stored in amortised O(1) per observation: each cell keeps an
accumulated decayed weight and the time it was last touched, folding the
decay in lazily on update and on read.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import GenerationError
from repro.llm.interface import LanguageModel

__all__ = ["RecencyPPMLanguageModel"]


class _DecayedCell:
    """One (suffix, token) weight with lazy exponential decay."""

    __slots__ = ("weight", "touched")

    def __init__(self) -> None:
        self.weight = 0.0
        self.touched = 0

    def bump(self, now: int, gamma: float) -> None:
        self.weight = self.weight * gamma ** (now - self.touched) + 1.0
        self.touched = now

    def value(self, now: int, gamma: float) -> float:
        return self.weight * gamma ** (now - self.touched)

    def clone(self) -> "_DecayedCell":
        cell = _DecayedCell()
        cell.weight = self.weight
        cell.touched = self.touched
        return cell


class _DecayedCounts:
    """Decayed cells for one context order: suffix-tuple -> token -> cell.

    Cloning is copy-on-write, mirroring the plain PPM tables: a clone
    shares the parent's per-suffix cell dicts and privatises one (cloning
    its handful of cells) only when it is first written afterwards, so
    forking is a single shallow dict copy per order.  ``_owned`` is
    ``None`` until the first clone and afterwards holds the suffixes whose
    cell dicts this instance owns.
    """

    __slots__ = ("table", "_owned")

    def __init__(self) -> None:
        self.table: dict[tuple[int, ...], dict[int, _DecayedCell]] = {}
        self._owned: set[tuple[int, ...]] | None = None

    def cells_for_write(self, suffix: tuple[int, ...]) -> dict[int, _DecayedCell]:
        """The suffix's cell dict, privatised if it is still shared."""
        table = self.table
        cells = table.get(suffix)
        owned = self._owned
        if cells is None:
            cells = table[suffix] = {}
            if owned is not None:
                owned.add(suffix)
        elif owned is not None and suffix not in owned:
            cells = table[suffix] = {
                token: cell.clone() for token, cell in cells.items()
            }
            owned.add(suffix)
        return cells

    def get(self, suffix: tuple[int, ...]) -> dict[int, _DecayedCell] | None:
        """Read-only view of the suffix's cells (may be shared — no bumps)."""
        return self.table.get(suffix)

    def clone(self) -> "_DecayedCounts":
        """A copy sharing cell dicts until either side writes to one."""
        fresh = _DecayedCounts()
        fresh.table = dict(self.table)
        fresh._owned = set()
        self._owned = set()
        return fresh


class RecencyPPMLanguageModel(LanguageModel):
    """Variable-order PPM with exponentially decayed counts.

    Parameters
    ----------
    vocab_size, max_order, uniform_floor:
        As in :class:`~repro.llm.ppm.PPMLanguageModel`.
    halflife:
        Age (in tokens) at which an observation's weight halves.  Large
        halflives converge to plain PPM; short ones track regime changes.
    """

    def __init__(
        self,
        vocab_size: int,
        max_order: int = 8,
        halflife: float = 500.0,
        uniform_floor: float = 1e-3,
    ) -> None:
        super().__init__(vocab_size)
        if max_order < 0:
            raise GenerationError(f"max_order must be >= 0, got {max_order}")
        if halflife <= 0:
            raise GenerationError(f"halflife must be > 0, got {halflife}")
        if not 0.0 < uniform_floor < 1.0:
            raise GenerationError(
                f"uniform_floor must be in (0, 1), got {uniform_floor}"
            )
        self.max_order = max_order
        self.halflife = halflife
        self.uniform_floor = uniform_floor
        self._gamma = 0.5 ** (1.0 / halflife)
        self._tables: list[_DecayedCounts] = []
        self._history: list[int] = []

    def reset(self, context: Sequence[int]) -> None:
        """Drop all decayed counts and ingest ``context``."""
        self._tables = [_DecayedCounts() for _ in range(self.max_order + 1)]
        self._history = []
        for token in context:
            self.advance(int(token))

    def fork(self) -> "RecencyPPMLanguageModel":
        """Copy-on-write fork: decayed cells are shared until written.

        One shallow dict copy per order; a later bump on either side
        privatises just the touched suffix's cells, so parent and fork
        never observe each other's decay updates.  Subclasses keep the
        base deepcopy (their extra state is unknown here).
        """
        if type(self) is not RecencyPPMLanguageModel:
            return super().fork()
        fresh = RecencyPPMLanguageModel(
            self.vocab_size,
            max_order=self.max_order,
            halflife=self.halflife,
            uniform_floor=self.uniform_floor,
        )
        fresh._tables = [table.clone() for table in self._tables]
        fresh._history = list(self._history)
        return fresh

    def advance(self, token: int) -> None:
        """Bump the decayed continuation weight at every suffix order."""
        self._check_token(token)
        history = self._history
        n = len(history)
        for k in range(min(self.max_order, n) + 1):
            suffix = tuple(history[n - k :]) if k else ()
            cells = self._tables[k].cells_for_write(suffix)
            cell = cells.get(token)
            if cell is None:
                cell = _DecayedCell()
                cells[token] = cell
            cell.bump(n, self._gamma)
        history.append(token)

    def _escape_cascade(self, result: np.ndarray) -> float:
        """Accumulate every order's decayed counts into ``result``; return
        the escape weight left for the uniform floor."""
        history = self._history
        now = len(history)
        weight = 1.0
        for k in range(min(self.max_order, now), -1, -1):
            suffix = tuple(history[now - k :]) if k else ()
            cells = self._tables[k].get(suffix)
            if not cells:
                continue
            values = {
                token: cell.value(now, self._gamma)
                for token, cell in cells.items()
            }
            total = sum(values.values())
            if total <= 0.0:
                continue
            distinct = len(values)
            denom = total + distinct
            for token, value in values.items():
                result[token] += weight * value / denom
            weight *= distinct / denom
            if weight < 1e-12:
                break
        return weight

    def next_distribution(self) -> np.ndarray:
        """PPM-C escape cascade over decayed (recency-weighted) counts."""
        result = np.zeros(self.vocab_size, dtype=float)
        weight = self._escape_cascade(result)
        floor_weight = max(weight, self.uniform_floor)
        result += floor_weight / self.vocab_size
        return result / result.sum()

    @classmethod
    def next_distribution_batch(
        cls, models: Sequence["RecencyPPMLanguageModel"]
    ) -> np.ndarray:
        """Batched scoring: per-row decayed cascades, vectorised floor tail.

        Rows are bit-identical to per-model :meth:`next_distribution`
        calls — the cascade (sparse dict walks) runs per model, the uniform
        floor and normalisation run once over the ``(S, V)`` matrix with
        the scalar path's per-element operation order preserved.
        """
        if any(type(m) is not RecencyPPMLanguageModel for m in models):
            return super().next_distribution_batch(models)
        size = models[0].vocab_size
        if any(model.vocab_size != size for model in models):
            return super().next_distribution_batch(models)
        result = np.zeros((len(models), size), dtype=float)
        weights = np.empty(len(models), dtype=float)
        for i, model in enumerate(models):
            weights[i] = model._escape_cascade(result[i])
        floors = np.array([model.uniform_floor for model in models])
        floor_weights = np.maximum(weights, floors)
        result += floor_weights[:, None] / size
        sums = np.array([row.sum() for row in result])
        result /= sums[:, None]
        return result

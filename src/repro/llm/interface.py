"""Abstract interface all language models in the substrate implement.

Models are *in-context*: they carry no trained weights, only structure built
from the prompt itself (this is the zero-shot setting — the only "training
data" is the serialised history).  The contract mirrors what MultiCast needs
from a Hugging Face model: next-token distributions over a fixed corpus-id
space, autoregressive constrained sampling, and sequence log-likelihoods.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import GenerationError
from repro.llm.constraints import Constraint
from repro.llm.sampling import sample_from_distribution
from repro.observability.spans import NULL_TRACER

__all__ = ["LanguageModel", "GenerationResult"]


@dataclass
class GenerationResult:
    """A sampled continuation plus accounting the cost model needs."""

    tokens: list[int]
    log_probs: list[float] = field(default_factory=list)

    @property
    def total_log_prob(self) -> float:
        """Sum of the per-token sampling log-probabilities."""
        return float(sum(self.log_probs))

    def __len__(self) -> int:
        return len(self.tokens)


class LanguageModel(ABC):
    """Autoregressive model over a dense corpus-id vocabulary.

    Subclasses implement the incremental session protocol:
    :meth:`reset` ingests a prompt, :meth:`next_distribution` returns the
    distribution for the next position, and :meth:`advance` feeds one more
    token (model output or forced).  The base class builds :meth:`generate`
    and :meth:`sequence_nll` on top of that protocol.
    """

    def __init__(self, vocab_size: int) -> None:
        if vocab_size < 2:
            raise GenerationError(f"vocab_size must be >= 2, got {vocab_size}")
        self.vocab_size = vocab_size

    @abstractmethod
    def reset(self, context: Sequence[int]) -> None:
        """Start a new session conditioned on ``context``."""

    @abstractmethod
    def next_distribution(self) -> np.ndarray:
        """Probability vector (sums to 1) for the next token."""

    @abstractmethod
    def advance(self, token: int) -> None:
        """Append ``token`` to the session and update internal structure."""

    @classmethod
    def next_distribution_batch(
        cls, models: Sequence["LanguageModel"]
    ) -> np.ndarray:
        """Next-token distributions for several models as an ``(S, V)`` matrix.

        Row ``i`` is bit-identical to ``models[i].next_distribution()`` —
        that is the contract the batched decode scheduler
        (:class:`repro.llm.batch.BatchedDecoder`) relies on to stay
        deterministic with respect to the sequential path.  The base
        implementation simply stacks per-model calls; substrates with a
        vectorisable scoring tail (PPM, recency PPM, n-gram, uniform,
        shift-biased) override it to share work across rows, falling back
        to stacking whenever the batch mixes model types or parameters.
        """
        if not models:
            raise GenerationError("next_distribution_batch needs >= 1 model")
        return np.stack([model.next_distribution() for model in models])

    def fork(self) -> "LanguageModel":
        """A deep, independent copy of the current in-context state.

        Ingest is deterministic, so ``fork()`` after ingesting a prompt
        yields a model whose :meth:`next_distribution` and sampling
        behaviour are bit-identical to a fresh :meth:`reset` on the same
        prompt — without re-paying the O(n · order) ingest cost.  Mutating
        the fork (via :meth:`advance` / :meth:`generate`) never leaks back
        into the parent, and forking a frozen parent is thread-safe (it
        only reads), which is what lets one shared prefill serve a whole
        sample ensemble concurrently.

        The default implementation is a :func:`copy.deepcopy`; concrete
        models override it with structure-aware copies that are much
        faster than re-ingesting the prompt.
        """
        return copy.deepcopy(self)

    def _check_token(self, token: int) -> None:
        if not 0 <= token < self.vocab_size:
            raise GenerationError(
                f"token id {token} outside vocabulary of size {self.vocab_size}"
            )

    def generate(
        self,
        context: Sequence[int],
        max_new_tokens: int,
        rng: np.random.Generator,
        constraint: Constraint | None = None,
        temperature: float = 1.0,
        top_k: int | None = None,
        top_p: float | None = None,
        tracer=None,
    ) -> GenerationResult:
        """Sample a constrained continuation of ``context``.

        ``constraint`` restricts the admissible ids at each generated
        position (position 0 = first new token), reproducing the paper's
        "model's output is limited to producing only digits and commas".

        ``tracer`` splits the draw into an ``llm:ingest`` span (prompt →
        in-context structure; cost scales with context length) and an
        ``llm:decode`` span (the constrained sampling loop; cost scales
        with ``max_new_tokens``) — the two phases whose balance shifts
        between raw-digit and SAX pipelines.
        """
        if max_new_tokens < 0:
            raise GenerationError(f"max_new_tokens must be >= 0, got {max_new_tokens}")
        tracer = NULL_TRACER if tracer is None else tracer
        with tracer.span(
            "llm:ingest",
            context_tokens=len(context),
            ingested_tokens=len(context),
            ingest="miss",
        ):
            self.reset(context)
        return self.decode(
            max_new_tokens,
            rng,
            constraint=constraint,
            temperature=temperature,
            top_k=top_k,
            top_p=top_p,
            tracer=tracer,
        )

    def decode(
        self,
        max_new_tokens: int,
        rng: np.random.Generator,
        constraint: Constraint | None = None,
        temperature: float = 1.0,
        top_k: int | None = None,
        top_p: float | None = None,
        tracer=None,
    ) -> GenerationResult:
        """Sample ``max_new_tokens`` from the *current* session state.

        This is :meth:`generate` without the ingest phase: the session must
        already be conditioned (by :meth:`reset`, :meth:`advance`, or by
        :meth:`fork`-ing a prefilled model).  The fork-after-prefill hot
        path ingests a prompt once and calls ``decode`` on a fresh fork per
        sample, which is bit-identical to a full :meth:`generate` per
        sample under the same RNG state.
        """
        if max_new_tokens < 0:
            raise GenerationError(f"max_new_tokens must be >= 0, got {max_new_tokens}")
        tracer = NULL_TRACER if tracer is None else tracer
        tokens: list[int] = []
        log_probs: list[float] = []
        with tracer.span("llm:decode", max_new_tokens=max_new_tokens) as span:
            for position in range(max_new_tokens):
                probs = self.next_distribution()
                allowed = constraint.allowed_at(position) if constraint else None
                token, prob = sample_from_distribution(
                    probs,
                    rng,
                    temperature=temperature,
                    top_k=top_k,
                    top_p=top_p,
                    allowed_ids=allowed,
                )
                tokens.append(token)
                log_probs.append(float(np.log(max(prob, 1e-300))))
                self.advance(token)
            span.set_attribute("tokens_generated", len(tokens))
        return GenerationResult(tokens=tokens, log_probs=log_probs)

    def sequence_nll(
        self,
        tokens: Sequence[int],
        context: Sequence[int] = (),
    ) -> np.ndarray:
        """Per-token negative log-likelihood of ``tokens`` after ``context``.

        The anomaly-detection extension scores timestamps by this quantity:
        a value the in-context model finds surprising gets a high NLL.
        """
        self.reset(context)
        nll = np.empty(len(tokens), dtype=float)
        for i, token in enumerate(tokens):
            self._check_token(int(token))
            probs = self.next_distribution()
            nll[i] = -float(np.log(max(probs[int(token)], 1e-300)))
            self.advance(int(token))
        return nll

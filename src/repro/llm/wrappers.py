"""Model wrappers that modify a base LM's next-token distribution.

:class:`ShiftBiasedLM` mixes part of the base distribution's probability
mass one *value token* upward (digit ``d`` → ``d+1``, SAX symbol ``s`` →
the next interval).  At the most-significant digit position this produces a
systematic upward offset of the decoded values — precisely the failure mode
the paper observes for Phi-2 (Fig. 2b: "its entire output is shifted 1 to 2
units on the y-axis" while still tracking the trend).  The separator token
(always the last corpus id) is never disturbed, so streams stay well-formed.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import GenerationError
from repro.llm.interface import LanguageModel

__all__ = ["ShiftBiasedLM"]


class ShiftBiasedLM(LanguageModel):
    """Delegate to ``base`` but lean the sampled values one step upward.

    Parameters
    ----------
    base:
        The wrapped in-context model (consumes the same vocabulary).
    shift_weight:
        Fraction of each value token's probability mass moved upward.  The
        separator id (``vocab_size - 1``) is left untouched.
    shift_steps:
        How many value ids the mass moves (clamped at the top value id).
        The expected decoded offset per digit is ``shift_weight * shift_steps``.
    """

    def __init__(
        self,
        base: LanguageModel,
        shift_weight: float = 0.3,
        shift_steps: int = 1,
    ) -> None:
        super().__init__(base.vocab_size)
        if not 0.0 <= shift_weight < 1.0:
            raise GenerationError(
                f"shift_weight must be in [0, 1), got {shift_weight}"
            )
        if shift_steps < 1:
            raise GenerationError(f"shift_steps must be >= 1, got {shift_steps}")
        self.base = base
        self.shift_weight = shift_weight
        self.shift_steps = shift_steps

    def reset(self, context: Sequence[int]) -> None:
        """Delegate ingest to the wrapped model."""
        self.base.reset(context)

    def fork(self) -> "ShiftBiasedLM":
        """Fork the wrapped model and re-wrap it with the same bias."""
        if type(self) is not ShiftBiasedLM:
            return super().fork()
        return ShiftBiasedLM(
            self.base.fork(),
            shift_weight=self.shift_weight,
            shift_steps=self.shift_steps,
        )

    def advance(self, token: int) -> None:
        """Delegate the observation to the wrapped model."""
        self.base.advance(token)

    def next_distribution(self) -> np.ndarray:
        """The wrapped distribution with mass leaned one value step upward."""
        probs = self.base.next_distribution().copy()
        last_value = self.vocab_size - 2  # ids [0, last_value] are values
        if last_value < 1:
            return probs
        moved = self.shift_weight * probs[: last_value + 1]
        probs[: last_value + 1] -= moved
        targets = np.minimum(
            np.arange(last_value + 1) + self.shift_steps, last_value
        )
        np.add.at(probs, targets, moved)
        return probs / probs.sum()

    @classmethod
    def next_distribution_batch(cls, models: Sequence["ShiftBiasedLM"]) -> np.ndarray:
        """Batched bias: score the wrapped models in batch, shift row-wise.

        The wrapped models are scored through *their* class's
        ``next_distribution_batch`` (so a PPM base keeps its vectorised
        tail) and the upward lean is applied to the whole matrix at once.
        Heterogeneous batches fall back to stacking.  ``np.add.at`` visits
        a matrix in row-major order, so duplicate shift targets accumulate
        per row exactly as in the scalar path — rows stay bit-identical.
        """
        first = models[0]
        base_cls = type(first.base)
        if (
            any(type(m) is not ShiftBiasedLM for m in models)
            or any(type(m.base) is not base_cls for m in models)
            or any(m.vocab_size != first.vocab_size for m in models)
            or any(m.shift_weight != first.shift_weight for m in models)
            or any(m.shift_steps != first.shift_steps for m in models)
        ):
            return super().next_distribution_batch(models)
        probs = base_cls.next_distribution_batch([m.base for m in models])
        last_value = first.vocab_size - 2  # ids [0, last_value] are values
        if last_value < 1:
            return probs
        moved = first.shift_weight * probs[:, : last_value + 1]
        probs[:, : last_value + 1] -= moved
        targets = np.minimum(
            np.arange(last_value + 1) + first.shift_steps, last_value
        )
        rows = np.arange(len(models))[:, None]
        np.add.at(probs, (rows, targets[None, :]), moved)
        sums = np.array([row.sum() for row in probs])
        return probs / sums[:, None]

"""Prediction by Partial Matching (PPM) — the main LLM stand-in.

Zero-shot LLM forecasting works because an LLM continues the repetitive
structure of the numeric token stream it is shown (the LLMTime argument that
digit-by-digit prediction follows a multimodal distribution the model infers
in context).  PPM performs precisely that in-context induction: it predicts
the next token from counts gathered over the prompt itself, preferring the
longest context suffix that has been seen before and *escaping* to shorter
suffixes when the long one is uninformative.

This implementation uses the PPM-C escape estimator without exclusion:

    P_k(t | s_k)   = c(s_k t) / (c(s_k) + d(s_k))
    P_esc(s_k)     = d(s_k)   / (c(s_k) + d(s_k))

where ``s_k`` is the length-``k`` suffix, ``c`` are continuation counts and
``d`` the number of distinct continuations.  Probability mass cascades from
order ``max_order`` down to order 0 and finally a uniform floor, so every
token always has non-zero probability.

The context index is *incremental*: ingesting the prompt is O(n · max_order)
dictionary updates and every generated token costs O(max_order), which keeps
full benchmark sweeps fast.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import GenerationError
from repro.llm.interface import LanguageModel

__all__ = ["PPMLanguageModel"]


class _ContextCounts:
    """Continuation counts for one context order: suffix-tuple -> counts.

    Cloning is copy-on-write: a clone shares the parent's per-suffix count
    dicts and copies one only when it is first mutated afterwards.  That
    makes :meth:`clone` a single C-level shallow dict copy — O(1) per entry
    instead of O(tokens) — which is what keeps fork-after-prefill cheap,
    while a decode that advances ``m`` tokens privatises only the ``m ×
    max_order`` entries it actually touches.  ``_owned`` is ``None`` until
    the first clone (never-forked models skip the ownership check entirely)
    and afterwards holds the suffixes whose count dicts this instance owns.
    """

    __slots__ = ("table", "_owned")

    def __init__(self) -> None:
        self.table: dict[tuple[int, ...], dict[int, int]] = {}
        self._owned: set[tuple[int, ...]] | None = None

    def observe(self, suffix: tuple[int, ...], token: int) -> None:
        table = self.table
        counts = table.get(suffix)
        owned = self._owned
        if counts is None:
            counts = table[suffix] = {}
            if owned is not None:
                owned.add(suffix)
        elif owned is not None and suffix not in owned:
            counts = table[suffix] = dict(counts)
            owned.add(suffix)
        counts[token] = counts.get(token, 0) + 1

    def get(self, suffix: tuple[int, ...]) -> dict[int, int] | None:
        return self.table.get(suffix)

    def clone(self) -> "_ContextCounts":
        """An independent copy sharing count dicts until either side writes.

        Both parent and clone drop ownership of every shared entry, so
        mutation on *either* side privatises before writing — the two never
        observe each other's updates.
        """
        fresh = _ContextCounts()
        fresh.table = dict(self.table)
        fresh._owned = set()
        self._owned = set()
        return fresh


class PPMLanguageModel(LanguageModel):
    """Variable-order PPM model over a dense corpus-id vocabulary.

    Parameters
    ----------
    vocab_size:
        Size of the corpus-id space (digits + separator, or SAX symbols).
    max_order:
        Longest context suffix considered.  This is the model-capacity knob
        that differentiates the simulated LLaMA2 and Phi-2 presets.
    uniform_floor:
        Weight left for the uniform distribution after the order-0 escape —
        keeps the model proper and mildly exploratory.
    """

    def __init__(
        self,
        vocab_size: int,
        max_order: int = 8,
        uniform_floor: float = 1e-3,
    ) -> None:
        super().__init__(vocab_size)
        if max_order < 0:
            raise GenerationError(f"max_order must be >= 0, got {max_order}")
        if not 0.0 < uniform_floor < 1.0:
            raise GenerationError(
                f"uniform_floor must be in (0, 1), got {uniform_floor}"
            )
        self.max_order = max_order
        self.uniform_floor = uniform_floor
        self._orders: list[_ContextCounts] = []
        self._zero_counts = np.zeros(vocab_size, dtype=float)
        self._history: list[int] = []

    # -- session protocol ---------------------------------------------------

    def reset(self, context: Sequence[int]) -> None:
        """Rebuild the context index from scratch and ingest ``context``."""
        self._orders = [_ContextCounts() for _ in range(self.max_order + 1)]
        self._zero_counts = np.zeros(self.vocab_size, dtype=float)
        self._history = []
        for token in context:
            self.advance(int(token))

    def fork(self) -> "PPMLanguageModel":
        """Copy-on-write fork: per-order tables share counts until written.

        Orders of magnitude faster than re-ingesting the prompt (one
        shallow dict copy per order instead of per-token Python suffix
        updates), and observationally independent — writes on either side
        privatise the touched entry first, so the continuation counts of
        parent and fork never influence each other.  Subclasses keep the
        base deepcopy (their extra state is unknown here).
        """
        if type(self) is not PPMLanguageModel:
            return super().fork()
        fresh = PPMLanguageModel(
            self.vocab_size,
            max_order=self.max_order,
            uniform_floor=self.uniform_floor,
        )
        fresh._orders = [order.clone() for order in self._orders]
        fresh._zero_counts = self._zero_counts.copy()
        fresh._history = list(self._history)
        return fresh

    def advance(self, token: int) -> None:
        """Record ``token``'s continuation at every suffix order."""
        self._check_token(token)
        history = self._history
        n = len(history)
        # Record the continuation for every suffix order ending here.
        self._zero_counts[token] += 1.0
        for k in range(1, min(self.max_order, n) + 1):
            suffix = tuple(history[n - k :])
            self._orders[k].observe(suffix, token)
        history.append(token)

    def _escape_cascade(self, result: np.ndarray) -> float:
        """Accumulate orders ``max_order..1`` into ``result``; return the
        escape weight left for the order-0/uniform tail."""
        history = self._history
        n = len(history)
        weight = 1.0
        for k in range(min(self.max_order, n), 0, -1):
            suffix = tuple(history[n - k :])
            counts = self._orders[k].get(suffix)
            if not counts:
                continue
            total = sum(counts.values())
            distinct = len(counts)
            denom = total + distinct
            for token, count in counts.items():
                result[token] += weight * count / denom
            weight *= distinct / denom
            if weight < 1e-12:
                break
        return weight

    def _order0_tail(self, result: np.ndarray, weight: float) -> np.ndarray:
        """Order-0 unigram escape plus the uniform floor and normalisation."""
        total0 = float(self._zero_counts.sum())
        if total0 > 0.0:
            distinct0 = float(np.count_nonzero(self._zero_counts))
            denom0 = total0 + distinct0
            result += weight * self._zero_counts / denom0
            weight *= distinct0 / denom0
        floor_weight = max(weight, self.uniform_floor)
        result += floor_weight / self.vocab_size
        return result / result.sum()

    def next_distribution(self) -> np.ndarray:
        """PPM-C escape cascade from the longest matching suffix down."""
        result = np.zeros(self.vocab_size, dtype=float)
        weight = self._escape_cascade(result)
        return self._order0_tail(result, weight)

    @classmethod
    def next_distribution_batch(
        cls, models: Sequence["PPMLanguageModel"]
    ) -> np.ndarray:
        """Batched PPM scoring: per-row escape cascades, vectorised tail.

        The sparse high-order cascade stays per-model (it touches only the
        few counts behind the current suffix), while the dense order-0 /
        uniform-floor / normalisation tail — the bulk of the per-call numpy
        work — runs once over the whole ``(S, V)`` matrix.  Every operation
        keeps the per-element order of the scalar path, so rows are
        bit-identical to per-model :meth:`next_distribution` calls.
        """
        if any(type(model) is not PPMLanguageModel for model in models):
            return super().next_distribution_batch(models)
        size = models[0].vocab_size
        if any(model.vocab_size != size for model in models):
            return super().next_distribution_batch(models)
        result = np.zeros((len(models), size), dtype=float)
        weights = np.empty(len(models), dtype=float)
        for i, model in enumerate(models):
            weights[i] = model._escape_cascade(result[i])
        totals = np.array([float(m._zero_counts.sum()) for m in models])
        if not np.all(totals > 0.0):
            # Empty-context rows take the scalar tail (rare outside tests).
            for i, model in enumerate(models):
                result[i] = model._order0_tail(result[i], float(weights[i]))
            return result
        zeros = np.stack([model._zero_counts for model in models])
        distincts = np.array(
            [float(np.count_nonzero(m._zero_counts)) for m in models]
        )
        denoms = totals + distincts
        result += weights[:, None] * zeros / denoms[:, None]
        weights = weights * (distincts / denoms)
        floors = np.array([model.uniform_floor for model in models])
        floor_weights = np.maximum(weights, floors)
        result += floor_weights[:, None] / size
        sums = np.array([row.sum() for row in result])
        result /= sums[:, None]
        return result

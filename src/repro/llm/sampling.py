"""Sampling from a next-token distribution with the usual LLM knobs.

Order of operations mirrors Hugging Face's ``generate``: constrain (logit
mask), temperature, top-k, then top-p (nucleus), renormalising after each
filter.  If masking leaves no probability mass, sampling falls back to a
uniform distribution over the admissible ids — the constrained equivalent of
an untrained model, never an error.

Thread-safety: nothing in this module touches NumPy's legacy global RNG
(``np.random.seed``/``np.random.rand``); every draw goes through an explicit
``numpy.random.Generator`` owned by the caller.  Callers that fan sample
draws out across worker threads must give each worker its *own* generator —
:func:`child_seeds` derives a deterministic, order-independent seed per
worker from one base generator so parallel execution reproduces sequential
execution exactly.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.exceptions import GenerationError

__all__ = [
    "sample_from_distribution",
    "filter_distribution",
    "mask_for_ids",
    "child_seeds",
    "child_generators",
]


def child_seeds(rng: np.random.Generator, n: int) -> list[int]:
    """Derive ``n`` independent child seeds from one base generator.

    The seeds are drawn sequentially *up front*, so work parameterised by
    them can execute in any order (or concurrently) and still be
    deterministic under the base seed.  This is the same derivation the
    sequential pipeline has always used (one ``integers(2**63)`` per
    sample), just hoisted out of the draw loop.
    """
    if n < 0:
        raise GenerationError(f"cannot derive {n} child seeds")
    return [int(rng.integers(2**63)) for _ in range(n)]


def child_generators(
    rng: np.random.Generator, n: int
) -> list[np.random.Generator]:
    """``n`` independent generators, one per worker/sample (see child_seeds)."""
    return [np.random.default_rng(seed) for seed in child_seeds(rng, n)]


def mask_for_ids(allowed_ids: Iterable[int], size: int) -> np.ndarray:
    """Boolean admissibility mask over a vocabulary of ``size`` ids.

    Precomputing the mask once per constraint position and passing it as
    ``allowed_mask`` lets a batched decoder share one mask across every
    stream of a step instead of rebuilding it per draw; the mask is
    numerically interchangeable with passing ``allowed_ids`` directly.
    """
    mask = np.zeros(size, dtype=bool)
    ids = np.fromiter((int(i) for i in allowed_ids), dtype=int)
    if ids.size == 0:
        raise GenerationError("allowed_ids is empty")
    if ids.min() < 0 or ids.max() >= size:
        raise GenerationError("allowed_ids outside the vocabulary")
    mask[ids] = True
    return mask


def filter_distribution(
    probs: np.ndarray,
    temperature: float = 1.0,
    top_k: int | None = None,
    top_p: float | None = None,
    allowed_ids: Iterable[int] | None = None,
    allowed_mask: np.ndarray | None = None,
) -> tuple[np.ndarray, bool]:
    """The final sampling distribution after constrain/temperature/k/p.

    Returns ``(p, greedy)``: the filtered, renormalised probability vector
    and whether a denormal-or-zero temperature calls for greedy argmax
    decoding (in which case ``p`` is the pre-temperature distribution, as
    in :func:`sample_from_distribution`'s greedy branch).

    This is the deterministic half of :func:`sample_from_distribution` —
    everything except the RNG draw.  The batched decode scheduler computes
    it once per group of identical streams and draws each stream's token
    from the shared result, which consumes every stream's generator
    exactly as the sequential path does.
    """
    p = np.asarray(probs, dtype=float)
    if p.ndim != 1:
        raise GenerationError(f"expected a 1-D probability vector, got {p.shape}")
    if temperature < 0:
        raise GenerationError(f"temperature must be >= 0, got {temperature}")
    if top_k is not None and top_k < 1:
        raise GenerationError(f"top_k must be >= 1, got {top_k}")
    if top_p is not None and not 0.0 < top_p <= 1.0:
        raise GenerationError(f"top_p must be in (0, 1], got {top_p}")

    p = np.clip(p, 0.0, None)

    mask = None
    if allowed_mask is not None:
        mask = np.asarray(allowed_mask, dtype=bool)
        if mask.shape != p.shape:
            raise GenerationError(
                f"allowed_mask shape {mask.shape} does not match {p.shape}"
            )
        if not mask.any():
            raise GenerationError("allowed_mask admits no ids")
    elif allowed_ids is not None:
        mask = mask_for_ids(allowed_ids, p.size)
    if mask is not None:
        p = np.where(mask, p, 0.0)
        if p.sum() <= 0.0:
            p = mask.astype(float)  # uniform over the admissible set

    if p.sum() <= 0.0:
        raise GenerationError("distribution has no probability mass")
    p = p / p.sum()

    if temperature < 1e-6:
        # Exactly-zero and denormal temperatures both mean greedy decoding
        # (dividing log-probabilities by a denormal would overflow).
        return p, True
    if temperature != 1.0:
        with np.errstate(divide="ignore"):
            logp = np.where(p > 0.0, np.log(p), -np.inf)
        logp = logp / temperature
        logp -= logp.max()
        p = np.exp(logp)
        p[~np.isfinite(p)] = 0.0
        p = p / p.sum()

    if top_k is not None and top_k < np.count_nonzero(p):
        keep = np.argsort(p)[-top_k:]
        filtered = np.zeros_like(p)
        filtered[keep] = p[keep]
        p = filtered / filtered.sum()

    if top_p is not None and top_p < 1.0:
        order = np.argsort(p)[::-1]
        cumulative = np.cumsum(p[order])
        cutoff = int(np.searchsorted(cumulative, top_p)) + 1
        keep = order[:cutoff]
        filtered = np.zeros_like(p)
        filtered[keep] = p[keep]
        p = filtered / filtered.sum()
    return p, False


def sample_from_distribution(
    probs: np.ndarray,
    rng: np.random.Generator,
    temperature: float = 1.0,
    top_k: int | None = None,
    top_p: float | None = None,
    allowed_ids: Iterable[int] | None = None,
    allowed_mask: np.ndarray | None = None,
) -> tuple[int, float]:
    """Draw one token id; returns ``(token_id, probability_it_was_drawn_with)``.

    ``probs`` is a length-V probability vector.  ``temperature`` rescales in
    log space (``p ** (1/T)``); values below 1 sharpen, above 1 flatten, and
    0 means greedy argmax.  ``top_k``/``top_p`` filter before renormalising.

    ``allowed_mask`` is a precomputed boolean mask (see :func:`mask_for_ids`)
    that takes precedence over ``allowed_ids``; the two spellings of the same
    admissible set produce bit-identical draws.
    """
    p, greedy = filter_distribution(
        probs,
        temperature=temperature,
        top_k=top_k,
        top_p=top_p,
        allowed_ids=allowed_ids,
        allowed_mask=allowed_mask,
    )
    if greedy:
        token = int(np.argmax(p))
        return token, float(p[token])
    token = int(rng.choice(p.size, p=p))
    return token, float(p[token])

"""Sampling from a next-token distribution with the usual LLM knobs.

Order of operations mirrors Hugging Face's ``generate``: constrain (logit
mask), temperature, top-k, then top-p (nucleus), renormalising after each
filter.  If masking leaves no probability mass, sampling falls back to a
uniform distribution over the admissible ids — the constrained equivalent of
an untrained model, never an error.

Thread-safety: nothing in this module touches NumPy's legacy global RNG
(``np.random.seed``/``np.random.rand``); every draw goes through an explicit
``numpy.random.Generator`` owned by the caller.  Callers that fan sample
draws out across worker threads must give each worker its *own* generator —
:func:`child_seeds` derives a deterministic, order-independent seed per
worker from one base generator so parallel execution reproduces sequential
execution exactly.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.exceptions import GenerationError

__all__ = ["sample_from_distribution", "child_seeds", "child_generators"]


def child_seeds(rng: np.random.Generator, n: int) -> list[int]:
    """Derive ``n`` independent child seeds from one base generator.

    The seeds are drawn sequentially *up front*, so work parameterised by
    them can execute in any order (or concurrently) and still be
    deterministic under the base seed.  This is the same derivation the
    sequential pipeline has always used (one ``integers(2**63)`` per
    sample), just hoisted out of the draw loop.
    """
    if n < 0:
        raise GenerationError(f"cannot derive {n} child seeds")
    return [int(rng.integers(2**63)) for _ in range(n)]


def child_generators(
    rng: np.random.Generator, n: int
) -> list[np.random.Generator]:
    """``n`` independent generators, one per worker/sample (see child_seeds)."""
    return [np.random.default_rng(seed) for seed in child_seeds(rng, n)]


def sample_from_distribution(
    probs: np.ndarray,
    rng: np.random.Generator,
    temperature: float = 1.0,
    top_k: int | None = None,
    top_p: float | None = None,
    allowed_ids: Iterable[int] | None = None,
) -> tuple[int, float]:
    """Draw one token id; returns ``(token_id, probability_it_was_drawn_with)``.

    ``probs`` is a length-V probability vector.  ``temperature`` rescales in
    log space (``p ** (1/T)``); values below 1 sharpen, above 1 flatten, and
    0 means greedy argmax.  ``top_k``/``top_p`` filter before renormalising.
    """
    p = np.asarray(probs, dtype=float)
    if p.ndim != 1:
        raise GenerationError(f"expected a 1-D probability vector, got {p.shape}")
    if temperature < 0:
        raise GenerationError(f"temperature must be >= 0, got {temperature}")
    if top_k is not None and top_k < 1:
        raise GenerationError(f"top_k must be >= 1, got {top_k}")
    if top_p is not None and not 0.0 < top_p <= 1.0:
        raise GenerationError(f"top_p must be in (0, 1], got {top_p}")

    p = np.clip(p, 0.0, None)

    if allowed_ids is not None:
        mask = np.zeros_like(p, dtype=bool)
        ids = np.fromiter((int(i) for i in allowed_ids), dtype=int)
        if ids.size == 0:
            raise GenerationError("allowed_ids is empty")
        if ids.min() < 0 or ids.max() >= p.size:
            raise GenerationError("allowed_ids outside the vocabulary")
        mask[ids] = True
        p = np.where(mask, p, 0.0)
        if p.sum() <= 0.0:
            p = mask.astype(float)  # uniform over the admissible set

    if p.sum() <= 0.0:
        raise GenerationError("distribution has no probability mass")
    p = p / p.sum()

    if temperature < 1e-6:
        # Exactly-zero and denormal temperatures both mean greedy decoding
        # (dividing log-probabilities by a denormal would overflow).
        token = int(np.argmax(p))
        return token, float(p[token])
    if temperature != 1.0:
        with np.errstate(divide="ignore"):
            logp = np.where(p > 0.0, np.log(p), -np.inf)
        logp = logp / temperature
        logp -= logp.max()
        p = np.exp(logp)
        p[~np.isfinite(p)] = 0.0
        p = p / p.sum()

    if top_k is not None and top_k < np.count_nonzero(p):
        keep = np.argsort(p)[-top_k:]
        filtered = np.zeros_like(p)
        filtered[keep] = p[keep]
        p = filtered / filtered.sum()

    if top_p is not None and top_p < 1.0:
        order = np.argsort(p)[::-1]
        cumulative = np.cumsum(p[order])
        cutoff = int(np.searchsorted(cumulative, top_p)) + 1
        keep = order[:cutoff]
        filtered = np.zeros_like(p)
        filtered[keep] = p[keep]
        p = filtered / filtered.sum()

    token = int(rng.choice(p.size, p=p))
    return token, float(p[token])

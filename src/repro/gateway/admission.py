"""Admission control for the asyncio gateway: shedding and tenant quotas.

A front door that accepts every request just moves the overload problem
one layer down — under burst the engine's queue grows without bound and
*every* request misses its deadline.  The gateway instead makes two
decisions at the door, both O(1):

* **Load shedding** — at most ``max_pending`` requests may be admitted
  and not yet finished; request ``max_pending + 1`` is rejected with a
  typed :class:`Overloaded` (never an unbounded queue, never a hang).
  Shedding is deterministic: admission order decides, so a burst of
  ``max_pending + k`` concurrent submissions sheds exactly the last
  ``k``.
* **Per-tenant quotas** — each tenant draws from a :class:`TokenBucket`
  (sustained ``rate`` requests/second, ``burst`` headroom).  An empty
  bucket rejects with a typed :class:`QuotaExceeded` carrying the
  ``retry_after`` hint, so one chatty tenant cannot starve the rest.

Both rejections subclass :class:`~repro.exceptions.ReproError`, surface
immediately (admission happens before any engine work), and are recorded
in the gateway's metrics and run ledger with ``admission="shed"`` /
``"quota"``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.exceptions import ConfigError, ReproError

__all__ = [
    "AdmissionController",
    "Overloaded",
    "QuotaExceeded",
    "TenantQuota",
    "TokenBucket",
]


class Overloaded(ReproError):
    """The gateway's pending set is full; the request was shed, not queued.

    Carries ``pending`` (admitted-but-unfinished requests at rejection
    time) and ``max_pending`` (the admission bound) so callers can back
    off proportionally.
    """

    def __init__(self, message: str, *, pending: int, max_pending: int) -> None:
        super().__init__(message)
        self.pending = pending
        self.max_pending = max_pending


class QuotaExceeded(ReproError):
    """The tenant's token bucket is empty; the request was rejected.

    ``retry_after`` is the seconds until the bucket refills enough for
    one request — the standard backoff hint.
    """

    def __init__(self, message: str, *, tenant: str, retry_after: float) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.retry_after = retry_after


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's sustained request budget.

    ``rate`` is requests per second added to the bucket; ``burst`` is the
    bucket capacity — how many requests a quiet tenant may fire at once
    before the rate limit bites.
    """

    rate: float
    burst: float = 1.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigError(f"quota rate must be > 0, got {self.rate}")
        if self.burst < 1:
            raise ConfigError(f"quota burst must be >= 1, got {self.burst}")


class TokenBucket:
    """The classic token bucket, with an injectable clock for tests.

    Starts full.  ``try_acquire`` either takes ``amount`` tokens and
    returns True, or leaves the bucket untouched and returns False —
    there is no blocking acquire; the gateway *rejects* rather than
    queues, so backpressure stays visible to callers.
    """

    def __init__(self, rate: float, burst: float = 1.0, *, clock=time.monotonic) -> None:
        if rate <= 0:
            raise ConfigError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ConfigError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._updated)
        self._updated = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if available; never blocks."""
        with self._lock:
            self._refill()
            if self._tokens + 1e-12 >= amount:
                self._tokens -= amount
                return True
            return False

    def retry_after(self, amount: float = 1.0) -> float:
        """Seconds until ``amount`` tokens will be available (0 if now)."""
        with self._lock:
            self._refill()
            deficit = amount - self._tokens
            return max(0.0, deficit / self.rate)

    @property
    def tokens(self) -> float:
        """The current token level (refilled to now)."""
        with self._lock:
            self._refill()
            return self._tokens


class AdmissionController:
    """The gateway's two admission gates: a pending bound and tenant buckets.

    ``max_pending`` bounds admitted-but-unfinished requests (coalesced
    followers are free — they add no engine work).  ``default_quota``
    applies to every tenant without an explicit entry in
    ``tenant_quotas``; ``None`` means unlimited.  All methods are
    thread-safe (releases arrive from engine worker threads).
    """

    def __init__(
        self,
        *,
        max_pending: int = 64,
        default_quota: TenantQuota | None = None,
        tenant_quotas: dict[str, TenantQuota] | None = None,
        clock=time.monotonic,
    ) -> None:
        if max_pending < 1:
            raise ConfigError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = max_pending
        self._default_quota = default_quota
        self._quota_config = dict(tenant_quotas or {})
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._pending = 0
        self._shed = 0
        self._quota_rejected = 0
        self._lock = threading.Lock()

    def _bucket(self, tenant: str) -> TokenBucket | None:
        quota = self._quota_config.get(tenant, self._default_quota)
        if quota is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(quota.rate, quota.burst, clock=self._clock)
            self._buckets[tenant] = bucket
        return bucket

    def charge(self, tenant: str) -> None:
        """Debit one request from the tenant's bucket, or reject.

        Raises :class:`QuotaExceeded` (with a ``retry_after`` hint) when
        the bucket is empty.  Tenants with no configured quota always
        pass.
        """
        with self._lock:
            bucket = self._bucket(tenant)
        if bucket is not None and not bucket.try_acquire():
            retry_after = bucket.retry_after()
            with self._lock:
                self._quota_rejected += 1
            raise QuotaExceeded(
                f"tenant {tenant!r} is over quota; retry in "
                f"{retry_after:.3f}s",
                tenant=tenant,
                retry_after=retry_after,
            )

    def acquire(self) -> None:
        """Claim one pending slot, or shed with :class:`Overloaded`."""
        with self._lock:
            if self._pending >= self.max_pending:
                self._shed += 1
                raise Overloaded(
                    f"gateway overloaded: {self._pending} requests pending "
                    f"(max_pending={self.max_pending})",
                    pending=self._pending,
                    max_pending=self.max_pending,
                )
            self._pending += 1

    def release(self) -> None:
        """Return a pending slot once its request finished."""
        with self._lock:
            self._pending = max(0, self._pending - 1)

    @property
    def pending(self) -> int:
        """Admitted-but-unfinished requests right now."""
        with self._lock:
            return self._pending

    @property
    def stats(self) -> dict:
        """Pending level plus cumulative shed/quota rejections."""
        with self._lock:
            return {
                "pending": self._pending,
                "max_pending": self.max_pending,
                "shed": self._shed,
                "quota_rejected": self._quota_rejected,
            }

"""The asyncio front door: submit / poll / result / stream over the engine.

:class:`ForecastGateway` turns the thread-pooled
:class:`~repro.serving.engine.ForecastEngine` into an async service with
a backpressure story:

* **submit** admits (or rejects) a request and returns a
  :class:`~repro.gateway.handles.GatewayHandle` immediately — admission
  control is a bounded pending set (typed
  :class:`~repro.gateway.admission.Overloaded` shedding) plus per-tenant
  token-bucket quotas (typed
  :class:`~repro.gateway.admission.QuotaExceeded`);
* identical in-flight requests — same
  :func:`~repro.serving.cache.forecast_digest`, i.e. same history bytes,
  config, horizon, and seed — are **single-flight coalesced**: one engine
  computation, every follower handle resolved from it (tenant and name
  are *not* part of the digest, so a thundering herd across tenants costs
  one forecast);
* **poll** is a non-blocking state snapshot, **result** awaits the
  :class:`~repro.serving.request.ForecastResponse` (honouring each
  handle's *own* deadline even when coalesced behind a slower leader),
  and **stream** yields :class:`~repro.gateway.handles.StreamEvent`
  partial-ensemble progress as sample draws retire, then the final
  result.

The gateway adds nothing to the numeric path: an admitted request is the
exact :class:`~repro.serving.request.ForecastRequest` the engine would
serve directly, so gateway results are bit-identical to
``engine.forecast`` (and to a sequential
:class:`~repro.core.forecaster.MultiCastForecaster`) under the same seed
— pinned by ``tests/test_gateway.py`` across batched and continuous
execution.

Admission outcomes land in three places: the engine's
:class:`~repro.serving.metrics.MetricsRegistry` (``gateway_*`` counters,
the ``gateway_pending`` gauge, the ``gateway_queue_wait_seconds``
histogram), the request span (``tenant`` / ``admission`` /
``queue_wait`` attributes), and the run ledger (``tenant``,
``admission`` ∈ ``admitted|coalesced|shed|quota|direct``,
``gateway_queue_wait_seconds`` — see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import asyncio
import copy
import dataclasses
import time

from repro.core.spec import ForecastSpec
from repro.exceptions import ConfigError
from repro.gateway.admission import AdmissionController, TenantQuota
from repro.gateway.handles import GatewayHandle, HandleStatus, StreamEvent
from repro.serving.cache import forecast_digest
from repro.serving.engine import ForecastEngine
from repro.serving.request import ForecastRequest, ForecastResponse

__all__ = ["ForecastGateway"]


class _Inflight:
    """One coalescing group: the leader handle and its followers."""

    def __init__(self, leader: GatewayHandle) -> None:
        self.leader = leader
        self.followers: list[GatewayHandle] = []


class ForecastGateway:
    """Asyncio serving gateway over a :class:`ForecastEngine`.

    Parameters
    ----------
    engine:
        The engine to serve through; when None the gateway builds (and
        owns, and closes) a default one.
    max_pending:
        Admission bound: admitted-but-unfinished requests beyond this are
        shed with :class:`~repro.gateway.admission.Overloaded`.
        Coalesced followers are free.
    default_quota / tenant_quotas:
        Per-tenant token buckets
        (:class:`~repro.gateway.admission.TenantQuota`); ``default_quota``
        covers tenants without an explicit entry, ``None`` means
        unlimited.
    coalesce:
        Single-flight identical in-flight requests (on by default).
    clock:
        Monotonic clock for the quota buckets (injectable for tests).

    Example
    -------
    >>> import asyncio
    >>> from repro.gateway import ForecastGateway
    >>> async def serve(spec):
    ...     async with ForecastGateway() as gateway:
    ...         handle = await gateway.submit(spec, tenant="demo")
    ...         return await gateway.result(handle)
    """

    def __init__(
        self,
        engine: ForecastEngine | None = None,
        *,
        max_pending: int = 64,
        default_quota: TenantQuota | None = None,
        tenant_quotas: dict[str, TenantQuota] | None = None,
        coalesce: bool = True,
        clock=time.monotonic,
    ) -> None:
        self._owns_engine = engine is None
        self.engine = ForecastEngine() if engine is None else engine
        self.coalesce = coalesce
        self.admission = AdmissionController(
            max_pending=max_pending,
            default_quota=default_quota,
            tenant_quotas=tenant_quotas,
            clock=clock,
        )
        self.metrics = self.engine.metrics
        self._inflight: dict[str, _Inflight] = {}
        self._handles: set[GatewayHandle] = set()
        self._closed = False

    # -- submission ----------------------------------------------------------

    async def submit(
        self,
        request: ForecastRequest | ForecastSpec,
        *,
        tenant: str = "default",
    ) -> GatewayHandle:
        """Admit one request; return its handle (or raise a typed rejection).

        Accepts a :class:`~repro.serving.request.ForecastRequest` or an
        executable :class:`~repro.core.spec.ForecastSpec`.  ``tenant``
        fills the request's tenant when it has none (an explicit
        ``request.tenant`` wins).  Raises
        :class:`~repro.gateway.admission.QuotaExceeded` when the tenant's
        bucket is empty and :class:`~repro.gateway.admission.Overloaded`
        when the pending set is full — both *before* any engine work, so
        rejection is O(1) and never blocks.
        """
        self._check_open()
        loop = asyncio.get_running_loop()
        request = self._coerce(request, tenant)
        tenant = request.tenant
        self.metrics.counter("gateway_requests_total").inc()

        try:
            self.admission.charge(tenant)
        except Exception:
            self.metrics.counter("gateway_quota_rejected_total").inc()
            self._ledger_rejection(request, "quota", "tenant over quota")
            raise

        digest = forecast_digest(
            request.history, request.config, request.horizon, request.seed
        )
        if self.coalesce:
            entry = self._inflight.get(digest)
            if entry is not None and not entry.leader.done:
                return self._attach_follower(entry, request, loop, digest)

        try:
            self.admission.acquire()
        except Exception:
            self.metrics.counter("gateway_shed_total").inc()
            self._ledger_rejection(request, "shed", "gateway overloaded")
            raise
        self.metrics.gauge("gateway_pending").set(self.admission.pending)

        handle = GatewayHandle(request, digest, loop=loop)
        self._handles.add(handle)
        entry = _Inflight(handle)
        self._inflight[digest] = entry

        def on_progress(completed: int, requested: int) -> None:
            loop.call_soon_threadsafe(
                self._publish_progress, entry, completed, requested
            )

        ledger_extra = {
            "tenant": tenant,
            "admission": "admitted",
            "enqueued_at": time.perf_counter(),
        }
        engine_future = self.engine.submit(
            request, on_progress=on_progress, ledger_extra=ledger_extra
        )
        engine_future.add_done_callback(
            lambda future: self._schedule_finalize(loop, digest, entry, future)
        )
        handle.publish(
            StreamEvent(kind="accepted", requested=handle.requested)
        )
        return handle

    def _coerce(
        self, request: ForecastRequest | ForecastSpec, tenant: str
    ) -> ForecastRequest:
        if isinstance(request, ForecastSpec):
            request = ForecastRequest.from_spec(request)
        if not request.tenant:
            request = dataclasses.replace(request, tenant=tenant)
        return request

    def _attach_follower(
        self,
        entry: _Inflight,
        request: ForecastRequest,
        loop: asyncio.AbstractEventLoop,
        digest: str,
    ) -> GatewayHandle:
        """Coalesce: ride the identical in-flight leader, no engine work."""
        follower = GatewayHandle(request, digest, loop=loop, coalesced=True)
        follower.completed = entry.leader.completed
        follower.requested = entry.leader.requested
        self._handles.add(follower)
        entry.followers.append(follower)
        self.metrics.counter("gateway_coalesced_total").inc()
        follower.publish(
            StreamEvent(
                kind="accepted",
                completed=follower.completed,
                requested=follower.requested,
            )
        )
        return follower

    # -- event-loop callbacks -------------------------------------------------

    def _publish_progress(
        self, entry: _Inflight, completed: int, requested: int
    ) -> None:
        event = StreamEvent(
            kind="progress", completed=completed, requested=requested
        )
        entry.leader.publish(event)
        for follower in entry.followers:
            if not follower.done:
                follower.publish(event)

    def _schedule_finalize(self, loop, digest, entry, future) -> None:
        try:
            loop.call_soon_threadsafe(self._finalize, digest, entry, future)
        except RuntimeError:
            # The loop is gone (gateway user tore it down mid-flight);
            # nothing left to notify.
            self.admission.release()

    def _finalize(self, digest: str, entry: _Inflight, future) -> None:
        """Resolve the leader and every follower from the engine's result."""
        self.admission.release()
        self.metrics.gauge("gateway_pending").set(self.admission.pending)
        if self._inflight.get(digest) is entry:
            del self._inflight[digest]
        error = future.exception()
        if error is not None:
            entry.leader.fail(error)
            for follower in entry.followers:
                follower.fail(error)
            return
        response = future.result()
        entry.leader.resolve(response)
        for follower in entry.followers:
            if follower.done:
                continue  # e.g. already failed its own deadline
            follower.resolve(self._retag(response, follower.request))
            self._ledger_coalesced(follower, response)

    @staticmethod
    def _retag(
        response: ForecastResponse, request: ForecastRequest
    ) -> ForecastResponse:
        """A follower's private copy of the leader's response."""
        return ForecastResponse(
            request,
            output=copy.deepcopy(response.output),
            error=response.error,
            cache_hit=response.cache_hit,
            partial=response.partial,
            attempts=response.attempts,
            wall_seconds=response.wall_seconds,
        )

    # -- retrieval -----------------------------------------------------------

    def poll(self, handle: GatewayHandle) -> HandleStatus:
        """Non-blocking state snapshot of one handle (never raises)."""
        return handle.status()

    async def result(self, handle: GatewayHandle) -> ForecastResponse:
        """Await the handle's response, honouring its *own* deadline.

        A coalesced follower whose ``deadline_seconds`` elapses before its
        leader finishes resolves to a failed (deadline) response — the
        leader, and every other follower, is unaffected.  Engine-side
        failures never raise from here; they come back as error
        responses, exactly like ``engine.forecast``.
        """
        deadline = handle.request.deadline_seconds
        if deadline is not None and not handle.done:
            remaining = deadline - (time.perf_counter() - handle.submitted_at)
            try:
                return await asyncio.wait_for(
                    asyncio.shield(handle.future), max(0.0, remaining)
                )
            except asyncio.TimeoutError:
                timed_out = ForecastResponse(
                    handle.request,
                    error=(
                        f"deadline of {deadline}s exceeded while awaiting "
                        f"the gateway result"
                    ),
                    wall_seconds=time.perf_counter() - handle.submitted_at,
                )
                self.metrics.counter("gateway_deadline_expired_total").inc()
                handle.resolve(timed_out)
                return timed_out
        return await handle.future

    async def stream(self, handle: GatewayHandle):
        """Async-iterate the handle's events, ending after ``"result"``.

        Yields every past event first (nothing is missed by attaching
        late), then live ones.  Closing the iterator early — a consumer
        disconnecting mid-request — detaches only this consumer; the
        request keeps running and ``result`` still resolves.
        """
        queue = handle.attach_stream()
        try:
            while True:
                event = await queue.get()
                yield event
                if event.kind == "result":
                    return
        finally:
            handle.detach_stream(queue)

    # -- lifecycle -----------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigError("gateway is closed")

    def stats(self) -> dict:
        """Admission statistics plus the engine's full metrics snapshot."""
        return {
            "admission": self.admission.stats,
            "inflight": len(self._inflight),
            "engine": self.engine.metrics_snapshot(),
        }

    async def close(self) -> None:
        """Drain in-flight handles, then close the engine if owned."""
        if self._closed:
            return
        self._closed = True
        pending = [h.future for h in self._handles if not h.done]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        if self._owns_engine:
            self.engine.close()

    async def __aenter__(self) -> "ForecastGateway":
        """Enter ``async with``: the gateway itself."""
        return self

    async def __aexit__(self, *exc_info) -> None:
        """Exit ``async with``: drain and close."""
        await self.close()

    # -- ledger --------------------------------------------------------------

    def _ledger_rejection(
        self, request: ForecastRequest, admission: str, reason: str
    ) -> None:
        """One ledger record for a request the engine never saw."""
        self._ledger_append(request, admission, "failed", error=reason)

    def _ledger_coalesced(
        self, follower: GatewayHandle, response: ForecastResponse
    ) -> None:
        """One ledger record for a follower resolved from its leader.

        The ``ingest`` field records ``"coalesced"`` — the follower did no
        ingest of its own (the leader's record carries the real
        miss/extend/fork outcome), and copying the leader's value here
        would double-count ingest work in ledger audits.
        """
        outcome = "failed" if not response.ok else (
            "partial" if response.partial else "ok"
        )
        self._ledger_append(
            follower.request,
            "coalesced",
            outcome,
            error=response.error,
            cache_hit=response.cache_hit,
            wall_seconds=time.perf_counter() - follower.submitted_at,
            ingest="coalesced",
        )

    def _ledger_append(
        self,
        request: ForecastRequest,
        admission: str,
        outcome: str,
        *,
        error: str | None = None,
        cache_hit: bool = False,
        wall_seconds: float = 0.0,
        ingest: str | None = None,
    ) -> None:
        ledger = self.engine.ledger
        if ledger is None:
            return
        ledger.append(
            {
                "unix_time": round(time.time(), 3),
                "name": request.name,
                "tenant": request.tenant,
                "admission": admission,
                "gateway_queue_wait_seconds": None,
                "outcome": outcome,
                "config_hash": forecast_digest(
                    request.history,
                    request.config,
                    request.horizon,
                    request.seed,
                ),
                "seed": int(request.effective_seed),
                "scheme": request.config.scheme,
                "sax": request.config.sax is not None,
                "model": request.config.model,
                "horizon": int(request.horizon),
                "execution": request.execution,
                "cache_hit": cache_hit,
                "partial": False,
                "attempts": 0,
                "error": error,
                "wall_seconds": round(wall_seconds, 9),
                "prompt_tokens": 0,
                "generated_tokens": 0,
                "ingest": ingest,
                "queue_wait_seconds": None,
                "timings": {},
                "spans": None,
                "metrics": {
                    name: instrument["value"]
                    for name, instrument in self.metrics.snapshot().items()
                    if instrument.get("type") == "counter"
                },
            }
        )

"""Handles and stream events: the gateway's view of one in-flight request.

``ForecastGateway.submit`` returns a :class:`GatewayHandle` immediately —
the ticket a caller uses to ``poll`` (non-blocking state), ``result``
(await the :class:`~repro.serving.request.ForecastResponse`), or
``stream`` (an async iterator of :class:`StreamEvent`).  Handles are
cheap and single-request; the heavy state (engine futures, coalescing
maps) lives in the gateway.

Stream consumers may disconnect at any point: closing the stream detaches
its queue and nothing else — the underlying request keeps running, other
consumers of the same handle keep receiving events, and ``result`` still
resolves.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field

from repro.serving.request import ForecastRequest, ForecastResponse

__all__ = ["GatewayHandle", "HandleStatus", "StreamEvent"]

_HANDLE_IDS = itertools.count(1)


@dataclass(frozen=True)
class StreamEvent:
    """One streamed observation of an in-flight request.

    ``kind`` is the event type:

    * ``"accepted"`` — admission succeeded; ``completed``/``requested``
      report the sample ensemble size (0 completed).
    * ``"progress"`` — a partial ensemble exists: ``completed`` of
      ``requested`` sample draws have retired (pooled execution reports
      each retirement; lockstep modes retire inside one decode pass and
      go straight to ``"result"``).
    * ``"result"`` — terminal; ``response`` carries the full
      :class:`~repro.serving.request.ForecastResponse` (which is the
      partial-ensemble aggregate when the request degraded).
    """

    kind: str
    completed: int = 0
    requested: int = 0
    response: ForecastResponse | None = None


@dataclass(frozen=True)
class HandleStatus:
    """A non-blocking snapshot of one handle (what ``poll`` returns).

    ``state`` is ``"running"`` (admitted, engine working — possibly
    briefly queued on the engine's request pool, which the
    ``gateway_queue_wait_seconds`` histogram measures), ``"coalesced"``
    (riding an identical in-flight request), ``"done"`` (response ready
    and ok) or ``"failed"`` (response ready with an error).
    ``completed``/``requested`` mirror the latest progress event.
    """

    state: str
    completed: int = 0
    requested: int = 0
    tenant: str = ""
    coalesced: bool = False


class GatewayHandle:
    """One submitted request's ticket: identity, progress, and its future.

    Created by :meth:`ForecastGateway.submit`; never constructed by
    callers.  ``handle.done`` / ``handle.response`` allow cheap
    inspection, but the blessed accessors are the gateway's ``poll``,
    ``result`` and ``stream``.
    """

    def __init__(
        self,
        request: ForecastRequest,
        digest: str,
        *,
        loop: asyncio.AbstractEventLoop,
        coalesced: bool = False,
    ) -> None:
        self.id = next(_HANDLE_IDS)
        self.request = request
        self.digest = digest
        self.coalesced = coalesced
        self.submitted_at = time.perf_counter()
        self.future: asyncio.Future = loop.create_future()
        self.completed = 0
        self.requested = int(request.config.num_samples)
        self._queues: list[asyncio.Queue] = []
        self._events: list[StreamEvent] = []

    # -- state ---------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True once the response (success or failure) is available."""
        return self.future.done()

    @property
    def response(self) -> ForecastResponse | None:
        """The terminal response, or None while in flight."""
        if not self.future.done() or self.future.cancelled():
            return None
        if self.future.exception() is not None:
            return None
        return self.future.result()

    def status(self) -> HandleStatus:
        """The non-blocking :class:`HandleStatus` snapshot."""
        response = self.response
        if response is not None:
            state = "done" if response.ok else "failed"
        elif self.future.done():
            state = "failed"
        elif self.coalesced:
            state = "coalesced"
        else:
            state = "running"
        return HandleStatus(
            state=state,
            completed=self.completed,
            requested=self.requested,
            tenant=self.request.tenant,
            coalesced=self.coalesced,
        )

    # -- event plumbing (called by the gateway, on the event loop) -----------

    def publish(self, event: StreamEvent) -> None:
        """Record one event and fan it out to every attached stream."""
        if event.kind == "progress":
            self.completed = event.completed
            self.requested = event.requested
        self._events.append(event)
        for queue in self._queues:
            queue.put_nowait(event)

    def attach_stream(self) -> asyncio.Queue:
        """A queue pre-seeded with every past event (no event is missed)."""
        queue: asyncio.Queue = asyncio.Queue()
        for event in self._events:
            queue.put_nowait(event)
        self._queues.append(queue)
        return queue

    def detach_stream(self, queue: asyncio.Queue) -> None:
        """Forget a consumer's queue (stream closed or disconnected)."""
        if queue in self._queues:
            self._queues.remove(queue)

    @property
    def stream_consumers(self) -> int:
        """Currently attached stream queues (for tests and introspection)."""
        return len(self._queues)

    def resolve(self, response: ForecastResponse) -> None:
        """Set the terminal response and publish the ``result`` event.

        Idempotent: a handle that already resolved (e.g. a coalesced
        follower that hit its own deadline) ignores later resolutions.
        """
        if self.future.done():
            return
        self.future.set_result(response)
        self.publish(
            StreamEvent(
                kind="result",
                completed=self.completed,
                requested=self.requested,
                response=response,
            )
        )

    def fail(self, error: BaseException) -> None:
        """Resolve the handle with an exception (engine-level failure)."""
        if self.future.done():
            return
        self.future.set_exception(error)

    def __repr__(self) -> str:
        return (
            f"GatewayHandle(id={self.id}, tenant={self.request.tenant!r}, "
            f"state={self.status().state!r}, digest={self.digest[:12]}...)"
        )

"""Async serving gateway: admission control, coalescing, and streaming.

The package splits into three layers:

* :mod:`repro.gateway.admission` — the door: bounded-pending load
  shedding (:class:`Overloaded`) and per-tenant token-bucket quotas
  (:class:`QuotaExceeded`, :class:`TenantQuota`, :class:`TokenBucket`);
* :mod:`repro.gateway.handles` — the ticket: :class:`GatewayHandle`,
  :class:`HandleStatus`, :class:`StreamEvent`;
* :mod:`repro.gateway.gateway` — :class:`ForecastGateway` itself, the
  asyncio front door over :class:`~repro.serving.engine.ForecastEngine`
  with ``submit`` / ``poll`` / ``result`` / ``stream``.

See ``docs/SERVING.md`` for the end-to-end operations guide.
"""

from repro.gateway.admission import (
    AdmissionController,
    Overloaded,
    QuotaExceeded,
    TenantQuota,
    TokenBucket,
)
from repro.gateway.gateway import ForecastGateway
from repro.gateway.handles import GatewayHandle, HandleStatus, StreamEvent

__all__ = [
    "AdmissionController",
    "ForecastGateway",
    "GatewayHandle",
    "HandleStatus",
    "Overloaded",
    "QuotaExceeded",
    "StreamEvent",
    "TenantQuota",
    "TokenBucket",
]

"""Seasonality-period detection by autocorrelation peak."""

from __future__ import annotations

import numpy as np

from repro.exceptions import FittingError

__all__ = ["estimate_period"]


def estimate_period(x: np.ndarray, max_period: int | None = None) -> int:
    """Dominant seasonality by autocorrelation peak.

    Scans lags ``2 .. max_period`` (default ``n // 3``) of the detrended
    series and returns the lag with the highest autocorrelation, requiring
    it to be a genuine *local* peak; returns 1 (no seasonality) when the
    best peak is weak (< 0.2).
    """
    series = np.asarray(x, dtype=float)
    if series.ndim != 1 or series.size < 8:
        raise FittingError("estimate_period needs a 1-D series of >= 8 points")
    n = series.size
    max_period = n // 3 if max_period is None else min(max_period, n - 2)
    if max_period < 2:
        return 1
    detrended = series - np.polyval(np.polyfit(np.arange(n), series, 1), np.arange(n))
    centred = detrended - detrended.mean()
    denom = float(centred @ centred)
    if denom == 0.0:
        return 1
    acf = np.array([
        float(centred[lag:] @ centred[:-lag]) / denom
        for lag in range(1, max_period + 1)
    ])
    best_lag, best_value = 1, 0.0
    for lag in range(2, max_period):
        value = acf[lag - 1]
        if value > best_value and value >= acf[lag - 2] and value >= acf[lag]:
            best_lag, best_value = lag, value
    return best_lag if best_value >= 0.2 else 1

"""Seasonality-period detection by autocorrelation peak."""

from __future__ import annotations

import numpy as np

from repro.exceptions import FittingError

__all__ = ["estimate_period"]

#: Magnitude beyond which the detrend/autocorrelation arithmetic is
#: renormalised first: squared terms overflow float64 past ~1e154, and
#: denormal inputs underflow to a zero denominator.  Tame series stay on
#: the historical bit-exact path.
_RESCALE_GATE = 1e150

#: Peak-to-peak variation below this fraction of the series magnitude is
#: indistinguishable from floating-point noise around a constant — no
#: autocorrelation of it is meaningful seasonality.
_CONSTANT_RTOL = 1e-12


def estimate_period(x: np.ndarray, max_period: int | None = None) -> int:
    """Dominant seasonality by autocorrelation peak.

    Scans lags ``2 .. max_period`` (default ``n // 3``) of the detrended
    series and returns the lag with the highest autocorrelation, requiring
    it to be a genuine *local* peak; returns 1 (no seasonality) when the
    best peak is weak (< 0.2).

    The result is always an ``int >= 1`` for finite input: constant and
    near-constant series (variation at floating-point-noise level) report
    no seasonality rather than a spurious noise peak, and extreme
    magnitudes (up to the float64 range, down to denormals) are
    renormalised internally instead of overflowing the autocorrelation.
    Non-finite values and series shorter than 8 points raise
    :class:`~repro.exceptions.FittingError`.
    """
    series = np.asarray(x, dtype=float)
    if series.ndim != 1 or series.size < 8:
        raise FittingError("estimate_period needs a 1-D series of >= 8 points")
    if not np.isfinite(series).all():
        raise FittingError("estimate_period requires finite values")
    n = series.size
    max_period = n // 3 if max_period is None else min(max_period, n - 2)
    if max_period < 2:
        return 1
    scale = float(np.max(np.abs(series)))
    if scale == 0.0:
        return 1  # identically zero: nothing to correlate
    with np.errstate(over="ignore"):
        spread = float(np.ptp(series))
    if np.isfinite(spread) and spread <= _CONSTANT_RTOL * scale:
        return 1  # constant up to floating-point noise
    if scale > _RESCALE_GATE or scale < 1.0 / _RESCALE_GATE:
        series = series / scale
    detrended = series - np.polyval(np.polyfit(np.arange(n), series, 1), np.arange(n))
    centred = detrended - detrended.mean()
    if np.max(np.abs(centred)) <= _CONSTANT_RTOL * np.max(np.abs(series)):
        # the detrend residual is floating-point noise around the fitted
        # line (e.g. an exact linear ramp): correlating it manufactures a
        # spurious period out of rounding patterns.
        return 1
    with np.errstate(over="ignore", invalid="ignore"):
        denom = float(centred @ centred)
        if not np.isfinite(denom):
            # long series can still overflow the sum of squares below the
            # rescale gate; normalising the residual fixes the ratio.
            centred = centred / np.max(np.abs(centred))
            denom = float(centred @ centred)
        if denom == 0.0 or not np.isfinite(denom):
            return 1
        acf = np.array([
            float(centred[lag:] @ centred[:-lag]) / denom
            for lag in range(1, max_period + 1)
        ])
    acf = np.where(np.isfinite(acf), acf, 0.0)
    best_lag, best_value = 1, 0.0
    for lag in range(2, max_period):
        value = acf[lag - 1]
        if value > best_value and value >= acf[lag - 2] and value >= acf[lag]:
            best_lag, best_value = lag, value
    return best_lag if best_value >= 0.2 else 1

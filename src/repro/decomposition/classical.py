"""Classical additive decomposition: trend + seasonal + residual.

The textbook procedure (Hyndman & Athanasopoulos, FPP):

1. trend = centered moving average of window ``period`` (period-odd/even
   handled with the usual half-weights);
2. seasonal = per-phase means of the detrended series, normalised to sum
   to zero over one period;
3. residual = series − trend − seasonal.

:class:`SeasonalAdjuster` wraps the part forecasting needs: subtract the
seasonal profile from a series, and add the (periodic) profile back over
any future index range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError

__all__ = ["centered_moving_average", "ClassicalDecomposition", "SeasonalAdjuster"]

#: Magnitude beyond which the decomposition arithmetic is renormalised
#: first: component differences can exceed the float64 range for series
#: near it.  Tame series stay on the historical bit-exact path.
_RESCALE_GATE = 1e150


def centered_moving_average(x: np.ndarray, window: int) -> np.ndarray:
    """Centered MA with edge extension; even windows use half-end-weights.

    Returns an array of the same length as ``x``: interior points carry the
    classical ``2 x window`` MA (for even windows) or plain centered MA (for
    odd windows); edges reuse the nearest interior estimate, which keeps the
    decomposition defined everywhere without NaN bookkeeping.
    """
    series = np.asarray(x, dtype=float)
    if series.ndim != 1:
        raise DataError(f"expected a 1-D series, got shape {series.shape}")
    if not np.isfinite(series).all():
        raise DataError("series contains NaN or inf")
    if window < 2 or window > series.size:
        raise DataError(
            f"window must be in [2, {series.size}], got {window}"
        )
    if window % 2 == 1:
        weights = np.full(window, 1.0 / window)
    else:
        # 2xMA: half weight on the two extreme lags.
        weights = np.full(window + 1, 1.0 / window)
        weights[0] = weights[-1] = 0.5 / window
    valid = np.convolve(series, weights, mode="valid")
    pad_left = (series.size - valid.size) // 2
    pad_right = series.size - valid.size - pad_left
    return np.concatenate([
        np.full(pad_left, valid[0]),
        valid,
        np.full(pad_right, valid[-1]),
    ])


@dataclass
class ClassicalDecomposition:
    """Additive decomposition of one series into trend/seasonal/residual."""

    period: int
    trend: np.ndarray
    seasonal_profile: np.ndarray  # one period, sums to ~0
    residual: np.ndarray

    @classmethod
    def fit(cls, x: np.ndarray, period: int) -> "ClassicalDecomposition":
        """Decompose ``x`` with seasonality ``period``.

        The components recombine to the input within ulp-level tolerance
        (``residual`` is computed by exact subtraction).  Finite input of
        any magnitude either decomposes — extreme magnitudes are
        renormalised internally so the arithmetic cannot overflow — or
        raises a typed :class:`~repro.exceptions.DataError` when a
        component itself exceeds the float64 range (e.g. a seasonal swing
        wider than the representable maximum); NaN/inf input always
        raises :class:`~repro.exceptions.DataError`.
        """
        series = np.asarray(x, dtype=float)
        if series.ndim != 1:
            raise DataError(f"expected a 1-D series, got shape {series.shape}")
        if not np.isfinite(series).all():
            raise DataError("series contains NaN or inf")
        if period < 2:
            raise DataError(f"period must be >= 2, got {period}")
        if series.size < 2 * period:
            raise DataError(
                f"series of {series.size} points too short for period {period}"
            )
        scale = float(np.max(np.abs(series)))
        rescaled = scale > _RESCALE_GATE
        work = series / scale if rescaled else series
        trend = centered_moving_average(work, period)
        detrended = work - trend
        profile = np.empty(period)
        for phase in range(period):
            profile[phase] = detrended[phase::period].mean()
        profile -= profile.mean()  # additive seasonality sums to zero
        seasonal = profile[np.arange(series.size) % period]
        residual = work - trend - seasonal
        if rescaled:
            with np.errstate(over="ignore"):
                trend = trend * scale
                profile = profile * scale
                residual = residual * scale
            components = np.concatenate([trend, profile, residual])
            if not np.isfinite(components).all():
                raise DataError(
                    "decomposition components exceed the float64 range "
                    f"for this series (magnitude {scale:.3g})"
                )
        return cls(
            period=period,
            trend=trend,
            seasonal_profile=profile,
            residual=residual,
        )

    def seasonal_at(self, indices: np.ndarray) -> np.ndarray:
        """Seasonal component at absolute timestamp indices (periodic)."""
        return self.seasonal_profile[np.asarray(indices, dtype=int) % self.period]


class SeasonalAdjuster:
    """Remove a fitted seasonal profile and restore it over future indices."""

    def __init__(self, period: int) -> None:
        if period < 2:
            raise DataError(f"period must be >= 2, got {period}")
        self.period = period
        self._decomposition: ClassicalDecomposition | None = None
        self._n = 0

    def fit(self, x: np.ndarray) -> "SeasonalAdjuster":
        """Estimate the seasonal profile from the training series."""
        series = np.asarray(x, dtype=float)
        self._decomposition = ClassicalDecomposition.fit(series, self.period)
        self._n = series.size
        return self

    def _require_fitted(self) -> ClassicalDecomposition:
        if self._decomposition is None:
            raise DataError("SeasonalAdjuster used before fit()")
        return self._decomposition

    def adjust(self, x: np.ndarray) -> np.ndarray:
        """The seasonally-adjusted training series (length must match fit)."""
        decomposition = self._require_fitted()
        series = np.asarray(x, dtype=float)
        if series.size != self._n:
            raise DataError("adjust() expects the series the adjuster was fit on")
        return series - decomposition.seasonal_at(np.arange(series.size))

    def restore(self, values: np.ndarray, start_index: int | None = None) -> np.ndarray:
        """Add the periodic seasonal component back onto ``values``.

        ``start_index`` is the absolute timestamp of ``values[0]``; the
        default continues right after the training series (forecasting).
        """
        decomposition = self._require_fitted()
        arr = np.asarray(values, dtype=float)
        start = self._n if start_index is None else start_index
        indices = start + np.arange(arr.shape[0])
        seasonal = decomposition.seasonal_at(indices)
        if arr.ndim == 1:
            return arr + seasonal
        return arr + seasonal[:, None]

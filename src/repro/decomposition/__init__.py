"""Classical seasonal decomposition substrate.

Supports the ``deseasonalize`` option of :class:`~repro.core.MultiCastConfig`:
exact-suffix in-context induction extrapolates seasonal cycles poorly when
noise breaks token matches (see EXPERIMENTS.md, Table VI deviation), but a
classical additive decomposition can strip the deterministic seasonal
component before serialisation and add its extrapolation back afterwards —
the LLM then only has to model the far-easier adjusted series.
"""

from repro.decomposition.period import estimate_period
from repro.decomposition.classical import (
    ClassicalDecomposition,
    SeasonalAdjuster,
    centered_moving_average,
)

__all__ = [
    "estimate_period",
    "ClassicalDecomposition",
    "SeasonalAdjuster",
    "centered_moving_average",
]

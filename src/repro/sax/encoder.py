"""SAX encoding of univariate series and symbol-level reconstruction.

:class:`SaxEncoder` composes the substrate pieces: z-normalise against the
training history, PAA-compress the time axis, then discretize with Gaussian
breakpoints into a :class:`SaxAlphabet`.  Decoding inverts each step —
symbols map to a representative value per interval, segments expand to their
window, and the z-normalisation is undone — giving the piecewise-constant
reconstruction the paper plots in Figures 6-8.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigError, EncodingError
from repro.sax.breakpoints import (
    gaussian_breakpoints,
    interval_expected_values,
    interval_midpoints,
)
from repro.sax.paa import inverse_paa, paa
from repro.scaling.scalers import ZScoreScaler

__all__ = ["SaxAlphabet", "SaxEncoder"]

_LETTERS = "abcdefghijklmnopqrstuvwxyz"
_DIGITS = "0123456789"


@dataclass(frozen=True)
class SaxAlphabet:
    """An ordered SAX symbol set (lowest interval first).

    The paper supports two encodings (Section III-B): *alphabetical*
    (``a`` < ``b`` < …, up to 26 symbols) and *digital* (``0`` < ``1`` < …,
    up to 10 symbols — hence the N/A cell in Table IX).
    """

    symbols: tuple[str, ...]

    @classmethod
    def alphabetical(cls, size: int) -> "SaxAlphabet":
        if not 2 <= size <= len(_LETTERS):
            raise ConfigError(
                f"alphabetical SAX supports sizes 2..{len(_LETTERS)}, got {size}"
            )
        return cls(tuple(_LETTERS[:size]))

    @classmethod
    def digital(cls, size: int) -> "SaxAlphabet":
        if not 2 <= size <= len(_DIGITS):
            raise ConfigError(
                f"digital SAX supports sizes 2..{len(_DIGITS)}, got {size}"
            )
        return cls(tuple(_DIGITS[:size]))

    @classmethod
    def of_kind(cls, kind: str, size: int) -> "SaxAlphabet":
        """Build by kind name: ``"alphabetical"`` or ``"digital"``."""
        if kind == "alphabetical":
            return cls.alphabetical(size)
        if kind == "digital":
            return cls.digital(size)
        raise ConfigError(f"unknown SAX alphabet kind {kind!r}")

    def __len__(self) -> int:
        return len(self.symbols)

    def index_of(self, symbol: str) -> int:
        """Position of ``symbol`` in the alphabet (its breakpoint interval)."""
        try:
            return self.symbols.index(symbol)
        except ValueError:
            raise EncodingError(f"symbol {symbol!r} not in SAX alphabet") from None


class SaxEncoder:
    """Reversible (lossy) SAX transform for one dimension of a series.

    Parameters
    ----------
    segment_length:
        PAA window width ``w`` (x-axis quantization level, Table II).
    alphabet:
        The symbol set (y-axis quantization level).
    reconstruction:
        ``"midpoint"`` (interval median, default) or ``"expected"``
        (conditional Gaussian mean) — an ablation knob called out in DESIGN.md.
    """

    def __init__(
        self,
        segment_length: int,
        alphabet: SaxAlphabet,
        reconstruction: str = "midpoint",
    ) -> None:
        if segment_length < 1:
            raise ConfigError(f"segment_length must be >= 1, got {segment_length}")
        if reconstruction not in ("midpoint", "expected"):
            raise ConfigError(f"unknown reconstruction mode {reconstruction!r}")
        self.segment_length = segment_length
        self.alphabet = alphabet
        self.reconstruction = reconstruction
        self._breakpoints = gaussian_breakpoints(len(alphabet))
        if reconstruction == "midpoint":
            self._levels = interval_midpoints(len(alphabet))
        else:
            self._levels = interval_expected_values(len(alphabet))
        self._zscaler = ZScoreScaler()
        self._fitted = False

    def fit(self, history: np.ndarray) -> "SaxEncoder":
        """Learn the z-normalisation statistics from the training history."""
        self._zscaler.fit(np.asarray(history, dtype=float))
        self._fitted = True
        return self

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise EncodingError("SaxEncoder used before fit()")

    def encode(self, x: np.ndarray) -> list[str]:
        """Series -> SAX word (one symbol per PAA segment)."""
        self._require_fitted()
        with np.errstate(over="ignore", invalid="ignore"):
            z = self._zscaler.transform(np.asarray(x, dtype=float))
            coefficients = paa(z, self.segment_length)
        if not np.isfinite(coefficients).all():
            # searchsorted sorts NaN past every breakpoint, which would
            # silently emit the top symbol for an undefined coefficient.
            raise EncodingError(
                "z-normalisation overflowed float64 (series magnitude is "
                "extreme relative to the fitted history); cannot SAX-encode"
            )
        indices = np.searchsorted(self._breakpoints, coefficients, side="left")
        return [self.alphabet.symbols[i] for i in indices]

    def symbol_values(self) -> np.ndarray:
        """Representative *original-unit* value of each symbol, in order."""
        self._require_fitted()
        return self._zscaler.inverse_transform(self._levels)

    def decode(self, symbols: Sequence[str], n: int) -> np.ndarray:
        """SAX word -> length-``n`` piecewise-constant series in original units."""
        self._require_fitted()
        indices = np.array([self.alphabet.index_of(s) for s in symbols], dtype=int)
        coefficients = self._levels[indices]
        z = inverse_paa(coefficients, self.segment_length, n)
        return self._zscaler.inverse_transform(z)

    def segments_for(self, n: int) -> int:
        """How many symbols encode a series of length ``n``."""
        return -(-n // self.segment_length)

"""Piecewise Aggregate Approximation (PAA) and its pseudo-inverse.

PAA (Keogh et al., 2001; Yi & Faloutsos, 2000) compresses a series along the
time axis by replacing each window of ``segment_length`` consecutive values
with their mean.  The paper uses the segment length as "the level of
quantization on the x-axis" (Table II), so we parameterise by segment length
rather than by segment count; a trailing partial window is aggregated over
the values it actually contains.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError

__all__ = ["paa", "inverse_paa", "num_segments", "paa_weights"]


def num_segments(n: int, segment_length: int) -> int:
    """Number of PAA segments covering a series of length ``n``."""
    if segment_length < 1:
        raise DataError(f"segment_length must be >= 1, got {segment_length}")
    if n < 1:
        raise DataError(f"series length must be >= 1, got {n}")
    return -(-n // segment_length)  # ceil division


def paa_weights(n: int, segment_length: int) -> np.ndarray:
    """How many values each PAA segment averages over.

    Every segment weighs ``segment_length`` values except possibly the
    last, which weighs exactly the ``n - (k - 1) * segment_length`` values
    the series actually contains — never zero-padded, never truncated.
    The weights always sum to ``n``, which is the invariant the trailing
    partial window of :func:`paa` relies on (pinned in ``tests/test_sax.py``).
    """
    k = num_segments(n, segment_length)
    weights = np.full(k, segment_length, dtype=int)
    weights[-1] = n - (k - 1) * segment_length
    return weights


def paa(x: np.ndarray, segment_length: int) -> np.ndarray:
    """Compress ``x`` to per-segment means.

    Returns an array of ``ceil(len(x) / segment_length)`` coefficients; the
    last coefficient averages the (possibly shorter) trailing window — see
    :func:`paa_weights` for the exact weighting.  Windows whose plain sum
    would overflow float64 are averaged divide-first, so any finite input
    yields the mathematically correct (finite, when representable) mean.
    """
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 1:
        raise DataError(f"paa expects a 1-D series, got shape {arr.shape}")
    n = arr.size
    k = num_segments(n, segment_length)
    coefficients = np.empty(k, dtype=float)
    for i in range(k):
        window = arr[i * segment_length : (i + 1) * segment_length]
        with np.errstate(over="ignore", invalid="ignore"):
            mean = window.mean()
        if not np.isfinite(mean) and np.isfinite(window).all():
            # the sum overflowed float64 before the divide; dividing each
            # term first keeps the intermediate in range (the true mean is
            # always <= max|window|, hence representable).
            mean = float(np.sum(window / window.size))
        coefficients[i] = mean
    return coefficients


def inverse_paa(coefficients: np.ndarray, segment_length: int, n: int) -> np.ndarray:
    """Expand PAA coefficients back to a length-``n`` step function.

    Each coefficient is repeated over its window; this is the canonical
    reconstruction (PAA is lossy, so the result is piecewise constant).
    """
    coeffs = np.asarray(coefficients, dtype=float)
    if coeffs.ndim != 1:
        raise DataError(f"expected 1-D coefficients, got shape {coeffs.shape}")
    expected = num_segments(n, segment_length)
    if coeffs.size != expected:
        raise DataError(
            f"{coeffs.size} coefficients cannot cover n={n} with "
            f"segment_length={segment_length} (need {expected})"
        )
    return np.repeat(coeffs, segment_length)[:n]

"""Equiprobable Gaussian breakpoints for SAX value-axis quantization.

SAX discretizes z-normalised PAA coefficients with breakpoints chosen so each
symbol is equiprobable under N(0, 1).  The breakpoints are standard-normal
quantiles; we implement the inverse normal CDF from scratch (Acklam's
rational approximation, refined with one Halley step on ``erfc``) and the
test-suite validates it against ``scipy.stats.norm.ppf`` to ~1e-12.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import DataError

__all__ = [
    "inverse_normal_cdf",
    "gaussian_breakpoints",
    "interval_midpoints",
    "interval_expected_values",
]

# Coefficients of Acklam's rational approximation to the normal quantile.
_A = (
    -3.969683028665376e01,
    2.209460984245205e02,
    -2.759285104469687e02,
    1.383577518672690e02,
    -3.066479806614716e01,
    2.506628277459239e00,
)
_B = (
    -5.447609879822406e01,
    1.615858368580409e02,
    -1.556989798598866e02,
    6.680131188771972e01,
    -1.328068155288572e01,
)
_C = (
    -7.784894002430293e-03,
    -3.223964580411365e-01,
    -2.400758277161838e00,
    -2.549732539343734e00,
    4.374664141464968e00,
    2.938163982698783e00,
)
_D = (
    7.784695709041462e-03,
    3.224671290700398e-01,
    2.445134137142996e00,
    3.754408661907416e00,
)

_P_LOW = 0.02425
_P_HIGH = 1.0 - _P_LOW


def _acklam(p: float) -> float:
    """Acklam's initial estimate of ``Phi^{-1}(p)`` for ``0 < p < 1``."""
    if p < _P_LOW:
        q = math.sqrt(-2.0 * math.log(p))
        return (
            ((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]
        ) / ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0)
    if p > _P_HIGH:
        return -_acklam(1.0 - p)
    q = p - 0.5
    r = q * q
    return (
        (((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r + _A[4]) * r + _A[5])
        * q
        / (((((_B[0] * r + _B[1]) * r + _B[2]) * r + _B[3]) * r + _B[4]) * r + 1.0)
    )


def inverse_normal_cdf(p: float) -> float:
    """Standard normal quantile function ``Phi^{-1}(p)``.

    Accurate to ~1e-12 via one Halley refinement of Acklam's estimate.
    """
    if not 0.0 < p < 1.0:
        raise DataError(f"quantile argument must be in (0, 1), got {p}")
    x = _acklam(p)
    # One Halley iteration: drives the residual of Phi(x) - p toward zero.
    e = 0.5 * math.erfc(-x / math.sqrt(2.0)) - p
    u = e * math.sqrt(2.0 * math.pi) * math.exp(x * x / 2.0)
    return x - u / (1.0 + x * u / 2.0)


def _normal_pdf(x: float) -> float:
    return math.exp(-0.5 * x * x) / math.sqrt(2.0 * math.pi)


def _normal_cdf(x: float) -> float:
    return 0.5 * math.erfc(-x / math.sqrt(2.0))


def gaussian_breakpoints(alphabet_size: int) -> np.ndarray:
    """The ``alphabet_size - 1`` interior breakpoints for equiprobable symbols.

    Symbol ``i`` covers the interval ``(breakpoints[i-1], breakpoints[i]]``
    with the outermost intervals extending to ±infinity; each has probability
    ``1 / alphabet_size`` under N(0, 1).
    """
    if alphabet_size < 2:
        raise DataError(f"alphabet_size must be >= 2, got {alphabet_size}")
    quantiles = np.arange(1, alphabet_size) / alphabet_size
    return np.array([inverse_normal_cdf(float(q)) for q in quantiles])


def interval_midpoints(alphabet_size: int) -> np.ndarray:
    """A representative value per symbol: the median of its interval.

    The median of symbol ``i``'s interval is the ``(i + 0.5)/a`` quantile,
    finite even for the unbounded outer intervals — the default decode value.
    """
    quantiles = (np.arange(alphabet_size) + 0.5) / alphabet_size
    return np.array([inverse_normal_cdf(float(q)) for q in quantiles])


def interval_expected_values(alphabet_size: int) -> np.ndarray:
    """E[Z | Z in interval_i] for each symbol — the alternative decode value.

    For a truncated standard normal on (lo, hi] the conditional mean is
    ``(pdf(lo) - pdf(hi)) / (cdf(hi) - cdf(lo))``.
    """
    breakpoints = gaussian_breakpoints(alphabet_size)
    edges = np.concatenate(([-math.inf], breakpoints, [math.inf]))
    values = np.empty(alphabet_size, dtype=float)
    for i in range(alphabet_size):
        lo, hi = edges[i], edges[i + 1]
        pdf_lo = 0.0 if math.isinf(lo) else _normal_pdf(lo)
        pdf_hi = 0.0 if math.isinf(hi) else _normal_pdf(hi)
        cdf_lo = 0.0 if lo == -math.inf else _normal_cdf(lo)
        cdf_hi = 1.0 if hi == math.inf else _normal_cdf(hi)
        values[i] = (pdf_lo - pdf_hi) / (cdf_hi - cdf_lo)
    return values

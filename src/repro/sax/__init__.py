"""Symbolic Aggregate approXimation (SAX) quantization substrate.

Section III-B of the paper quantizes each dimension on both axes before
tokenization: the time axis via Piecewise Aggregate Approximation (PAA) with
segment length ``w``, and the value axis via equiprobable Gaussian breakpoints
for an alphabet of size ``a``.  Symbols can be alphabetical (``a``, ``b``, …)
or digital (``0``-``9``); the digital alphabet is capped at 10 symbols, which
is why Table IX reports N/A for digital SAX at alphabet size 20.
"""

from repro.sax.paa import inverse_paa, num_segments, paa, paa_weights
from repro.sax.breakpoints import (
    gaussian_breakpoints,
    interval_expected_values,
    interval_midpoints,
    inverse_normal_cdf,
)
from repro.sax.encoder import SaxAlphabet, SaxEncoder

__all__ = [
    "paa",
    "paa_weights",
    "inverse_paa",
    "num_segments",
    "gaussian_breakpoints",
    "interval_midpoints",
    "interval_expected_values",
    "inverse_normal_cdf",
    "SaxAlphabet",
    "SaxEncoder",
]

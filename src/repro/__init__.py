"""repro: a full reproduction of MultiCast (ICDE 2024).

Zero-shot multivariate time series forecasting with (simulated) LLMs:
dimensional multiplexing (DI / VI / VC), SAX quantization, an in-context
language-model substrate, and the paper's baselines (LLMTime, ARIMA, LSTM).

Quickstart::

    from repro import ForecastSpec, MultiCastForecaster
    from repro.data import gas_rate

    history, future = gas_rate().train_test_split()
    spec = ForecastSpec(series=history, horizon=len(future), scheme="vi")
    output = MultiCastForecaster().forecast(spec)

The headline API is re-exported here; the subpackages hold the full
surface (see docs/API.md for the map).
"""

from repro.adapters import ForecastingHorizon
from repro.adapters import MultiCastForecaster as MultiCastEstimator
from repro.baselines import available_estimators, make_estimator
from repro.core import (
    PROMPT_STRATEGIES,
    BaseEstimator,
    Estimator,
    ForecastOutput,
    ForecastSpec,
    MultiCastConfig,
    MultiCastForecaster,
    SaxConfig,
    plan_forecast,
)
from repro.exceptions import (
    ConfigError,
    DataError,
    EncodingError,
    FittingError,
    GenerationError,
    ReproError,
    ScalingError,
)
from repro.observability import RunLedger, Tracer
from repro.scheduling import ContinuousScheduler, RadixPrefillTree
from repro.serving import ForecastEngine, ForecastRequest, ForecastResponse
from repro.strategies import PromptStrategy
from repro.sweeps import SweepReport, SweepRunner, SweepSpec

__version__ = "1.3.0"

__all__ = [
    "ForecastSpec",
    "Estimator",
    "BaseEstimator",
    "MultiCastEstimator",
    "ForecastingHorizon",
    "make_estimator",
    "available_estimators",
    "SweepSpec",
    "SweepRunner",
    "SweepReport",
    "MultiCastConfig",
    "MultiCastForecaster",
    "SaxConfig",
    "ForecastOutput",
    "PromptStrategy",
    "PROMPT_STRATEGIES",
    "ForecastEngine",
    "ForecastRequest",
    "ForecastResponse",
    "ContinuousScheduler",
    "RadixPrefillTree",
    "Tracer",
    "RunLedger",
    "plan_forecast",
    "ReproError",
    "ConfigError",
    "DataError",
    "EncodingError",
    "FittingError",
    "GenerationError",
    "ScalingError",
    "__version__",
]

"""repro: a full reproduction of MultiCast (ICDE 2024).

Zero-shot multivariate time series forecasting with (simulated) LLMs:
dimensional multiplexing (DI / VI / VC), SAX quantization, an in-context
language-model substrate, and the paper's baselines (LLMTime, ARIMA, LSTM).

Quickstart::

    from repro import MultiCastConfig, MultiCastForecaster
    from repro.data import gas_rate

    history, future = gas_rate().train_test_split()
    forecaster = MultiCastForecaster(MultiCastConfig(scheme="vi"))
    output = forecaster.forecast(history, horizon=len(future))

The headline API is re-exported here; the subpackages hold the full
surface (see docs/API.md for the map).
"""

from repro.core import (
    ForecastOutput,
    MultiCastConfig,
    MultiCastForecaster,
    SaxConfig,
    plan_forecast,
)
from repro.exceptions import ReproError

__version__ = "1.0.0"

__all__ = [
    "MultiCastConfig",
    "MultiCastForecaster",
    "SaxConfig",
    "ForecastOutput",
    "plan_forecast",
    "ReproError",
    "__version__",
]

"""Table I — the dataset summary."""

from __future__ import annotations

from repro.data import load_paper_datasets
from repro.evaluation.results import TableResult

__all__ = ["table_i"]


def table_i() -> TableResult:
    """Datasets: name, dimensionality, length (paper Table I)."""
    table = TableResult(
        table_id="Table I",
        title="Datasets",
        header=["Dataset", "Dimensions", "Length"],
    )
    for dataset in load_paper_datasets():
        row = dataset.summary_row()
        table.add_row(row["dataset"], row["dimensions"], row["length"])
    table.notes.append(
        "Synthetic stand-ins with the paper's shapes/correlations (DESIGN.md §2)."
    )
    return table

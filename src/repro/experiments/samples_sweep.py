"""Table VII — accuracy and time for an increasing number of samples.

The paper sweeps the per-forecast sample count over {5, 10, 20} on the Gas
Rate dataset and reports, for each LLM-based method, the RMSE (first
dimension) with the execution time underneath.  The structural finding we
reproduce is that execution time roughly doubles when the sample count
doubles — pure token-count arithmetic.  One known deviation, recorded in
EXPERIMENTS.md: under exact token accounting MultiCast DI/VI emit *fewer*
tokens per timestamp than per-dimension LLMTime (the separator is amortised
across dimensions), so their times land slightly below LLMTime's instead of
the paper's ~1 % above; VC remains the slowest variant, as in the paper.
The RMSE trends in the paper are noisy; we report measured values and
assert only the timing shape.
"""

from __future__ import annotations

from repro.data import gas_rate
from repro.evaluation import TableResult, evaluate_method

__all__ = ["table_vii", "SWEEP_METHODS"]

SWEEP_METHODS = ("multicast-di", "multicast-vi", "multicast-vc", "llmtime")

_LABELS = {
    "multicast-di": "MultiCast (DI)",
    "multicast-vi": "MultiCast (VI)",
    "multicast-vc": "MultiCast (VC)",
    "llmtime": "LLMTIME",
}


def table_vii(
    sample_counts: tuple[int, ...] = (5, 10, 20), seed: int = 0
) -> TableResult:
    """RMSE (GasRate dimension) and seconds per method per sample count.

    Two physical rows per method, like the paper: RMSE first, the reported
    execution time (simulated seconds from the token cost model) underneath.
    """
    dataset = gas_rate()
    table = TableResult(
        table_id="Table VII",
        title="Performance for an increasing number of samples (Gas Rate)",
        header=["Method", *(str(s) for s in sample_counts)],
    )
    for method in SWEEP_METHODS:
        errors = []
        seconds = []
        for count in sample_counts:
            result = evaluate_method(
                method, dataset, seed=seed, num_samples=count
            )
            errors.append(result.rmse_per_dim["GasRate"])
            seconds.append(result.reported_seconds)
        table.add_row(_LABELS[method], *errors)
        table.add_row(f"{_LABELS[method]} [sec]", *(round(s) for s in seconds))
    table.notes.append(
        "Paper: time ~doubles per doubling of samples; LLMTIME slightly "
        "faster in total; MultiCast RMSE improves with more samples."
    )
    return table

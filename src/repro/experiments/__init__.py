"""Per-table / per-figure reproduction drivers.

Each function regenerates one table or figure of the paper's evaluation
(Section IV) and returns a structured result that the benchmark suite prints
and asserts *shape* properties against.  The mapping to the paper is indexed
in DESIGN.md section 4.
"""

from repro.experiments.accuracy import (
    PAPER_METHODS,
    accuracy_table,
    table_iv,
    table_v,
    table_vi,
)
from repro.experiments.model_selection import table_iii
from repro.experiments.samples_sweep import table_vii
from repro.experiments.sax_sweep import table_ix, table_viii
from repro.experiments.figures import (
    FigureResult,
    figure_2,
    figure_3,
    figure_4,
    figure_5,
    figure_6,
    figure_7,
    figure_8,
)
from repro.experiments.datasets_table import table_i
from repro.experiments.tokenizer_study import tokenizer_comparison_table
from repro.experiments.scaling_studies import context_length_study, dimensionality_study
from repro.experiments.extended import (
    EXTENDED_METHODS,
    extended_accuracy_table,
    extended_report,
)
from repro.experiments.paper_values import (
    PAPER_TABLE_III,
    PAPER_TABLE_IV,
    PAPER_TABLE_V,
    PAPER_TABLE_VI,
    PAPER_TABLE_VII_RMSE,
    PAPER_TABLE_VII_SECONDS,
    PAPER_TABLE_VIII,
    PAPER_TABLE_IX,
    comparison_report,
)

__all__ = [
    "EXTENDED_METHODS",
    "tokenizer_comparison_table",
    "dimensionality_study",
    "context_length_study",
    "extended_accuracy_table",
    "extended_report",
    "comparison_report",
    "PAPER_TABLE_III",
    "PAPER_TABLE_IV",
    "PAPER_TABLE_V",
    "PAPER_TABLE_VI",
    "PAPER_TABLE_VII_RMSE",
    "PAPER_TABLE_VII_SECONDS",
    "PAPER_TABLE_VIII",
    "PAPER_TABLE_IX",
    "PAPER_METHODS",
    "accuracy_table",
    "table_i",
    "table_iii",
    "table_iv",
    "table_v",
    "table_vi",
    "table_vii",
    "table_viii",
    "table_ix",
    "FigureResult",
    "figure_2",
    "figure_3",
    "figure_4",
    "figure_5",
    "figure_6",
    "figure_7",
    "figure_8",
]

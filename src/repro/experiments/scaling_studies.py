"""Scaling studies: dimensionality and context length.

Two questions the paper raises but does not isolate:

* **Dimensionality** (Table V discussion): "a possible drop in the
  performance of MultiCast as the dimensionality of the time series
  increases since there is the extra step of demultiplexing the input that
  the LLMs must infer."  :func:`dimensionality_study` probes it directly on
  synthetic families with d = 2..8 equally-coupled dimensions, comparing
  multiplexed MultiCast against per-dimension LLMTime as ``d`` grows —
  with the group length ``d·b`` growing linearly in ``d``, the in-context
  model's effective pattern horizon shrinks, so the multiplexing burden is
  measurable.
* **Context length** (the paper's token-cost discussion): how much history
  does zero-shot forecasting actually need?  :func:`context_length_study`
  sweeps the prompt budget and reports the accuracy/token trade-off.
"""

from __future__ import annotations

import numpy as np

from repro.data import synthetic_multivariate
from repro.evaluation import TableResult
from repro.evaluation.protocol import run_method
from repro.exceptions import ConfigError
from repro.metrics import rmse

__all__ = ["dimensionality_study", "context_length_study"]


def _mean_rmse(actual: np.ndarray, forecast: np.ndarray) -> float:
    """RMSE averaged over dimensions (each dimension is unit-scale here)."""
    return float(
        np.mean([rmse(actual[:, k], forecast[:, k]) for k in range(actual.shape[1])])
    )


def dimensionality_study(
    dims: tuple[int, ...] = (2, 3, 4, 6, 8),
    n: int = 160,
    num_samples: int = 5,
    seed: int = 0,
) -> TableResult:
    """Mean RMSE of multiplexed vs per-dimension forecasting as d grows.

    All dimensions share the same coupled-seasonal generator, so the mean
    per-dimension RMSE is comparable across ``d``.
    """
    if min(dims) < 2:
        raise ConfigError("dimensionality study starts at d=2")
    table = TableResult(
        table_id="Dimensionality",
        title="Mean RMSE vs number of dimensions (coupled synthetic)",
        header=["Method", *(str(d) for d in dims)],
    )
    cells: dict[str, list[float]] = {
        "multicast-di": [], "multicast-vi": [], "multicast-vc": [], "llmtime": [],
    }
    for d in dims:
        dataset = synthetic_multivariate(n=n, num_dims=d, seed=seed + d)
        history, actual = dataset.train_test_split(0.2)
        horizon = actual.shape[0]
        for method in cells:
            output = run_method(
                method, history, horizon, seed=seed, num_samples=num_samples
            )
            cells[method].append(_mean_rmse(actual, output.values))
    for method, errors in cells.items():
        table.add_row(method, *errors)
    table.notes.append(
        "Paper (Table V discussion): MultiCast may degrade with "
        "dimensionality because the model must also infer the "
        "demultiplexing; LLMTime is per-dimension and insensitive to d."
    )
    return table


def context_length_study(
    budgets: tuple[int, ...] = (128, 256, 512, 1024, 2048),
    num_samples: int = 5,
    seed: int = 0,
) -> TableResult:
    """Accuracy vs prompt budget, on stationary and trending series.

    Two regimes with opposite answers:

    * **stationary seasonal** — more history means more pattern repetitions
      to match against, so accuracy improves monotonically with budget;
    * **trending** — old history sits at *stale levels*, and the plain PPM
      weighs a 500-step-old match as much as yesterday's, so long contexts
      actively mislead it.  The recency-weighted PPM (decayed counts — the
      closest analogue of attention's recency bias) largely repairs the
      regression, which is why the study reports it alongside.
    """
    if min(budgets) < 16:
        raise ConfigError("context budgets below 16 tokens are meaningless")
    table = TableResult(
        table_id="Context length",
        title="Mean RMSE vs prompt budget (multicast-di, coupled synthetic)",
        header=["Series / backend", *(str(b) for b in budgets)],
    )
    configurations = [
        ("stationary, llama2-sim", 0.0, "llama2-7b-sim"),
        ("trending, llama2-sim", 0.01, "llama2-7b-sim"),
        ("trending, recency-ppm", 0.01, "ppm-recency-sim"),
    ]
    for label, trend, model in configurations:
        dataset = synthetic_multivariate(
            n=600, num_dims=2, period=24.0, trend=trend,
            noise_scale=0.1, seed=seed,
        )
        history, actual = dataset.train_test_split(0.1)
        horizon = actual.shape[0]
        errors = []
        for budget in budgets:
            output = run_method(
                "multicast-di", history, horizon, seed=seed,
                num_samples=num_samples, max_context_tokens=budget,
                model=model,
            )
            errors.append(_mean_rmse(actual, output.values))
        table.add_row(label, *errors)
    table.notes.append(
        "Stationary data: longer context helps monotonically. Trending "
        "data: stale-level matches mislead plain PPM; recency weighting "
        "repairs most of the regression."
    )
    return table

"""Table III — backend model comparison (Section IV-B).

The paper runs MultiCast (VI) on Gas Rate with LLaMA2-7B and with Phi-2 and
finds LLaMA2 roughly twice as accurate on both dimensions.  We reproduce the
comparison with the simulated presets: the phi2 stand-in has a shallow
context order and noisy sampling, which degrades its RMSE by about the same
factor.
"""

from __future__ import annotations

from repro.data import gas_rate
from repro.evaluation import TableResult, evaluate_method

__all__ = ["table_iii", "MODEL_PRESETS"]

MODEL_PRESETS = {
    "MultiCast (LLaMA2 / 7B)": "llama2-7b-sim",
    "MultiCast (Phi-2 / 2.7B)": "phi2-2.7b-sim",
}


def table_iii(num_samples: int = 5, seed: int = 0) -> TableResult:
    """RMSE of MultiCast (VI) on Gas Rate under both backend models."""
    dataset = gas_rate()
    table = TableResult(
        table_id="Table III",
        title="LLM model comparison (Gas Rate, MultiCast VI)",
        header=["Model", "GasRate", "CO2"],
    )
    for label, model_name in MODEL_PRESETS.items():
        result = evaluate_method(
            "multicast-vi",
            dataset,
            seed=seed,
            model=model_name,
            num_samples=num_samples,
        )
        table.add_row(
            label,
            result.rmse_per_dim["GasRate"],
            result.rmse_per_dim["CO2"],
        )
    table.notes.append(
        "Paper: LLaMA2 1.154 / 2.71, Phi-2 2.106 / 4.676 (~2x gap)."
    )
    return table

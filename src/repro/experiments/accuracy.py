"""Tables IV-VI — forecasting RMSE per dataset and method (Section IV-C).

Each table pits the three MultiCast variants against LLMTime, ARIMA, and the
LSTM on one dataset, reporting RMSE per dimension.  The paper finds no
uniform winner — the best method varies by dimension and dataset — and that
is the property the benchmark asserts, alongside sanity bands on the error
magnitudes.
"""

from __future__ import annotations

from repro.data import Dataset, electricity, gas_rate, weather
from repro.evaluation import TableResult, evaluate_method

__all__ = ["PAPER_METHODS", "accuracy_table", "table_iv", "table_v", "table_vi"]

PAPER_METHODS = (
    "multicast-di",
    "multicast-vi",
    "multicast-vc",
    "llmtime",
    "arima",
    "lstm",
)

_METHOD_LABELS = {
    "multicast-di": "MultiCast (DI)",
    "multicast-vi": "MultiCast (VI)",
    "multicast-vc": "MultiCast (VC)",
    "multicast-bi": "MultiCast (BI)",
    "llmtime": "LLMTIME",
    "arima": "ARIMA",
    "lstm": "LSTM",
    "naive": "Naive",
    "drift": "Drift",
}


def accuracy_table(
    dataset: Dataset,
    table_id: str,
    num_samples: int = 5,
    seed: int = 0,
    methods: tuple[str, ...] = PAPER_METHODS,
) -> TableResult:
    """Per-dimension RMSE of every method on one dataset."""
    table = TableResult(
        table_id=table_id,
        title=f"Forecasting RMSE for the {dataset.name} dataset",
        header=["Model", *dataset.dim_names],
    )
    for method in methods:
        options: dict = {}
        if method.startswith("multicast") or method == "llmtime":
            options["num_samples"] = num_samples
        result = evaluate_method(method, dataset, seed=seed, **options)
        table.add_row(
            _METHOD_LABELS.get(method, method),
            *(result.rmse_per_dim[name] for name in dataset.dim_names),
        )
    return table


def table_iv(num_samples: int = 5, seed: int = 0) -> TableResult:
    """Gas Rate (paper Table IV)."""
    table = accuracy_table(gas_rate(), "Table IV", num_samples, seed)
    table.notes.append(
        "Paper: LLMTIME best on GasRate (0.703), ARIMA best on CO2 (2.63)."
    )
    return table


def table_v(num_samples: int = 5, seed: int = 0) -> TableResult:
    """Electricity (paper Table V)."""
    table = accuracy_table(electricity(), "Table V", num_samples, seed)
    table.notes.append(
        "Paper: MultiCast (VC) best on HUFL (2.424), ARIMA best on OT (4.181)."
    )
    return table


def table_vi(num_samples: int = 5, seed: int = 0) -> TableResult:
    """Weather (paper Table VI)."""
    table = accuracy_table(weather(), "Table VI", num_samples, seed)
    table.notes.append(
        "Paper: winners vary per dimension; MultiCast (VI) best on VPmax."
    )
    return table

"""The paper's published numbers, as structured data.

Digitised from the tables of the ICDE 2024 paper so that benchmark output
can be compared side-by-side programmatically (``comparison_report``) and
EXPERIMENTS.md can be regenerated without re-reading the PDF.  RMSE cells
are keyed ``[method][dimension]``; timing cells are seconds.
"""

from __future__ import annotations

from repro.evaluation.results import TableResult, format_table

__all__ = [
    "PAPER_TABLE_III",
    "PAPER_TABLE_IV",
    "PAPER_TABLE_V",
    "PAPER_TABLE_VI",
    "PAPER_TABLE_VII_RMSE",
    "PAPER_TABLE_VII_SECONDS",
    "PAPER_TABLE_VIII",
    "PAPER_TABLE_IX",
    "comparison_report",
]

PAPER_TABLE_III = {
    "MultiCast (LLaMA2 / 7B)": {"GasRate": 1.154, "CO2": 2.71},
    "MultiCast (Phi-2 / 2.7B)": {"GasRate": 2.106, "CO2": 4.676},
}

PAPER_TABLE_IV = {
    "MultiCast (DI)": {"GasRate": 0.781, "CO2": 4.639},
    "MultiCast (VI)": {"GasRate": 1.154, "CO2": 2.71},
    "MultiCast (VC)": {"GasRate": 0.965, "CO2": 3.626},
    "LLMTIME": {"GasRate": 0.703, "CO2": 2.75},
    "ARIMA": {"GasRate": 0.92, "CO2": 2.63},
    "LSTM": {"GasRate": 1.122, "CO2": 3.89},
}

PAPER_TABLE_V = {
    "MultiCast (DI)": {"HUFL": 5.914, "HULL": 1.444, "OT": 9.198},
    "MultiCast (VI)": {"HUFL": 8.63, "HULL": 1.882, "OT": 13.752},
    "MultiCast (VC)": {"HUFL": 2.424, "HULL": 1.913, "OT": 10.230},
    "LLMTIME": {"HUFL": 4.299, "HULL": 1.432, "OT": 7.543},
    "ARIMA": {"HUFL": 7.063, "HULL": 1.572, "OT": 4.181},
    "LSTM": {"HUFL": 4.892, "HULL": 1.43, "OT": 8.740},
}

PAPER_TABLE_VI = {
    "MultiCast (DI)": {"Tlog": 3.711, "H2OC": 2.43, "VPmax": 3.025, "Tpot": 6.888},
    "MultiCast (VI)": {"Tlog": 3.26, "H2OC": 2.122, "VPmax": 2.387, "Tpot": 11.352},
    "MultiCast (VC)": {"Tlog": 4.983, "H2OC": 3.819, "VPmax": 5.776, "Tpot": 5.993},
    "LLMTIME": {"Tlog": 3.14, "H2OC": 1.746, "VPmax": 4.044, "Tpot": 6.981},
    "ARIMA": {"Tlog": 3.324, "H2OC": 2.686, "VPmax": 4.331, "Tpot": 6.067},
    "LSTM": {"Tlog": 3.524, "H2OC": 1.796, "VPmax": 2.708, "Tpot": 5.559},
}

PAPER_TABLE_VII_RMSE = {
    "MultiCast (DI)": {5: 0.781, 10: 0.762, 20: 0.592},
    "MultiCast (VI)": {5: 0.965, 10: 1.302, 20: 0.877},
    "MultiCast (VC)": {5: 1.154, 10: 0.704, 20: 0.63},
    "LLMTIME": {5: 0.703, 10: 0.606, 20: 0.842},
}

PAPER_TABLE_VII_SECONDS = {
    "MultiCast (DI)": {5: 1036, 10: 2050, 20: 4159},
    "MultiCast (VI)": {5: 1041, 10: 2068, 20: 4131},
    "MultiCast (VC)": {5: 1168, 10: 2468, 20: 4981},
    "LLMTIME": {5: 1023, 10: 1939, 20: 3684},
}

# (rmse, seconds) per SAX segment length for the CO2 dimension.
PAPER_TABLE_VIII = {
    "MultiCast SAX (alphabetical)": {3: (1.089, 148), 6: (0.983, 77), 9: (0.888, 54)},
    "MultiCast SAX (digital)": {3: (0.992, 156), 6: (0.99, 71), 9: (0.912, 52)},
    "MultiCast": (0.781, 1168),
}

# (rmse, seconds) per SAX alphabet size; None marks the N/A cell.
PAPER_TABLE_IX = {
    "MultiCast SAX (alphabetical)": {5: (0.983, 77), 10: (1.198, 81), 20: (1.273, 83)},
    "MultiCast SAX (digital)": {5: (0.99, 71), 10: (1.21, 75), 20: None},
    "MultiCast": (0.781, 1168),
}


def comparison_report(
    measured: TableResult,
    paper: dict[str, dict[str, float]],
    dimensions: list[str],
) -> str:
    """Render measured-vs-paper cells for one accuracy table.

    ``measured`` is the regenerated :class:`TableResult`; ``paper`` one of
    the ``PAPER_TABLE_*`` RMSE dicts sharing its row labels.
    """
    header = ["Model"]
    for dim in dimensions:
        header += [f"{dim} (paper)", f"{dim} (measured)"]
    rows = []
    for label, paper_cells in paper.items():
        row: list[object] = [label]
        for dim in dimensions:
            row.append(paper_cells[dim])
            row.append(measured.cell(label, dim))
        rows.append(row)
    return format_table(header, rows, title=f"{measured.table_id}: paper vs measured")

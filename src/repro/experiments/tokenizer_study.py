"""Tokenizer-adaptation study (paper Section III-A, citing LLMTime).

The paper notes that "depending on the LLM used, its tokenizer must be
adapted accordingly, as discussed in [15]".  The LLMTime discussion it
cites is the GPT-3 BPE problem: byte-pair encoding merges digit runs into
multi-digit tokens *inconsistently* (``1723`` might tokenize as ``17|23``
or ``172|3`` depending on context), which destroys the aligned digit
structure the model needs.  LLaMA-style tokenizers emit one token per
digit, which is why LLMTime (and MultiCast after it) prefer them.

This study reproduces the effect with the simulated substrate: the same
univariate forecasting pipeline is run once with digit-level tokens and
once with a minimal BPE stand-in.  The crucial BPE property is that merges
are *frequency-driven and partial* — only some digit pairs exist as vocab
entries — so how a number splits depends on its digit values: ``172``
tokenizes as ``17|2`` (the ``17`` merge exists) while ``723`` becomes
``7|23`` (no ``72`` merge, but ``23`` exists).  The stand-in merges a pair
exactly when its value is below 50, giving the same value-dependent,
alignment-breaking splits; the in-context model's accuracy degrades,
matching the LLMTime finding.
"""

from __future__ import annotations

import numpy as np

from repro.data import gas_rate
from repro.encoding.vocabulary import Vocabulary
from repro.evaluation import TableResult
from repro.exceptions import EncodingError
from repro.llm import SetConstraint, get_model
from repro.metrics import rmse
from repro.scaling import FixedDigitScaler

__all__ = ["paired_digit_vocabulary", "tokenizer_comparison_table"]


class _MultiTokenVocabulary:
    """A vocabulary whose tokens may be multi-character digit strings."""

    def __init__(self, tokens: list[str]) -> None:
        if len(set(tokens)) != len(tokens):
            raise EncodingError("vocabulary tokens must be unique")
        self.tokens = tuple(tokens)
        self._ids = {token: i for i, token in enumerate(self.tokens)}

    def __len__(self) -> int:
        return len(self.tokens)

    def id_of(self, token: str) -> int:
        try:
            return self._ids[token]
        except KeyError:
            raise EncodingError(f"token {token!r} not in vocabulary") from None

    def decode(self, ids) -> list[str]:
        return [self.tokens[i] for i in ids]


#: A pair is a vocabulary entry only when its value is below this bound —
#: the "partial merge table" that makes BPE splits value-dependent.
MERGE_BOUND = 50


def paired_digit_vocabulary() -> _MultiTokenVocabulary:
    """Singles ``0-9``, merged pairs ``00-49``, and the comma.

    A minimal BPE caricature: only the (more frequent) low pairs were
    merged during "training", so high pairs must fall back to singles —
    the partial merge table that produces inconsistent splits.
    """
    singles = [str(d) for d in range(10)]
    pairs = [str(v).zfill(2) for v in range(MERGE_BOUND)]
    return _MultiTokenVocabulary(singles + pairs + [","])


def _tokenize_paired(text: str, vocabulary: _MultiTokenVocabulary) -> list[int]:
    """Greedy longest-match tokenization with a partial merge table.

    ``172`` → ``17|2`` but ``723`` → ``7|23``: the split position depends
    on the digit values, so identical digit *positions* land in different
    token positions across timestamps — the alignment breakage GPT-style
    BPE inflicts on numeric streams.
    """
    ids = []
    i = 0
    while i < len(text):
        if text[i] == ",":
            ids.append(vocabulary.id_of(","))
            i += 1
            continue
        pair = text[i : i + 2]
        if len(pair) == 2 and pair.isdigit() and int(pair) < MERGE_BOUND:
            ids.append(vocabulary.id_of(pair))
            i += 2
        else:
            ids.append(vocabulary.id_of(text[i]))
            i += 1
    return ids


def _forecast_univariate(
    series: np.ndarray,
    horizon: int,
    tokenizer: str,
    num_digits: int = 3,
    num_samples: int = 5,
    model_name: str = "llama2-7b-sim",
    seed: int = 0,
) -> np.ndarray:
    """The LLMTime pipeline under either tokenizer, median over samples."""
    scaler = FixedDigitScaler(num_digits=num_digits).fit(series)
    codes = scaler.transform(series)
    text = ",".join(str(c).zfill(num_digits) for c in codes) + ","

    if tokenizer == "digit":
        vocabulary = Vocabulary([str(d) for d in range(10)] + [","])
        prompt = [vocabulary.id_of(ch) for ch in text]
        tokens_needed = horizon * (num_digits + 1)
    elif tokenizer == "paired":
        vocabulary = paired_digit_vocabulary()
        prompt = _tokenize_paired(text, vocabulary)
        # Token count per timestamp is value-dependent under partial
        # merging; request the digit-level worst case and truncate.
        tokens_needed = horizon * (num_digits + 1)
    else:
        raise EncodingError(f"unknown tokenizer {tokenizer!r}")

    model = get_model(model_name, vocab_size=len(vocabulary))
    constraint = SetConstraint(range(len(vocabulary)))
    rng = np.random.default_rng(seed)
    samples = np.empty((num_samples, horizon))
    for s in range(num_samples):
        result = model.generate(
            prompt, tokens_needed,
            np.random.default_rng(rng.integers(2**63)),
            constraint=constraint,
        )
        generated_text = "".join(vocabulary.decode(result.tokens))
        values = []
        for group in generated_text.split(","):
            if group.isdigit() and group:
                values.append(int(group[:num_digits].ljust(num_digits, "0")))
        decoded = scaler.inverse_transform(np.asarray(values, dtype=float))
        if decoded.size < horizon:
            pad = decoded[-1] if decoded.size else series[-1]
            decoded = np.concatenate([decoded, np.full(horizon - decoded.size, pad)])
        samples[s] = decoded[:horizon]
    return np.median(samples, axis=0)


def tokenizer_comparison_table(
    num_samples: int = 5, seed: int = 0
) -> TableResult:
    """Digit-level vs paired (BPE-style) tokenization on Gas Rate."""
    dataset = gas_rate()
    history, future = dataset.train_test_split()
    table = TableResult(
        table_id="Tokenizer study",
        title="Digit-level vs BPE-style paired tokens (Gas Rate, per dim)",
        header=["Tokenizer", "GasRate", "CO2"],
    )
    for tokenizer in ("digit", "paired"):
        errors = []
        for k in range(2):
            forecast = _forecast_univariate(
                history[:, k], future.shape[0], tokenizer,
                num_samples=num_samples, seed=seed,
            )
            errors.append(rmse(future[:, k], forecast))
        table.add_row(tokenizer, *errors)
    table.notes.append(
        "LLMTime's finding, reproduced in simulation: inconsistent digit "
        "merging breaks the aligned structure in-context learning needs."
    )
    return table

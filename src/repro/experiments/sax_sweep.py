"""Tables VIII and IX — the SAX quantization sweeps (Section IV-E).

Both sweeps run MultiCast (DI) on the CO2 dimension of the Gas Rate dataset:

* **Table VIII** increases the SAX *segment length* over {3, 6, 9} for both
  symbol encodings.  Reproduced shape: inference is more than an order of
  magnitude faster than the non-quantized run, the time falls further as
  segments grow (fewer symbols to generate), and the RMSE is moderately
  worse than raw MultiCast.
* **Table IX** increases the SAX *alphabet size* over {5, 10, 20} at segment
  length 6.  Reproduced shape: execution time is essentially flat in the
  alphabet size, RMSE tends to degrade with larger alphabets, and digital
  SAX is N/A at size 20 (only ten digit symbols exist).
"""

from __future__ import annotations

from repro.data import gas_rate
from repro.evaluation import TableResult, evaluate_method
from repro.exceptions import ConfigError

__all__ = ["table_viii", "table_ix", "sax_cell", "BASE_SCHEME"]

BASE_SCHEME = "multicast-di"
TARGET_DIMENSION = "CO2"


def sax_cell(
    segment_length: int,
    alphabet_size: int,
    alphabet_kind: str,
    num_samples: int = 5,
    seed: int = 0,
) -> tuple[float, float]:
    """One (RMSE, reported seconds) cell of the SAX sweeps."""
    result = evaluate_method(
        BASE_SCHEME,
        gas_rate(),
        seed=seed,
        num_samples=num_samples,
        sax={
            "segment_length": segment_length,
            "alphabet_size": alphabet_size,
            "alphabet_kind": alphabet_kind,
        },
    )
    return result.rmse_per_dim[TARGET_DIMENSION], result.reported_seconds


def _raw_cell(num_samples: int, seed: int) -> tuple[float, float]:
    result = evaluate_method(
        BASE_SCHEME, gas_rate(), seed=seed, num_samples=num_samples
    )
    return result.rmse_per_dim[TARGET_DIMENSION], result.reported_seconds


def table_viii(
    segment_lengths: tuple[int, ...] = (3, 6, 9),
    num_samples: int = 5,
    seed: int = 0,
) -> TableResult:
    """Increasing SAX segment length (paper Table VIII)."""
    table = TableResult(
        table_id="Table VIII",
        title="Increasing SAX segment length (Gas Rate, CO2 dimension)",
        header=["Method", *(str(w) for w in segment_lengths)],
    )
    for kind in ("alphabetical", "digital"):
        errors, seconds = [], []
        for w in segment_lengths:
            error, sec = sax_cell(w, 5, kind, num_samples, seed)
            errors.append(error)
            seconds.append(sec)
        table.add_row(f"MultiCast SAX ({kind})", *errors)
        table.add_row(f"MultiCast SAX ({kind}) [sec]", *(round(s) for s in seconds))
    raw_error, raw_seconds = _raw_cell(num_samples, seed)
    table.add_row("MultiCast", raw_error, "", "")
    table.add_row("MultiCast [sec]", round(raw_seconds), "", "")
    table.notes.append(
        "Paper: SAX is >10x faster (52-156 s vs 1168 s) with modestly worse "
        "RMSE (0.888-1.089 vs 0.781)."
    )
    return table


def table_ix(
    alphabet_sizes: tuple[int, ...] = (5, 10, 20),
    segment_length: int = 6,
    num_samples: int = 5,
    seed: int = 0,
) -> TableResult:
    """Increasing SAX alphabet size (paper Table IX)."""
    table = TableResult(
        table_id="Table IX",
        title="Increasing SAX alphabet size (Gas Rate, CO2 dimension)",
        header=["Method", *(str(a) for a in alphabet_sizes)],
    )
    for kind in ("alphabetical", "digital"):
        errors: list[object] = []
        seconds: list[object] = []
        for size in alphabet_sizes:
            try:
                error, sec = sax_cell(segment_length, size, kind, num_samples, seed)
            except ConfigError:
                # Digital symbols stop at ten — the paper's N/A cell.
                errors.append("N/A")
                seconds.append("N/A")
                continue
            errors.append(error)
            seconds.append(round(sec))
        table.add_row(f"MultiCast SAX ({kind})", *errors)
        table.add_row(f"MultiCast SAX ({kind}) [sec]", *seconds)
    raw_error, raw_seconds = _raw_cell(num_samples, seed)
    table.add_row("MultiCast", raw_error, "", "")
    table.add_row("MultiCast [sec]", round(raw_seconds), "", "")
    table.notes.append(
        "Paper: time ~flat in alphabet size; RMSE worsens with larger "
        "alphabets; digital N/A at 20."
    )
    return table

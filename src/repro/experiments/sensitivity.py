"""Seed-sensitivity study: how stable are the reproduced numbers?

The paper reports single-run RMSEs.  Our substrate is fully seeded, so we
can ask the question the paper could not: how much do the table cells move
under resampling (different generation seeds) and under different dataset
realisations (different generator seeds)?  The bench publishes mean ± std
per cell, which contextualises every paper-vs-measured comparison in
EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from repro.data import gas_rate
from repro.evaluation import TableResult, evaluate_method
from repro.exceptions import ConfigError

__all__ = ["seed_sensitivity_table"]


def seed_sensitivity_table(
    method: str = "multicast-di",
    num_seeds: int = 5,
    num_samples: int = 5,
    vary: str = "generation",
) -> TableResult:
    """Mean ± std RMSE over seeds for one method on Gas Rate.

    ``vary`` selects what changes across runs:

    * ``"generation"`` — same dataset, different sampling seeds (the
      variance a user sees re-running the same experiment);
    * ``"dataset"`` — different synthetic realisations of the dataset
      (the variance attributable to our stand-in data).
    """
    if num_seeds < 2:
        raise ConfigError(f"num_seeds must be >= 2, got {num_seeds}")
    if vary not in ("generation", "dataset"):
        raise ConfigError(f"vary must be 'generation' or 'dataset', got {vary!r}")

    errors: dict[str, list[float]] = {"GasRate": [], "CO2": []}
    for seed in range(num_seeds):
        dataset = gas_rate(seed=7 + (seed if vary == "dataset" else 0))
        options = {}
        if method.startswith("multicast") or method == "llmtime":
            options["num_samples"] = num_samples
        result = evaluate_method(method, dataset, seed=seed, **options)
        for name in errors:
            errors[name].append(result.rmse_per_dim[name])

    table = TableResult(
        table_id="Sensitivity",
        title=f"Seed sensitivity of {method} on gas_rate (vary={vary})",
        header=["Statistic", "GasRate", "CO2"],
    )
    table.add_row("mean", *(float(np.mean(errors[n])) for n in errors))
    table.add_row("std", *(float(np.std(errors[n])) for n in errors))
    table.add_row("min", *(float(np.min(errors[n])) for n in errors))
    table.add_row("max", *(float(np.max(errors[n])) for n in errors))
    table.notes.append(f"{num_seeds} seeds, {num_samples} samples per forecast.")
    return table

"""Figures 2-8 — forecast overlay charts.

Every figure in the paper's evaluation is an overlay of the original series
and one or two forecasts on a single dimension.  Each ``figure_N`` function
reruns the relevant methods and returns a :class:`FigureResult` holding the
aligned series; ``render()`` draws the ASCII chart and ``save_csv()`` writes
the underlying data for external plotting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.data import Dataset, electricity, gas_rate, weather
from repro.evaluation import ascii_plot, evaluate_method, overlay_series

__all__ = [
    "FigureResult",
    "figure_2",
    "figure_3",
    "figure_4",
    "figure_5",
    "figure_6",
    "figure_7",
    "figure_8",
]


@dataclass
class FigureResult:
    """One reproduced figure: the overlaid series plus provenance."""

    figure_id: str
    title: str
    dimension: str
    history: np.ndarray
    actual: np.ndarray
    forecasts: dict[str, np.ndarray] = field(default_factory=dict)

    def render(self, width: int = 72, height: int = 16) -> str:
        """ASCII overlay of the actual tail and every forecast."""
        series = {"actual": self.actual, **self.forecasts}
        return ascii_plot(
            series, width=width, height=height,
            title=f"{self.figure_id}: {self.title} [{self.dimension}]",
        )

    def save_csv(self, path: str | Path) -> None:
        """Write the aligned history/actual/forecast series as CSV."""
        overlay_series(path, self.actual, self.forecasts, history=self.history)

    def rmse_of(self, label: str) -> float:
        """Convenience RMSE of one overlay against the actuals."""
        from repro.metrics import rmse

        return rmse(self.actual, self.forecasts[label])


def _overlay(
    figure_id: str,
    title: str,
    dataset: Dataset,
    dimension: str,
    method_specs: dict[str, tuple[str, dict]],
    seed: int = 0,
) -> FigureResult:
    """Run each (method, options) spec and collect the named dimension."""
    history, actual = dataset.train_test_split()
    dim_index = dataset.dim_names.index(dimension)
    forecasts = {}
    for label, (method, options) in method_specs.items():
        result = evaluate_method(method, dataset, seed=seed, **options)
        forecasts[label] = result.forecast[:, dim_index]
    return FigureResult(
        figure_id=figure_id,
        title=title,
        dimension=dimension,
        history=history[:, dim_index],
        actual=actual[:, dim_index],
        forecasts=forecasts,
    )


def figure_2(num_samples: int = 5, seed: int = 0) -> FigureResult:
    """LLaMA2 vs Phi-2 backend forecasts on Gas Rate dim 0 (paper Fig. 2)."""
    return _overlay(
        "Figure 2",
        "Backend model comparison (MultiCast VI)",
        gas_rate(),
        "GasRate",
        {
            "llama2-sim": ("multicast-vi", {"model": "llama2-7b-sim", "num_samples": num_samples}),
            "phi2-sim": ("multicast-vi", {"model": "phi2-2.7b-sim", "num_samples": num_samples}),
        },
        seed=seed,
    )


def figure_3(num_samples: int = 5, seed: int = 0) -> FigureResult:
    """MultiCast (DI) vs ARIMA on the GasRate dimension (paper Fig. 3)."""
    return _overlay(
        "Figure 3",
        "MultiCast (DI) versus ARIMA",
        gas_rate(),
        "GasRate",
        {
            "multicast-di": ("multicast-di", {"num_samples": num_samples}),
            "arima": ("arima", {}),
        },
        seed=seed,
    )


def figure_4(num_samples: int = 5, seed: int = 0) -> FigureResult:
    """MultiCast (VC) vs LSTM on the HUFL dimension (paper Fig. 4)."""
    return _overlay(
        "Figure 4",
        "MultiCast (VC) versus LSTM",
        electricity(),
        "HUFL",
        {
            "multicast-vc": ("multicast-vc", {"num_samples": num_samples}),
            "lstm": ("lstm", {}),
        },
        seed=seed,
    )


def figure_5(num_samples: int = 5, seed: int = 0) -> FigureResult:
    """MultiCast (VI) vs ARIMA on the Tlog dimension (paper Fig. 5)."""
    return _overlay(
        "Figure 5",
        "MultiCast (VI) versus ARIMA",
        weather(),
        "Tlog",
        {
            "multicast-vi": ("multicast-vi", {"num_samples": num_samples}),
            "arima": ("arima", {}),
        },
        seed=seed,
    )


def _sax_overlay(
    figure_id: str,
    title: str,
    configurations: dict[str, dict],
    num_samples: int,
    seed: int,
) -> FigureResult:
    specs = {
        label: ("multicast-di", {"num_samples": num_samples, "sax": sax})
        for label, sax in configurations.items()
    }
    return _overlay(figure_id, title, gas_rate(), "CO2", specs, seed=seed)


def figure_6(num_samples: int = 5, seed: int = 0) -> FigureResult:
    """Forecasts for SAX segment lengths 3/6/9 on CO2 (paper Fig. 6)."""
    return _sax_overlay(
        "Figure 6",
        "Forecasting for various SAX segment lengths",
        {
            f"sax-w{w}": {"segment_length": w, "alphabet_size": 5}
            for w in (3, 6, 9)
        },
        num_samples,
        seed,
    )


def figure_7(num_samples: int = 5, seed: int = 0) -> FigureResult:
    """Forecasts for SAX alphabet sizes 5/10/20 on CO2 (paper Fig. 7)."""
    return _sax_overlay(
        "Figure 7",
        "Forecasting for different SAX alphabet sizes",
        {
            f"sax-a{a}": {"segment_length": 6, "alphabet_size": a}
            for a in (5, 10, 20)
        },
        num_samples,
        seed,
    )


def figure_8(num_samples: int = 5, seed: int = 0) -> FigureResult:
    """Digit-encoded SAX symbols on CO2 (paper Fig. 8)."""
    return _sax_overlay(
        "Figure 8",
        "Forecasting using digits instead of letters as symbols",
        {
            "sax-digital": {
                "segment_length": 6,
                "alphabet_size": 5,
                "alphabet_kind": "digital",
            }
        },
        num_samples,
        seed,
    )

"""Beyond-paper experiment: the full method roster on every dataset.

Adds the extension baselines (Holt-Winters with auto-detected period, the
theta method, naive and drift references) and the block-interleaving
multiplexer to the paper's competitor list — the comparison an adopting
user would actually want before picking a method.
"""

from __future__ import annotations

from repro.data import Dataset, load_paper_datasets
from repro.evaluation import TableResult, evaluate_method

__all__ = ["EXTENDED_METHODS", "extended_accuracy_table", "extended_report"]

EXTENDED_METHODS = (
    "multicast-di",
    "multicast-vi",
    "multicast-vc",
    "multicast-bi",
    "llmtime",
    "arima",
    "var",
    "lstm",
    "gru",
    "holt-winters",
    "theta",
    "naive",
    "drift",
)


def extended_accuracy_table(
    dataset: Dataset,
    num_samples: int = 5,
    seed: int = 0,
    methods: tuple[str, ...] = EXTENDED_METHODS,
) -> TableResult:
    """Per-dimension RMSE of the extended roster on one dataset."""
    table = TableResult(
        table_id="Extended",
        title=f"Extended method roster on {dataset.name}",
        header=["Method", *dataset.dim_names, "time [s]"],
    )
    for method in methods:
        options: dict = {}
        if method.startswith("multicast") or method == "llmtime":
            options["num_samples"] = num_samples
        result = evaluate_method(method, dataset, seed=seed, **options)
        table.add_row(
            method,
            *(result.rmse_per_dim[name] for name in dataset.dim_names),
            round(result.reported_seconds),
        )
    return table


def extended_report(num_samples: int = 5, seed: int = 0) -> list[TableResult]:
    """The extended roster on all three paper datasets."""
    return [
        extended_accuracy_table(dataset, num_samples=num_samples, seed=seed)
        for dataset in load_paper_datasets()
    ]

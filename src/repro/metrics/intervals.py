"""Probabilistic-forecast metrics over the sampled trajectories.

MultiCast draws several continuations per forecast; beyond the median point
forecast, the samples define empirical predictive quantiles.  These metrics
score them:

* :func:`pinball_loss` — quantile (pinball) loss of a quantile forecast;
* :func:`interval_coverage` — fraction of actuals inside a central band;
* :func:`winkler_score` — interval width plus out-of-band penalties;
* :func:`crps_from_samples` — the continuous ranked probability score
  estimated directly from the sample ensemble (the standard
  energy-form estimator).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError

__all__ = [
    "pinball_loss",
    "interval_coverage",
    "winkler_score",
    "crps_from_samples",
    "sample_quantiles",
]


def sample_quantiles(samples: np.ndarray, quantiles: list[float]) -> np.ndarray:
    """Empirical per-cell quantiles of a ``(num_samples, ...)`` ensemble."""
    arr = np.asarray(samples, dtype=float)
    if arr.ndim < 2 or arr.shape[0] < 1:
        raise DataError("expected a (num_samples, ...) ensemble")
    for q in quantiles:
        if not 0.0 <= q <= 1.0:
            raise DataError(f"quantile {q} outside [0, 1]")
    return np.quantile(arr, quantiles, axis=0)


def pinball_loss(y_true: np.ndarray, y_quantile: np.ndarray, quantile: float) -> float:
    """Mean pinball loss of a ``quantile``-level forecast.

    Asymmetric absolute error: under-forecasts cost ``q``, over-forecasts
    ``1 - q`` per unit.  The proper scoring rule for a single quantile.
    """
    if not 0.0 < quantile < 1.0:
        raise DataError(f"quantile must be in (0, 1), got {quantile}")
    yt = np.asarray(y_true, dtype=float)
    yq = np.asarray(y_quantile, dtype=float)
    if yt.shape != yq.shape:
        raise DataError(f"shape mismatch: {yt.shape} vs {yq.shape}")
    if yt.size == 0:
        raise DataError("empty input")
    diff = yt - yq
    return float(np.mean(np.maximum(quantile * diff, (quantile - 1.0) * diff)))


def interval_coverage(
    y_true: np.ndarray, lower: np.ndarray, upper: np.ndarray
) -> float:
    """Fraction of actuals falling inside ``[lower, upper]``."""
    yt = np.asarray(y_true, dtype=float)
    lo = np.asarray(lower, dtype=float)
    hi = np.asarray(upper, dtype=float)
    if not yt.shape == lo.shape == hi.shape:
        raise DataError("y_true, lower, upper must share a shape")
    if yt.size == 0:
        raise DataError("empty input")
    if (lo > hi).any():
        raise DataError("lower bound exceeds upper bound somewhere")
    return float(np.mean((yt >= lo) & (yt <= hi)))


def winkler_score(
    y_true: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    level: float = 0.8,
) -> float:
    """Winkler (interval) score for a central ``level`` prediction interval.

    Width of the interval, plus ``2 / alpha`` times the distance by which
    the actual escapes it (``alpha = 1 - level``).  Lower is better; the
    score is minimised by the true central interval.
    """
    if not 0.0 < level < 1.0:
        raise DataError(f"level must be in (0, 1), got {level}")
    yt = np.asarray(y_true, dtype=float)
    lo = np.asarray(lower, dtype=float)
    hi = np.asarray(upper, dtype=float)
    if not yt.shape == lo.shape == hi.shape:
        raise DataError("y_true, lower, upper must share a shape")
    if yt.size == 0:
        raise DataError("empty input")
    if (lo > hi).any():
        raise DataError("lower bound exceeds upper bound somewhere")
    alpha = 1.0 - level
    width = hi - lo
    below = np.maximum(lo - yt, 0.0)
    above = np.maximum(yt - hi, 0.0)
    return float(np.mean(width + (2.0 / alpha) * (below + above)))


def crps_from_samples(y_true: np.ndarray, samples: np.ndarray) -> float:
    """CRPS estimated from an ensemble (energy form).

    ``CRPS = E|X - y| - 0.5 * E|X - X'|`` with X, X' independent ensemble
    draws.  ``samples`` has shape ``(num_samples, *y_true.shape)``.
    """
    yt = np.asarray(y_true, dtype=float)
    ens = np.asarray(samples, dtype=float)
    if ens.ndim != yt.ndim + 1 or ens.shape[1:] != yt.shape:
        raise DataError(
            f"samples shape {ens.shape} incompatible with actuals {yt.shape}"
        )
    s = ens.shape[0]
    if s < 2:
        raise DataError("CRPS needs at least two samples")
    term_accuracy = np.mean(np.abs(ens - yt[None, ...]))
    spread = np.abs(ens[:, None, ...] - ens[None, :, ...])
    term_spread = spread.sum() / (s * (s - 1)) / yt.size
    return float(term_accuracy - 0.5 * term_spread)

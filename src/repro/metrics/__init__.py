"""Forecast accuracy metrics.

The paper evaluates exclusively with RMSE (Section IV-A5); the other metrics
here are standard companions that the test-suite and ablation benches use to
cross-check results.
"""

from repro.metrics.errors import (
    mae,
    mape,
    mase,
    nrmse,
    per_dimension_report,
    rmse,
    smape,
)
from repro.metrics.intervals import (
    crps_from_samples,
    interval_coverage,
    pinball_loss,
    sample_quantiles,
    winkler_score,
)

__all__ = [
    "rmse",
    "mae",
    "mape",
    "smape",
    "nrmse",
    "mase",
    "per_dimension_report",
    "pinball_loss",
    "interval_coverage",
    "winkler_score",
    "crps_from_samples",
    "sample_quantiles",
]

"""Error metrics for point forecasts.

All metrics accept one-dimensional arrays (a single series) or
two-dimensional arrays shaped ``(n_timestamps, n_dims)``.  For 2-D input the
error is computed over all entries, which matches how the paper reports a
single RMSE per (method, dimension) pair: slice the dimension first, then
call the metric.

The formulation of RMSE follows Section IV-A5 of the paper:
``sqrt(sum_i (y_i - yhat_i)^2 / n)``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError

__all__ = [
    "rmse",
    "mae",
    "mape",
    "smape",
    "nrmse",
    "mase",
    "per_dimension_report",
]


def _validated(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Coerce both inputs to float arrays and check they are comparable."""
    yt = np.asarray(y_true, dtype=float)
    yp = np.asarray(y_pred, dtype=float)
    if yt.shape != yp.shape:
        raise DataError(
            f"shape mismatch between actuals {yt.shape} and predictions {yp.shape}"
        )
    if yt.size == 0:
        raise DataError("cannot compute a metric over zero timestamps")
    if not (np.isfinite(yt).all() and np.isfinite(yp).all()):
        raise DataError("metrics require finite values (found NaN or inf)")
    return yt, yp


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean squared error (the paper's headline metric)."""
    yt, yp = _validated(y_true, y_pred)
    return float(np.sqrt(np.mean((yt - yp) ** 2)))


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error."""
    yt, yp = _validated(y_true, y_pred)
    return float(np.mean(np.abs(yt - yp)))


def mape(y_true: np.ndarray, y_pred: np.ndarray, epsilon: float = 1e-8) -> float:
    """Mean absolute percentage error.

    ``epsilon`` guards the division for series that touch zero; values whose
    magnitude is below ``epsilon`` contribute with the clamped denominator.
    """
    yt, yp = _validated(y_true, y_pred)
    denom = np.maximum(np.abs(yt), epsilon)
    return float(np.mean(np.abs(yt - yp) / denom) * 100.0)


def smape(y_true: np.ndarray, y_pred: np.ndarray, epsilon: float = 1e-8) -> float:
    """Symmetric mean absolute percentage error, in [0, 200]."""
    yt, yp = _validated(y_true, y_pred)
    denom = np.maximum((np.abs(yt) + np.abs(yp)) / 2.0, epsilon)
    return float(np.mean(np.abs(yt - yp) / denom) * 100.0)


def nrmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """RMSE normalised by the range of the actuals.

    Useful to compare error magnitudes across dimensions whose scales differ
    by orders of magnitude (e.g. HUFL vs HULL in the Electricity dataset).
    """
    yt, yp = _validated(y_true, y_pred)
    spread = float(yt.max() - yt.min())
    if spread == 0.0:
        raise DataError("nrmse is undefined for a constant actual series")
    return rmse(yt, yp) / spread


def mase(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    y_train: np.ndarray,
    seasonality: int = 1,
) -> float:
    """Mean absolute scaled error against a seasonal-naive in-sample forecast.

    ``y_train`` is the history the forecaster saw; ``seasonality`` is the
    naive lag (1 = plain naive).  Only defined for univariate series.
    """
    yt, yp = _validated(y_true, y_pred)
    train = np.asarray(y_train, dtype=float)
    if train.ndim != 1 or yt.ndim != 1:
        raise DataError("mase is defined for univariate series only")
    if seasonality < 1:
        raise DataError(f"seasonality must be >= 1, got {seasonality}")
    if train.size <= seasonality:
        raise DataError("training series shorter than the seasonal lag")
    scale = np.mean(np.abs(train[seasonality:] - train[:-seasonality]))
    if scale == 0.0:
        raise DataError("mase scale is zero (constant training series)")
    return float(np.mean(np.abs(yt - yp)) / scale)


def per_dimension_report(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    dim_names: list[str] | None = None,
) -> dict[str, dict[str, float]]:
    """Compute RMSE/MAE/sMAPE for every dimension of a multivariate forecast.

    Returns a mapping ``{dimension_name: {"rmse": ..., "mae": ..., "smape": ...}}``
    in dimension order — the building block for the paper's Tables IV-VI.
    """
    yt, yp = _validated(y_true, y_pred)
    if yt.ndim == 1:
        yt = yt[:, None]
        yp = yp[:, None]
    if yt.ndim != 2:
        raise DataError(f"expected a (n, d) array, got ndim={yt.ndim}")
    n_dims = yt.shape[1]
    if dim_names is None:
        dim_names = [f"dim_{i}" for i in range(n_dims)]
    if len(dim_names) != n_dims:
        raise DataError(
            f"{len(dim_names)} dimension names supplied for {n_dims} dimensions"
        )
    report: dict[str, dict[str, float]] = {}
    for i, name in enumerate(dim_names):
        report[name] = {
            "rmse": rmse(yt[:, i], yp[:, i]),
            "mae": mae(yt[:, i], yp[:, i]),
            "smape": smape(yt[:, i], yp[:, i]),
        }
    return report

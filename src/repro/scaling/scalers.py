"""Scalers that prepare real-valued series for digit-level tokenization.

The central class is :class:`FixedDigitScaler`, which implements the
LLMTime-style rescaling the paper relies on: a univariate series is mapped
affinely onto the integer range ``[0, 10**num_digits - 1]`` so that every
value serialises to exactly ``num_digits`` digit tokens.  The inverse maps
model-generated integers back to the original units.

Out-of-range handling: a forecaster may legitimately predict values outside
the range seen in the history.  On the *forward* path values are clipped into
the representable integer range (the LLM cannot emit more digits anyway); on
the *inverse* path any integer with the right digit count maps back linearly,
so forecasts can exceed the historical range by up to the headroom margin.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ScalingError

__all__ = [
    "Scaler",
    "FixedDigitScaler",
    "PercentileScaler",
    "ZScoreScaler",
    "MinMaxScaler",
    "MultivariateScaler",
]


def _as_1d_float(x: np.ndarray, what: str) -> np.ndarray:
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 1:
        raise ScalingError(f"{what} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ScalingError(f"{what} must be non-empty")
    if not np.isfinite(arr).all():
        raise ScalingError(f"{what} contains NaN or inf")
    return arr


def _widened_span(lo: float, hi: float, what: str) -> tuple[float, float]:
    """A strictly positive, float64-representable ``(lo, hi)`` span.

    A degenerate span (``hi == lo``, or so narrow the endpoints cannot move
    at this magnitude) is widened symmetrically by half a unit — scaled up
    with the magnitude, since ``1e300 - 0.5 == 1e300`` in float64.  A span
    whose width overflows float64 cannot support an affine map at all and
    raises :class:`ScalingError` rather than producing NaN downstream.
    """
    span = hi - lo
    if not np.isfinite(span):
        raise ScalingError(
            f"{what} range [{lo}, {hi}] is too wide to represent in float64"
        )
    if span <= 0.0 or lo + span == lo or hi - span == hi:
        half = max(0.5, max(abs(lo), abs(hi)) * 1e-9)
        lo, hi = lo - half, hi + half
        if not np.isfinite(hi - lo) or hi - lo <= 0.0:
            raise ScalingError(
                f"{what} range [{lo}, {hi}] cannot be widened in float64"
            )
    return lo, hi


class Scaler(ABC):
    """A reversible univariate transform fit on a training series."""

    _fitted: bool = False

    @abstractmethod
    def fit(self, x: np.ndarray) -> "Scaler":
        """Estimate the transform parameters from a 1-D series."""

    @abstractmethod
    def transform(self, x: np.ndarray) -> np.ndarray:
        """Apply the transform (requires :meth:`fit`)."""

    @abstractmethod
    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        """Undo the transform (requires :meth:`fit`)."""

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit on ``x`` and transform it in one call."""
        return self.fit(x).transform(x)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise ScalingError(f"{type(self).__name__} used before fit()")


class FixedDigitScaler(Scaler):
    """Map a real series onto integers in ``[0, 10**num_digits - 1]``.

    Parameters
    ----------
    num_digits:
        The digit budget ``b`` per timestamp (paper default 3).
    headroom:
        Fraction of the observed range added above and below before mapping,
        so forecasts may move past historical extremes without clipping.
        With ``headroom=0.15`` the top/bottom 15 % of the integer range is
        reserved for out-of-history excursions.

    A constant training series is handled by centring it mid-range with a
    span of at least one unit (widened proportionally at magnitudes where
    float64 would absorb a unit-width step), so transform/inverse stay
    well-defined; a series whose range cannot be represented as a float64
    span raises :class:`ScalingError` instead of emitting garbage codes.
    """

    def __init__(self, num_digits: int = 3, headroom: float = 0.15) -> None:
        if num_digits < 1:
            raise ScalingError(f"num_digits must be >= 1, got {num_digits}")
        if headroom < 0:
            raise ScalingError(f"headroom must be >= 0, got {headroom}")
        self.num_digits = num_digits
        self.headroom = headroom
        self._lo = 0.0
        self._hi = 1.0

    @property
    def max_int(self) -> int:
        """Largest representable integer (e.g. 999 for 3 digits)."""
        return 10**self.num_digits - 1

    def fit(self, x: np.ndarray) -> "FixedDigitScaler":
        arr = _as_1d_float(x, "training series")
        lo, hi = _widened_span(float(arr.min()), float(arr.max()), "training series")
        margin = (hi - lo) * self.headroom
        self._lo = lo - margin
        self._hi = hi + margin
        if not np.isfinite(self._hi - self._lo) or self._hi - self._lo <= 0.0:
            raise ScalingError(
                f"training range [{lo}, {hi}] with headroom {self.headroom} "
                "does not fit in float64"
            )
        self._fitted = True
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Return integer codes; values outside the fitted span are clipped."""
        self._require_fitted()
        arr = _as_1d_float(x, "series")
        with np.errstate(over="ignore", invalid="ignore"):
            frac = (arr - self._lo) / (self._hi - self._lo)
            codes = np.clip(np.rint(frac * self.max_int), 0, self.max_int)
        if not np.isfinite(codes).all():
            raise ScalingError(
                "scaling produced non-finite codes (series magnitude exceeds "
                "what the fitted span can represent in float64)"
            )
        return codes.astype(np.int64)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        """Map integer codes back to original units (no clipping here)."""
        self._require_fitted()
        codes = np.asarray(x, dtype=float)
        return self._lo + (codes / self.max_int) * (self._hi - self._lo)

    @property
    def resolution(self) -> float:
        """Original-unit width of one integer step (quantization error bound)."""
        self._require_fitted()
        return (self._hi - self._lo) / self.max_int


class PercentileScaler(Scaler):
    """LLMTime's alpha/beta offset-scale transform.

    ``y = (x - beta) / alpha`` where ``beta`` is the ``beta_quantile`` of the
    training data (an offset) and ``alpha`` the ``alpha_quantile`` of the
    offset data (a scale).  Used when serialising with a decimal point is
    acceptable; MultiCast itself composes :class:`FixedDigitScaler` instead,
    but the LLMTime baseline exposes both for parity with the original repo.
    """

    def __init__(self, alpha_quantile: float = 0.99, beta_quantile: float = 0.0) -> None:
        if not 0.0 < alpha_quantile <= 1.0:
            raise ScalingError(f"alpha_quantile must be in (0, 1], got {alpha_quantile}")
        if not 0.0 <= beta_quantile <= 1.0:
            raise ScalingError(f"beta_quantile must be in [0, 1], got {beta_quantile}")
        self.alpha_quantile = alpha_quantile
        self.beta_quantile = beta_quantile
        self._alpha = 1.0
        self._beta = 0.0

    def fit(self, x: np.ndarray) -> "PercentileScaler":
        arr = _as_1d_float(x, "training series")
        with np.errstate(over="ignore", invalid="ignore"):
            self._beta = float(np.quantile(arr, self.beta_quantile))
            shifted = arr - self._beta
            self._alpha = float(np.quantile(np.abs(shifted), self.alpha_quantile))
        if not np.isfinite(self._beta) or not np.isfinite(self._alpha):
            raise ScalingError(
                "offset series overflows float64; the training range is too "
                "wide for the alpha/beta transform"
            )
        if self._alpha == 0.0:
            self._alpha = 1.0
        self._fitted = True
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return (_as_1d_float(x, "series") - self._beta) / self._alpha

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return np.asarray(x, dtype=float) * self._alpha + self._beta


class ZScoreScaler(Scaler):
    """Standardise to zero mean and unit variance (used by the SAX substrate)."""

    def __init__(self) -> None:
        self._mean = 0.0
        self._std = 1.0

    def fit(self, x: np.ndarray) -> "ZScoreScaler":
        arr = _as_1d_float(x, "training series")
        # Centre on the range midpoint before averaging so the sum cannot
        # overflow for large same-sign magnitudes (mean of n values near
        # 1.5e308 would otherwise reduce to inf).
        mid = float(arr.min()) / 2.0 + float(arr.max()) / 2.0
        with np.errstate(over="ignore", invalid="ignore"):
            centered = arr - mid
            self._mean = mid + float(centered.mean())
            std = float(centered.std())
        if not np.isfinite(self._mean) or not np.isfinite(std):
            raise ScalingError(
                "training series is too wide to standardise in float64"
            )
        self._std = std if std > 0.0 else 1.0
        self._fitted = True
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return (_as_1d_float(x, "series") - self._mean) / self._std

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return np.asarray(x, dtype=float) * self._std + self._mean


class MinMaxScaler(Scaler):
    """Map the training range onto [0, 1] (used by the LSTM baseline)."""

    def __init__(self) -> None:
        self._lo = 0.0
        self._hi = 1.0

    def fit(self, x: np.ndarray) -> "MinMaxScaler":
        arr = _as_1d_float(x, "training series")
        self._lo, self._hi = _widened_span(
            float(arr.min()), float(arr.max()), "training series"
        )
        self._fitted = True
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return (_as_1d_float(x, "series") - self._lo) / (self._hi - self._lo)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        return np.asarray(x, dtype=float) * (self._hi - self._lo) + self._lo


class MultivariateScaler:
    """Apply an independent univariate scaler to every dimension.

    Parameters
    ----------
    factory:
        Zero-argument callable returning a fresh :class:`Scaler` per dimension
        (e.g. ``lambda: FixedDigitScaler(num_digits=3)``).
    """

    def __init__(self, factory) -> None:
        self._factory = factory
        self._scalers: list[Scaler] = []

    @staticmethod
    def _as_2d(x: np.ndarray) -> np.ndarray:
        arr = np.asarray(x, dtype=float)
        if arr.ndim != 2:
            raise ScalingError(f"expected a (n, d) array, got shape {arr.shape}")
        return arr

    def fit(self, x: np.ndarray) -> "MultivariateScaler":
        """Fit one fresh scaler per dimension of a ``(n, d)`` array."""
        arr = self._as_2d(x)
        self._scalers = [self._factory().fit(arr[:, i]) for i in range(arr.shape[1])]
        return self

    @property
    def scalers(self) -> list[Scaler]:
        """Per-dimension fitted scalers, in dimension order."""
        if not self._scalers:
            raise ScalingError("MultivariateScaler used before fit()")
        return self._scalers

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Transform every column with its own fitted scaler."""
        arr = self._as_2d(x)
        if arr.shape[1] != len(self.scalers):
            raise ScalingError(
                f"fitted on {len(self.scalers)} dimensions, got {arr.shape[1]}"
            )
        columns = [s.transform(arr[:, i]) for i, s in enumerate(self.scalers)]
        return np.stack(columns, axis=1)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        """Undo the per-column transforms."""
        arr = np.asarray(x, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != len(self.scalers):
            raise ScalingError(
                f"expected a (n, {len(self.scalers)}) array, got shape {arr.shape}"
            )
        columns = [s.inverse_transform(arr[:, i]) for i, s in enumerate(self.scalers)]
        return np.stack(columns, axis=1)

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit on ``x`` and transform it in one call."""
        return self.fit(x).transform(x)

"""Rescaling of time series values prior to tokenization.

The paper (Section III-A) requires each dimension to be "rescaled to avoid
decimals" before multiplexing, following LLMTime's recipe: map the series to
non-negative integers that fit a fixed digit budget ``b``, so that every
timestamp of every dimension serialises to exactly ``b`` digit tokens.
"""

from repro.scaling.scalers import (
    FixedDigitScaler,
    MinMaxScaler,
    MultivariateScaler,
    PercentileScaler,
    Scaler,
    ZScoreScaler,
)

__all__ = [
    "Scaler",
    "FixedDigitScaler",
    "PercentileScaler",
    "ZScoreScaler",
    "MinMaxScaler",
    "MultivariateScaler",
]

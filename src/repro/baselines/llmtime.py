"""LLMTime (Gruver et al., NeurIPS 2023) — the zero-shot univariate baseline.

LLMTime forecasts each dimension *separately*: rescale to fixed-digit
integers, serialise digit-by-digit with comma separators, let the LLM
continue the stream under a ``[0-9,]`` logit constraint, draw several
samples, and take the per-timestamp median after descaling.  MultiCast
generalises exactly this pipeline to multivariate input, so the two share
the scaling/encoding/generation machinery verbatim — which is what makes
the paper's accuracy and timing comparisons apples-to-apples.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass

import numpy as np

from repro.core.aggregation import AGGREGATION_METHODS, aggregate_samples
from repro.core.estimator import BaseEstimator, positional_shim
from repro.core.output import ForecastOutput
from repro.encoding import (
    SEPARATOR,
    DigitCodec,
    digit_vocabulary,
    parse_token_stream,
    render_token_stream,
)
from repro.exceptions import ConfigError, DataError, FittingError
from repro.llm import PeriodicPatternConstraint, child_seeds, get_model
from repro.scaling import FixedDigitScaler

__all__ = ["LLMTime", "LLMTimeConfig"]


@dataclass(frozen=True)
class LLMTimeConfig:
    """Configuration mirroring the paper's Table II defaults."""

    num_digits: int = 3
    num_samples: int = 5
    model: str = "llama2-7b-sim"
    aggregation: str = "median"
    max_context_tokens: int = 4096
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_digits < 1:
            raise ConfigError(f"num_digits must be >= 1, got {self.num_digits}")
        if self.num_samples < 1:
            raise ConfigError(f"num_samples must be >= 1, got {self.num_samples}")
        if self.aggregation not in AGGREGATION_METHODS:
            raise ConfigError(
                f"aggregation must be one of {AGGREGATION_METHODS}, "
                f"got {self.aggregation!r}"
            )
        if self.max_context_tokens < 8:
            raise ConfigError("max_context_tokens must be >= 8")


def _truncate_to_group_boundary(ids: list[int], limit: int, separator_id: int) -> list[int]:
    """Keep at most ``limit`` trailing ids, starting just after a separator."""
    if len(ids) <= limit:
        return ids
    tail = ids[-limit:]
    try:
        first_separator = tail.index(separator_id)
    except ValueError:
        return tail
    return tail[first_separator + 1 :]


class LLMTime(BaseEstimator):
    """Univariate zero-shot forecaster, applied per dimension for 2-D input.

    The canonical constructor takes the configuration fields as flat
    keywords (the Estimator API); the legacy ``LLMTime(config)`` /
    ``LLMTime(config=...)`` spellings keep working for one release behind
    a :class:`DeprecationWarning`.
    """

    _PARAMS = (
        "num_digits",
        "num_samples",
        "model",
        "aggregation",
        "max_context_tokens",
        "seed",
    )
    _TEST_PARAMS = ({"num_samples": 1, "model": "uniform-sim"},)

    @positional_shim("config")
    def __init__(
        self,
        *,
        num_digits: int | None = None,
        num_samples: int | None = None,
        model: str | None = None,
        aggregation: str | None = None,
        max_context_tokens: int | None = None,
        seed: int | None = None,
        config: LLMTimeConfig | None = None,
    ) -> None:
        fields = {
            "num_digits": num_digits,
            "num_samples": num_samples,
            "model": model,
            "aggregation": aggregation,
            "max_context_tokens": max_context_tokens,
            "seed": seed,
        }
        explicit = {k: v for k, v in fields.items() if v is not None}
        if config is not None:
            if explicit:
                raise ConfigError(
                    "LLMTime() got both config= and flat keyword fields "
                    f"{sorted(explicit)}; pass one or the other"
                )
            warnings.warn(
                "the config= argument of LLMTime() is deprecated under the "
                "Estimator API; pass the configuration fields as flat "
                "keywords (LLMTime(num_digits=..., num_samples=..., ...))",
                DeprecationWarning,
                stacklevel=3,
            )
            self.config = config
        else:
            self.config = LLMTimeConfig(**explicit)
        for name in self._PARAMS:
            setattr(self, name, getattr(self.config, name))
        self._history: np.ndarray | None = None
        self._vocabulary = digit_vocabulary()
        self._codec = DigitCodec(self.config.num_digits)
        self._digit_ids = self._vocabulary.ids_of("0123456789")
        self._separator_id = self._vocabulary.id_of(SEPARATOR)

    def fit(self, history) -> "LLMTime":
        """Store the history (zero-shot: there is nothing to train)."""
        values = np.asarray(history, dtype=float)
        if values.ndim == 1:
            values = values[:, None]
        if values.ndim != 2:
            raise DataError(f"expected (n, d) history, got shape {values.shape}")
        self._history = values
        return self

    def predict(self, horizon: int) -> np.ndarray:
        """Point forecast ``(horizon, d)`` for the fitted history."""
        if self._history is None:
            raise FittingError("LLMTime used before fit()")
        return self.forecast(self._history, horizon).values

    def _constraint(self) -> PeriodicPatternConstraint:
        pattern = [self._digit_ids] * self.config.num_digits + [
            frozenset([self._separator_id])
        ]
        return PeriodicPatternConstraint(pattern)

    def forecast_univariate(
        self, history: np.ndarray, horizon: int, seed: int | None = None
    ) -> ForecastOutput:
        """Forecast one dimension; returns a (horizon, 1) output."""
        series = np.asarray(history, dtype=float)
        if series.ndim != 1:
            raise DataError(f"expected a 1-D history, got shape {series.shape}")
        if series.size < 4:
            raise DataError("history too short to forecast from")
        if horizon < 1:
            raise DataError(f"horizon must be >= 1, got {horizon}")
        config = self.config
        started = time.perf_counter()

        scaler = FixedDigitScaler(num_digits=config.num_digits).fit(series)
        codes = scaler.transform(series)
        tokens = render_token_stream(codes.tolist(), self._codec) + [SEPARATOR]
        prompt_ids = _truncate_to_group_boundary(
            self._vocabulary.encode(tokens),
            config.max_context_tokens,
            self._separator_id,
        )

        model = get_model(config.model, vocab_size=len(self._vocabulary))
        tokens_per_step = config.num_digits + 1
        needed = horizon * tokens_per_step
        constraint = self._constraint()
        rng = np.random.default_rng(config.seed if seed is None else seed)
        # Seeds are derived up front so per-sample draws stay deterministic
        # even if a caller fans them out across worker threads.
        seeds = child_seeds(rng, config.num_samples)

        sample_values = np.empty((config.num_samples, horizon))
        generated_total = 0
        for s in range(config.num_samples):
            result = model.generate(
                prompt_ids, needed, np.random.default_rng(seeds[s]),
                constraint=constraint,
            )
            generated_total += len(result.tokens)
            parsed = parse_token_stream(
                self._vocabulary.decode(result.tokens), self._codec
            )
            values = scaler.inverse_transform(parsed)
            sample_values[s] = _fit_horizon(values, horizon, fallback=series[-1])

        samples = sample_values[:, :, None]
        point = aggregate_samples(samples, config.aggregation)
        simulated = config.num_samples * model.cost.seconds(
            len(prompt_ids), needed
        )
        return ForecastOutput(
            values=point,
            samples=samples,
            prompt_tokens=len(prompt_ids),
            generated_tokens=generated_total,
            simulated_seconds=simulated,
            wall_seconds=time.perf_counter() - started,
            model_name=config.model,
            metadata={"method": "llmtime"},
        )

    def forecast(
        self, history: np.ndarray, horizon: int, seed: int | None = None
    ) -> ForecastOutput:
        """Forecast every dimension independently and stack the results.

        Token counts and times are summed over dimensions, matching the
        paper's note that LLMTime's total time is "the sum of time needed
        per dimension".
        """
        values = np.asarray(history, dtype=float)
        if values.ndim == 1:
            values = values[:, None]
        if values.ndim != 2:
            raise DataError(f"expected (n, d) history, got shape {values.shape}")
        base_seed = self.config.seed if seed is None else seed
        outputs = [
            self.forecast_univariate(values[:, i], horizon, seed=base_seed + i)
            for i in range(values.shape[1])
        ]
        return ForecastOutput(
            values=np.concatenate([o.values for o in outputs], axis=1),
            samples=np.concatenate([o.samples for o in outputs], axis=2),
            prompt_tokens=sum(o.prompt_tokens for o in outputs),
            generated_tokens=sum(o.generated_tokens for o in outputs),
            simulated_seconds=sum(o.simulated_seconds for o in outputs),
            wall_seconds=sum(o.wall_seconds for o in outputs),
            model_name=self.config.model,
            metadata={"method": "llmtime", "per_dimension": True},
        )


def _fit_horizon(values: np.ndarray, horizon: int, fallback: float) -> np.ndarray:
    """Truncate or pad a parsed forecast to exactly ``horizon`` values."""
    if values.size >= horizon:
        return values[:horizon]
    if values.size == 0:
        return np.full(horizon, fallback)
    pad = np.full(horizon - values.size, values[-1])
    return np.concatenate([values, pad])

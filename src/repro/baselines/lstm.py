"""A from-scratch numpy LSTM for multivariate forecasting.

The paper's grid search settled on one hidden layer of 128 units, dropout
rate 0.2, 30 training epochs, the Adam optimiser, and MSE loss (Section
IV-A4); those are the defaults here.  The network maps a sliding window of
the multivariate history to the next timestamp's value vector and forecasts
recursively.

The implementation is complete: vectorised forward pass over a batch of
windows, full backpropagation through time, inverted dropout on the final
hidden state, Adam with bias correction, and gradient-norm clipping.  A
numerical gradient check in the test-suite pins the backward pass to the
forward pass to ~1e-6 relative error.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimator import BaseEstimator, positional_shim
from repro.exceptions import FittingError
from repro.scaling import MinMaxScaler, MultivariateScaler

__all__ = ["LSTMNetwork", "LSTMForecaster", "AdamOptimizer"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


class AdamOptimizer:
    """Adam (Kingma & Ba, 2014) over a dict of named parameter arrays."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise FittingError(f"learning_rate must be > 0, got {learning_rate}")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._step = 0

    def update(
        self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]
    ) -> None:
        """Apply one Adam step in place."""
        self._step += 1
        t = self._step
        for name, grad in grads.items():
            if name not in self._m:
                self._m[name] = np.zeros_like(grad)
                self._v[name] = np.zeros_like(grad)
            self._m[name] = self.beta1 * self._m[name] + (1 - self.beta1) * grad
            self._v[name] = self.beta2 * self._v[name] + (1 - self.beta2) * grad**2
            m_hat = self._m[name] / (1 - self.beta1**t)
            v_hat = self._v[name] / (1 - self.beta2**t)
            params[name] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


class LSTMNetwork:
    """Single-layer LSTM + dense head, with exact BPTT gradients.

    Gate pre-activations are computed jointly: ``W`` has shape
    ``(input + hidden, 4 * hidden)`` with gate order (input, forget, output,
    candidate), plus a bias ``b``.  The dense head maps the final hidden
    state to ``output_size`` values.  The forget-gate bias is initialised to
    1.0 — the standard trick that stabilises early training.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int = 128,
        output_size: int = 1,
        seed: int = 0,
    ) -> None:
        if min(input_size, hidden_size, output_size) < 1:
            raise FittingError("all layer sizes must be >= 1")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.output_size = output_size
        rng = np.random.default_rng(seed)
        fan_in = input_size + hidden_size
        scale = 1.0 / np.sqrt(fan_in)
        self.params: dict[str, np.ndarray] = {
            "W": rng.uniform(-scale, scale, size=(fan_in, 4 * hidden_size)),
            "b": np.zeros(4 * hidden_size),
            "W_out": rng.uniform(
                -scale, scale, size=(hidden_size, output_size)
            ),
            "b_out": np.zeros(output_size),
        }
        self.params["b"][hidden_size : 2 * hidden_size] = 1.0  # forget bias

    # -- forward --------------------------------------------------------------

    def forward(
        self,
        windows: np.ndarray,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, dict]:
        """Run a batch of windows; returns (predictions, cache for backward).

        ``windows`` has shape ``(batch, time, input_size)``; predictions have
        shape ``(batch, output_size)``.  With ``dropout > 0`` (training mode)
        an inverted-dropout mask is applied to the final hidden state.
        """
        if windows.ndim != 3 or windows.shape[2] != self.input_size:
            raise FittingError(
                f"expected (batch, time, {self.input_size}) windows, "
                f"got {windows.shape}"
            )
        batch, time, _ = windows.shape
        hidden = self.hidden_size
        W, b = self.params["W"], self.params["b"]

        h = np.zeros((batch, hidden))
        c = np.zeros((batch, hidden))
        steps = []
        for t in range(time):
            x_t = windows[:, t, :]
            z = np.concatenate([h, x_t], axis=1)
            gates = z @ W + b
            i = _sigmoid(gates[:, :hidden])
            f = _sigmoid(gates[:, hidden : 2 * hidden])
            o = _sigmoid(gates[:, 2 * hidden : 3 * hidden])
            g = np.tanh(gates[:, 3 * hidden :])
            c_prev = c
            c = f * c_prev + i * g
            tanh_c = np.tanh(c)
            h = o * tanh_c
            steps.append((z, i, f, o, g, c_prev, tanh_c))

        if dropout > 0.0:
            if rng is None:
                raise FittingError("dropout requires an rng")
            mask = (rng.random(h.shape) >= dropout) / (1.0 - dropout)
        else:
            mask = np.ones_like(h)
        h_dropped = h * mask
        predictions = h_dropped @ self.params["W_out"] + self.params["b_out"]
        cache = {
            "steps": steps,
            "h_final": h,
            "mask": mask,
            "h_dropped": h_dropped,
            "time": time,
            "batch": batch,
        }
        return predictions, cache

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """Inference-mode forward pass (no dropout)."""
        predictions, _ = self.forward(windows, dropout=0.0)
        return predictions

    # -- backward ---------------------------------------------------------------

    def backward(self, d_predictions: np.ndarray, cache: dict) -> dict[str, np.ndarray]:
        """Exact gradients of the loss w.r.t. all parameters.

        ``d_predictions`` is dLoss/dPredictions, shape (batch, output_size).
        """
        hidden = self.hidden_size
        W = self.params["W"]
        grads = {name: np.zeros_like(p) for name, p in self.params.items()}

        grads["W_out"] = cache["h_dropped"].T @ d_predictions
        grads["b_out"] = d_predictions.sum(axis=0)
        dh = (d_predictions @ self.params["W_out"].T) * cache["mask"]
        dc = np.zeros_like(dh)

        for t in range(cache["time"] - 1, -1, -1):
            z, i, f, o, g, c_prev, tanh_c = cache["steps"][t]
            do = dh * tanh_c
            dc = dc + dh * o * (1.0 - tanh_c**2)
            di = dc * g
            dg = dc * i
            df = dc * c_prev
            dc_prev = dc * f

            di_pre = di * i * (1.0 - i)
            df_pre = df * f * (1.0 - f)
            do_pre = do * o * (1.0 - o)
            dg_pre = dg * (1.0 - g**2)
            d_gates = np.concatenate([di_pre, df_pre, do_pre, dg_pre], axis=1)

            grads["W"] += z.T @ d_gates
            grads["b"] += d_gates.sum(axis=0)
            dz = d_gates @ W.T
            dh = dz[:, :hidden]
            dc = dc_prev
        return grads


def _clip_gradients(grads: dict[str, np.ndarray], max_norm: float) -> None:
    """Global-norm gradient clipping, in place."""
    total = np.sqrt(sum(float((g**2).sum()) for g in grads.values()))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for g in grads.values():
            g *= scale


class LSTMForecaster(BaseEstimator):
    """Windowed multivariate forecaster around :class:`LSTMNetwork`.

    Training pairs are sliding windows of ``window`` consecutive timestamps
    mapped to the following timestamp's value vector.  Inputs are min-max
    scaled per dimension; forecasting is recursive (each prediction is fed
    back as the newest window row).

    Defaults follow the paper's grid search: ``hidden_size=128``,
    ``dropout=0.2``, ``epochs=30``, Adam with MSE loss.  All parameters
    are keyword-only under the Estimator API; legacy positional calls
    warn.
    """

    _TEST_PARAMS = (
        {"window": 3, "hidden_size": 4, "epochs": 1, "batch_size": 8},
    )

    @positional_shim(
        "window",
        "hidden_size",
        "dropout",
        "epochs",
        "learning_rate",
        "batch_size",
        "seed",
    )
    def __init__(
        self,
        *,
        window: int = 12,
        hidden_size: int = 128,
        dropout: float = 0.2,
        epochs: int = 30,
        learning_rate: float = 1e-3,
        batch_size: int = 32,
        seed: int = 0,
    ) -> None:
        if window < 1:
            raise FittingError(f"window must be >= 1, got {window}")
        if not 0.0 <= dropout < 1.0:
            raise FittingError(f"dropout must be in [0, 1), got {dropout}")
        if epochs < 1:
            raise FittingError(f"epochs must be >= 1, got {epochs}")
        if batch_size < 1:
            raise FittingError(f"batch_size must be >= 1, got {batch_size}")
        self.window = window
        self.hidden_size = hidden_size
        self.dropout = dropout
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.seed = seed
        self._network: LSTMNetwork | None = None
        self._scaler: MultivariateScaler | None = None
        self._tail: np.ndarray | None = None
        self.loss_history: list[float] = []

    def fit(self, history: np.ndarray) -> "LSTMForecaster":
        """Train on a ``(n, d)`` history array."""
        values = np.asarray(history, dtype=float)
        if values.ndim == 1:
            values = values[:, None]
        if values.ndim != 2:
            raise FittingError(f"expected (n, d) history, got shape {values.shape}")
        n, d = values.shape
        if n < self.window + 2:
            raise FittingError(
                f"history of {n} points too short for window={self.window}"
            )

        self._scaler = MultivariateScaler(MinMaxScaler).fit(values)
        scaled = self._scaler.transform(values)

        windows = np.stack(
            [scaled[i : i + self.window] for i in range(n - self.window)]
        )
        targets = scaled[self.window :]

        rng = np.random.default_rng(self.seed)
        network = LSTMNetwork(
            input_size=d,
            hidden_size=self.hidden_size,
            output_size=d,
            seed=self.seed,
        )
        optimizer = AdamOptimizer(learning_rate=self.learning_rate)
        self.loss_history = []
        num_samples = windows.shape[0]
        for _ in range(self.epochs):
            order = rng.permutation(num_samples)
            epoch_loss = 0.0
            for start in range(0, num_samples, self.batch_size):
                idx = order[start : start + self.batch_size]
                batch_x, batch_y = windows[idx], targets[idx]
                predictions, cache = network.forward(
                    batch_x, dropout=self.dropout, rng=rng
                )
                error = predictions - batch_y
                epoch_loss += float((error**2).sum())
                d_predictions = 2.0 * error / error.size
                grads = network.backward(d_predictions, cache)
                _clip_gradients(grads, max_norm=5.0)
                optimizer.update(network.params, grads)
            self.loss_history.append(epoch_loss / (num_samples * d))

        self._network = network
        self._tail = scaled[-self.window :].copy()
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        """Recursive multi-step forecast, shape ``(horizon, d)``."""
        if self._network is None or self._scaler is None or self._tail is None:
            raise FittingError("LSTMForecaster used before fit()")
        if horizon < 1:
            raise FittingError(f"horizon must be >= 1, got {horizon}")
        window = self._tail.copy()
        outputs = []
        for _ in range(horizon):
            prediction = self._network.predict(window[None, :, :])[0]
            outputs.append(prediction)
            window = np.vstack([window[1:], prediction])
        scaled = np.asarray(outputs)
        return self._scaler.inverse_transform(scaled)

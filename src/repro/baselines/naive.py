"""Reference forecasters: naive, seasonal naive, and drift.

These are not in the paper's competitor list but serve as sanity anchors for
the test-suite and the ablation benches — any method that loses to the naive
forecast on a strongly-patterned series has a bug.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError

__all__ = ["naive_forecast", "seasonal_naive_forecast", "drift_forecast"]


def _validated_history(history: np.ndarray) -> np.ndarray:
    arr = np.asarray(history, dtype=float)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2 or arr.shape[0] < 1:
        raise DataError(f"expected a non-empty (n, d) history, got {arr.shape}")
    return arr


def naive_forecast(history: np.ndarray, horizon: int) -> np.ndarray:
    """Repeat the last observed value vector for ``horizon`` steps."""
    arr = _validated_history(history)
    if horizon < 1:
        raise DataError(f"horizon must be >= 1, got {horizon}")
    return np.tile(arr[-1], (horizon, 1))


def seasonal_naive_forecast(
    history: np.ndarray, horizon: int, period: int
) -> np.ndarray:
    """Repeat the last full season of each dimension."""
    arr = _validated_history(history)
    if horizon < 1:
        raise DataError(f"horizon must be >= 1, got {horizon}")
    if not 1 <= period <= arr.shape[0]:
        raise DataError(
            f"period must be in [1, {arr.shape[0]}], got {period}"
        )
    season = arr[-period:]
    repeats = -(-horizon // period)
    return np.tile(season, (repeats, 1))[:horizon]


def drift_forecast(history: np.ndarray, horizon: int) -> np.ndarray:
    """Extrapolate the straight line from the first to the last observation."""
    arr = _validated_history(history)
    if horizon < 1:
        raise DataError(f"horizon must be >= 1, got {horizon}")
    if arr.shape[0] < 2:
        raise DataError("drift needs at least two observations")
    slope = (arr[-1] - arr[0]) / (arr.shape[0] - 1)
    steps = np.arange(1, horizon + 1)[:, None]
    return arr[-1][None, :] + steps * slope[None, :]

"""Reference forecasters: naive, seasonal naive, and drift.

These are not in the paper's competitor list but serve as sanity anchors for
the test-suite and the ablation benches — any method that loses to the naive
forecast on a strongly-patterned series has a bug.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimator import BaseEstimator, positional_shim
from repro.exceptions import DataError, FittingError

__all__ = [
    "naive_forecast",
    "seasonal_naive_forecast",
    "drift_forecast",
    "NaiveForecaster",
    "SeasonalNaiveForecaster",
    "DriftForecaster",
]


def _validated_history(history: np.ndarray) -> np.ndarray:
    arr = np.asarray(history, dtype=float)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2 or arr.shape[0] < 1:
        raise DataError(f"expected a non-empty (n, d) history, got {arr.shape}")
    return arr


def naive_forecast(history: np.ndarray, horizon: int) -> np.ndarray:
    """Repeat the last observed value vector for ``horizon`` steps."""
    arr = _validated_history(history)
    if horizon < 1:
        raise DataError(f"horizon must be >= 1, got {horizon}")
    return np.tile(arr[-1], (horizon, 1))


def seasonal_naive_forecast(
    history: np.ndarray, horizon: int, period: int
) -> np.ndarray:
    """Repeat the last full season of each dimension."""
    arr = _validated_history(history)
    if horizon < 1:
        raise DataError(f"horizon must be >= 1, got {horizon}")
    if not 1 <= period <= arr.shape[0]:
        raise DataError(
            f"period must be in [1, {arr.shape[0]}], got {period}"
        )
    season = arr[-period:]
    repeats = -(-horizon // period)
    return np.tile(season, (repeats, 1))[:horizon]


def drift_forecast(history: np.ndarray, horizon: int) -> np.ndarray:
    """Extrapolate the straight line from the first to the last observation."""
    arr = _validated_history(history)
    if horizon < 1:
        raise DataError(f"horizon must be >= 1, got {horizon}")
    if arr.shape[0] < 2:
        raise DataError("drift needs at least two observations")
    slope = (arr[-1] - arr[0]) / (arr.shape[0] - 1)
    steps = np.arange(1, horizon + 1)[:, None]
    return arr[-1][None, :] + steps * slope[None, :]


class _StoredHistoryEstimator(BaseEstimator):
    """Shared fit/state plumbing for the stateless reference forecasters."""

    _history: np.ndarray | None = None

    def fit(self, history) -> "_StoredHistoryEstimator":
        """Validate and store the history; these models have no training."""
        self._history = _validated_history(history)
        return self

    def _require_fitted(self) -> np.ndarray:
        if self._history is None:
            raise FittingError(f"{type(self).__name__} used before fit()")
        return self._history


class NaiveForecaster(_StoredHistoryEstimator):
    """Estimator wrapper around :func:`naive_forecast`."""

    def predict(self, horizon: int) -> np.ndarray:
        """Repeat the last observed value vector for ``horizon`` steps."""
        return naive_forecast(self._require_fitted(), horizon)


class SeasonalNaiveForecaster(_StoredHistoryEstimator):
    """Estimator wrapper around :func:`seasonal_naive_forecast`."""

    _TEST_PARAMS = ({"period": 2},)

    @positional_shim("period")
    def __init__(self, *, period: int) -> None:
        if period < 1:
            raise DataError(f"period must be >= 1, got {period}")
        self.period = int(period)

    def predict(self, horizon: int) -> np.ndarray:
        """Repeat the last full season of each dimension."""
        return seasonal_naive_forecast(
            self._require_fitted(), horizon, self.period
        )


class DriftForecaster(_StoredHistoryEstimator):
    """Estimator wrapper around :func:`drift_forecast`."""

    def predict(self, horizon: int) -> np.ndarray:
        """Extrapolate the first-to-last straight line per dimension."""
        return drift_forecast(self._require_fitted(), horizon)

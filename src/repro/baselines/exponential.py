"""Exponential-smoothing forecasters: Holt-Winters family and Theta.

Classical strong baselines beyond the paper's competitor list, implemented
from scratch:

* :class:`SimpleExponentialSmoothing` — level only;
* :class:`HoltLinear` — level + (optionally damped) trend;
* :class:`HoltWinters` — level + trend + additive seasonality;
* :class:`Theta` — the M3-winning theta method in its standard
  decomposition: SES on the theta=2 line plus half the linear-trend drift.

All smoothing parameters are fit by minimising the in-sample one-step sum
of squared errors with L-BFGS-B over the open unit box, which matches how
the reference implementations behave on these small series.

:func:`estimate_period` (autocorrelation-peak seasonality detection) lives
in :mod:`repro.decomposition.period` and is re-exported here because the
Holt-Winters path is its main consumer.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.core.estimator import BaseEstimator, positional_shim
from repro.decomposition.period import estimate_period
from repro.exceptions import FittingError

__all__ = [
    "SimpleExponentialSmoothing",
    "HoltLinear",
    "HoltWinters",
    "Theta",
    "estimate_period",
]


def _validated_series(x: np.ndarray, minimum: int) -> np.ndarray:
    series = np.asarray(x, dtype=float)
    if series.ndim != 1:
        raise FittingError(f"expected a 1-D series, got shape {series.shape}")
    if series.size < minimum:
        raise FittingError(
            f"series of {series.size} points too short (need >= {minimum})"
        )
    if not np.isfinite(series).all():
        raise FittingError("training series contains NaN or inf")
    return series


class SimpleExponentialSmoothing(BaseEstimator):
    """SES: ``level_t = alpha * y_t + (1 - alpha) * level_{t-1}``.

    ``alpha=None`` (default) fits the smoothing constant by SSE.
    ``alpha`` is keyword-only under the Estimator API.
    """

    _TEST_PARAMS = ({}, {"alpha": 0.5})

    @positional_shim("alpha")
    def __init__(self, *, alpha: float | None = None) -> None:
        if alpha is not None and not 0.0 < alpha <= 1.0:
            raise FittingError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._level: float | None = None
        self._fitted_alpha: float | None = None

    @staticmethod
    def _sse(alpha: float, y: np.ndarray) -> float:
        level = y[0]
        sse = 0.0
        for value in y[1:]:
            sse += (value - level) ** 2
            level = alpha * value + (1.0 - alpha) * level
        return sse

    def fit(self, x: np.ndarray) -> "SimpleExponentialSmoothing":
        """Estimate the level (and alpha, when not fixed) from the series."""
        y = _validated_series(x, 3)
        if self.alpha is None:
            result = optimize.minimize_scalar(
                lambda a: self._sse(a, y), bounds=(1e-4, 1.0), method="bounded"
            )
            self._fitted_alpha = float(result.x)
        else:
            self._fitted_alpha = self.alpha
        level = y[0]
        for value in y[1:]:
            level = self._fitted_alpha * value + (1.0 - self._fitted_alpha) * level
        self._level = float(level)
        return self

    @property
    def fitted_alpha(self) -> float:
        if self._fitted_alpha is None:
            raise FittingError("SimpleExponentialSmoothing used before fit()")
        return self._fitted_alpha

    def forecast(self, horizon: int) -> np.ndarray:
        """Flat forecast at the fitted level."""
        if self._level is None:
            raise FittingError("SimpleExponentialSmoothing used before fit()")
        if horizon < 1:
            raise FittingError(f"horizon must be >= 1, got {horizon}")
        return np.full(horizon, self._level)


class HoltLinear(BaseEstimator):
    """Holt's linear trend method, optionally damped.

    State equations (phi = 1 gives the classic undamped form)::

        level_t = alpha * y_t + (1 - alpha) * (level + phi * trend)
        trend_t = beta * (level_t - level) + (1 - beta) * phi * trend
        yhat_{t+h} = level + (phi + ... + phi^h) * trend

    ``damping`` is keyword-only under the Estimator API.
    """

    _TEST_PARAMS = ({}, {"damping": 0.9})

    @positional_shim("damping")
    def __init__(self, *, damping: float = 1.0) -> None:
        if not 0.0 < damping <= 1.0:
            raise FittingError(f"damping must be in (0, 1], got {damping}")
        self.damping = damping
        self._state: tuple[float, float] | None = None
        self.params: dict[str, float] = {}

    def _run(self, y: np.ndarray, alpha: float, beta: float) -> tuple[float, float, float]:
        phi = self.damping
        level = y[0]
        trend = y[1] - y[0]
        sse = 0.0
        for value in y[1:]:
            prediction = level + phi * trend
            sse += (value - prediction) ** 2
            new_level = alpha * value + (1.0 - alpha) * prediction
            trend = beta * (new_level - level) + (1.0 - beta) * phi * trend
            level = new_level
        return level, trend, sse

    def fit(self, x: np.ndarray) -> "HoltLinear":
        """Fit the smoothing constants by one-step SSE minimisation."""
        y = _validated_series(x, 4)

        def objective(params: np.ndarray) -> float:
            return self._run(y, params[0], params[1])[2]

        result = optimize.minimize(
            objective,
            x0=np.array([0.5, 0.1]),
            bounds=[(1e-4, 1.0), (1e-4, 1.0)],
            method="L-BFGS-B",
        )
        alpha, beta = result.x
        level, trend, _ = self._run(y, alpha, beta)
        self._state = (level, trend)
        self.params = {"alpha": float(alpha), "beta": float(beta)}
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        """Extrapolate the (damped) trend for ``horizon`` steps."""
        if self._state is None:
            raise FittingError("HoltLinear used before fit()")
        if horizon < 1:
            raise FittingError(f"horizon must be >= 1, got {horizon}")
        level, trend = self._state
        phi = self.damping
        damping_sums = np.cumsum(phi ** np.arange(1, horizon + 1))
        return level + damping_sums * trend


class HoltWinters(BaseEstimator):
    """Additive Holt-Winters: level + trend + seasonal components.

    Parameters
    ----------
    period:
        Season length (must divide into at least two full seasons of
        data).  Keyword-only under the Estimator API.
    """

    _TEST_PARAMS = ({"period": 4},)

    @positional_shim("period")
    def __init__(self, *, period: int) -> None:
        if period < 2:
            raise FittingError(f"period must be >= 2, got {period}")
        self.period = period
        self._state: tuple[float, float, np.ndarray] | None = None
        self.params: dict[str, float] = {}

    def _initial_state(self, y: np.ndarray) -> tuple[float, float, np.ndarray]:
        m = self.period
        first_season = y[:m]
        second_season = y[m : 2 * m]
        level = float(first_season.mean())
        trend = float((second_season.mean() - first_season.mean()) / m)
        seasonal = first_season - level
        return level, trend, seasonal.copy()

    def _run(
        self, y: np.ndarray, alpha: float, beta: float, gamma: float
    ) -> tuple[float, float, np.ndarray, float]:
        m = self.period
        level, trend, seasonal = self._initial_state(y)
        sse = 0.0
        for t in range(m, y.size):
            s_index = t % m
            prediction = level + trend + seasonal[s_index]
            error = y[t] - prediction
            sse += error**2
            new_level = alpha * (y[t] - seasonal[s_index]) + (1 - alpha) * (level + trend)
            trend = beta * (new_level - level) + (1 - beta) * trend
            seasonal[s_index] = gamma * (y[t] - new_level) + (1 - gamma) * seasonal[s_index]
            level = new_level
        return level, trend, seasonal, sse

    def fit(self, x: np.ndarray) -> "HoltWinters":
        """Fit level/trend/seasonal smoothing by one-step SSE minimisation."""
        y = _validated_series(x, 2 * self.period + 1)

        def objective(params: np.ndarray) -> float:
            return self._run(y, *params)[3]

        result = optimize.minimize(
            objective,
            x0=np.array([0.3, 0.05, 0.1]),
            bounds=[(1e-4, 1.0)] * 3,
            method="L-BFGS-B",
        )
        alpha, beta, gamma = result.x
        level, trend, seasonal, _ = self._run(y, alpha, beta, gamma)
        self._state = (level, trend, seasonal)
        self._nobs = y.size
        self.params = {
            "alpha": float(alpha),
            "beta": float(beta),
            "gamma": float(gamma),
        }
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        """Level + trend + periodic seasonal forecast."""
        if self._state is None:
            raise FittingError("HoltWinters used before fit()")
        if horizon < 1:
            raise FittingError(f"horizon must be >= 1, got {horizon}")
        level, trend, seasonal = self._state
        m = self.period
        steps = np.arange(1, horizon + 1)
        indices = (self._nobs + steps - 1) % m
        return level + steps * trend + seasonal[indices]


class Theta(BaseEstimator):
    """The standard two-line theta method (Assimakopoulos & Nikolopoulos).

    Decomposition: the theta=0 line is the linear regression on time (pure
    drift); the theta=2 line doubles the local curvature and is forecast
    with SES.  The final forecast averages the SES forecast of the theta=2
    line with the extrapolated drift line, which dampens the drift to about
    half the fitted slope — the classic M3 behaviour.
    """

    def __init__(self) -> None:
        self._ses: SimpleExponentialSmoothing | None = None
        self._slope = 0.0
        self._intercept = 0.0
        self._nobs = 0

    def fit(self, x: np.ndarray) -> "Theta":
        """Fit the drift line and the SES model of the theta=2 line."""
        y = _validated_series(x, 4)
        t = np.arange(y.size, dtype=float)
        self._slope, self._intercept = np.polyfit(t, y, 1)
        theta2 = 2.0 * y - (self._intercept + self._slope * t)
        self._ses = SimpleExponentialSmoothing().fit(theta2)
        self._nobs = y.size
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        """Average of the SES(theta=2) forecast and the drift line."""
        if self._ses is None:
            raise FittingError("Theta used before fit()")
        if horizon < 1:
            raise FittingError(f"horizon must be >= 1, got {horizon}")
        steps = np.arange(self._nobs, self._nobs + horizon, dtype=float)
        drift_line = self._intercept + self._slope * steps
        theta2_forecast = self._ses.forecast(horizon)
        return 0.5 * (theta2_forecast + drift_line)

"""The paper's competitor methods (Section IV-A3).

* :class:`~repro.baselines.arima.ARIMA` — Box-Jenkins ARIMA implemented from
  scratch (differencing, Hannan-Rissanen initialisation, conditional
  sum-of-squares refinement) with AIC-based order selection;
* :class:`~repro.baselines.lstm.LSTMForecaster` — a from-scratch numpy LSTM
  (full BPTT) using the paper's grid-searched configuration: one hidden layer
  of 128 units, dropout 0.2, 30 epochs, Adam, MSE loss;
* :class:`~repro.baselines.llmtime.LLMTime` — the zero-shot univariate LLM
  forecaster (Gruver et al., NeurIPS 2023) applied per dimension, sharing the
  exact scaling/tokenization/generation machinery with MultiCast;
* :mod:`~repro.baselines.naive` — naive, seasonal-naive, and drift reference
  forecasters used by tests and sanity benches.
"""

from repro.baselines.arima import ARIMA, auto_arima, kpss_statistic
from repro.baselines.exponential import (
    HoltLinear,
    HoltWinters,
    SimpleExponentialSmoothing,
    Theta,
    estimate_period,
)
from repro.baselines.llmtime import LLMTime, LLMTimeConfig
from repro.baselines.lstm import LSTMForecaster, LSTMNetwork
from repro.baselines.gru import GRUForecaster, GRUNetwork
from repro.baselines.var import VAR, auto_var
from repro.baselines.naive import drift_forecast, naive_forecast, seasonal_naive_forecast

__all__ = [
    "ARIMA",
    "auto_arima",
    "kpss_statistic",
    "LLMTime",
    "LLMTimeConfig",
    "LSTMForecaster",
    "LSTMNetwork",
    "GRUForecaster",
    "GRUNetwork",
    "SimpleExponentialSmoothing",
    "HoltLinear",
    "HoltWinters",
    "Theta",
    "estimate_period",
    "VAR",
    "auto_var",
    "naive_forecast",
    "seasonal_naive_forecast",
    "drift_forecast",
]

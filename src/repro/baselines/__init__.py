"""The paper's competitor methods (Section IV-A3).

* :class:`~repro.baselines.arima.ARIMA` — Box-Jenkins ARIMA implemented from
  scratch (differencing, Hannan-Rissanen initialisation, conditional
  sum-of-squares refinement) with AIC-based order selection;
* :class:`~repro.baselines.lstm.LSTMForecaster` — a from-scratch numpy LSTM
  (full BPTT) using the paper's grid-searched configuration: one hidden layer
  of 128 units, dropout 0.2, 30 epochs, Adam, MSE loss;
* :class:`~repro.baselines.llmtime.LLMTime` — the zero-shot univariate LLM
  forecaster (Gruver et al., NeurIPS 2023) applied per dimension, sharing the
  exact scaling/tokenization/generation machinery with MultiCast;
* :mod:`~repro.baselines.naive` — naive, seasonal-naive, and drift reference
  forecasters used by tests and sanity benches.

Every baseline implements the common
:class:`~repro.core.estimator.Estimator` protocol
(``fit``/``predict``/``get_params``/``set_params``), so the sweep runner
(:mod:`repro.sweeps`) and the adapters treat them uniformly.
:func:`make_estimator` builds any of them by registry name, wrapping
univariate models in :class:`~repro.core.estimator.PerDimension` so each
accepts ``(n, d)`` input.
"""

from repro.baselines.arima import ARIMA, auto_arima, kpss_statistic
from repro.baselines.exponential import (
    HoltLinear,
    HoltWinters,
    SimpleExponentialSmoothing,
    Theta,
    estimate_period,
)
from repro.baselines.llmtime import LLMTime, LLMTimeConfig
from repro.baselines.lstm import LSTMForecaster, LSTMNetwork
from repro.baselines.gru import GRUForecaster, GRUNetwork
from repro.baselines.var import VAR, auto_var
from repro.baselines.naive import (
    DriftForecaster,
    NaiveForecaster,
    SeasonalNaiveForecaster,
    drift_forecast,
    naive_forecast,
    seasonal_naive_forecast,
)
from repro.core.estimator import PerDimension
from repro.exceptions import ConfigError

__all__ = [
    "ARIMA",
    "auto_arima",
    "kpss_statistic",
    "LLMTime",
    "LLMTimeConfig",
    "LSTMForecaster",
    "LSTMNetwork",
    "GRUForecaster",
    "GRUNetwork",
    "SimpleExponentialSmoothing",
    "HoltLinear",
    "HoltWinters",
    "Theta",
    "estimate_period",
    "VAR",
    "auto_var",
    "naive_forecast",
    "seasonal_naive_forecast",
    "drift_forecast",
    "NaiveForecaster",
    "SeasonalNaiveForecaster",
    "DriftForecaster",
    "make_estimator",
    "available_estimators",
    "estimator_param_names",
]

#: Registry name -> (class, needs-PerDimension-wrapping).  Univariate
#: models are lifted to ``(n, d)`` input so every entry is multivariate.
_ESTIMATORS = {
    "arima": (ARIMA, True),
    "ses": (SimpleExponentialSmoothing, True),
    "holt": (HoltLinear, True),
    "holt-winters": (HoltWinters, True),
    "theta": (Theta, True),
    "lstm": (LSTMForecaster, False),
    "gru": (GRUForecaster, False),
    "var": (VAR, False),
    "llmtime": (LLMTime, False),
    "naive": (NaiveForecaster, False),
    "seasonal-naive": (SeasonalNaiveForecaster, False),
    "drift": (DriftForecaster, False),
}


def available_estimators() -> list[str]:
    """Registered estimator names, sorted."""
    return sorted(_ESTIMATORS)


def estimator_param_names(name: str) -> tuple[str, ...]:
    """The canonical constructor parameter names of a registered estimator."""
    cls, _ = _lookup(name)
    return tuple(sorted(cls._param_names()))


def _lookup(name: str):
    try:
        return _ESTIMATORS[name]
    except KeyError:
        known = ", ".join(available_estimators())
        raise ConfigError(
            f"unknown estimator {name!r}; available: {known}"
        ) from None


def make_estimator(name: str, **params):
    """Build a registered estimator from a flat parameter dict.

    Univariate models (``arima``, ``ses``, ``holt``, ``holt-winters``,
    ``theta``) come back wrapped in
    :class:`~repro.core.estimator.PerDimension`, so every returned object
    fits ``(n, d)`` input and predicts ``(horizon, d)``.  Unknown names
    and unknown parameters raise :class:`~repro.exceptions.ConfigError`.
    """
    cls, per_dimension = _lookup(name)
    known = cls._param_names()
    unknown = sorted(set(params) - set(known))
    if unknown:
        raise ConfigError(
            f"estimator {name!r} got unknown parameters {unknown}; "
            f"valid parameters are {sorted(known)}"
        )
    estimator = cls(**params)
    return PerDimension(estimator) if per_dimension else estimator

"""ARIMA from scratch.

ARIMA(p, d, q) models the ``d``-times differenced series ``y`` as

    y_t = c + sum_i phi_i y_{t-i} + sum_j theta_j e_{t-j} + e_t

The fitting pipeline is the classical one:

1. **Differencing** — apply ``d`` rounds of first differences;
2. **Hannan-Rissanen** — fit a long AR model by OLS to estimate innovations,
   then regress ``y_t`` on its own lags and the lagged innovation estimates
   to initialise ``(c, phi, theta)``;
3. **CSS refinement** — minimise the conditional sum of squared one-step
   errors with Nelder-Mead (scipy), starting from the Hannan-Rissanen
   estimates.  Pure AR models (q = 0) skip this step: OLS is already the
   CSS optimum.

Forecasting iterates the recursion with future innovations set to zero and
integrates the differences back.  :func:`auto_arima` picks ``d`` by variance
minimisation and ``(p, q)`` by AIC, which is how the paper's "no expert
knowledge" comparison is realised.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.core.estimator import BaseEstimator, positional_shim
from repro.exceptions import FittingError

__all__ = ["ARIMA", "auto_arima", "difference", "undifference", "kpss_statistic"]

#: 5 % critical value of the KPSS level-stationarity statistic.
KPSS_CRITICAL_5PCT = 0.463


def kpss_statistic(x: np.ndarray, lags: int | None = None) -> float:
    """KPSS test statistic for level stationarity.

    Larger values reject stationarity.  Uses the Newey-West long-run
    variance with a Bartlett kernel; ``lags`` defaults to the conventional
    ``floor(4 * (n / 100) ** 0.25)``.  Compare against
    :data:`KPSS_CRITICAL_5PCT` (0.463) to decide whether to difference.
    """
    series = np.asarray(x, dtype=float)
    if series.ndim != 1 or series.size < 10:
        raise FittingError("kpss needs a 1-D series of at least 10 points")
    n = series.size
    residuals = series - series.mean()
    partial_sums = np.cumsum(residuals)
    if lags is None:
        lags = int(4 * (n / 100.0) ** 0.25)
    lags = min(lags, n - 1)
    long_run_variance = float(residuals @ residuals) / n
    for k in range(1, lags + 1):
        weight = 1.0 - k / (lags + 1.0)
        long_run_variance += 2.0 * weight * float(residuals[k:] @ residuals[:-k]) / n
    if long_run_variance <= 0:
        return 0.0
    return float(partial_sums @ partial_sums) / (n**2 * long_run_variance)


def difference(x: np.ndarray, d: int) -> np.ndarray:
    """Apply ``d`` rounds of first differencing."""
    if d < 0:
        raise FittingError(f"d must be >= 0, got {d}")
    y = np.asarray(x, dtype=float)
    for _ in range(d):
        if y.size < 2:
            raise FittingError("series too short to difference")
        y = np.diff(y)
    return y


def undifference(forecast: np.ndarray, history: np.ndarray, d: int) -> np.ndarray:
    """Integrate a forecast of the ``d``-differenced series back to levels.

    ``history`` is the *original* (undifferenced) series the model was fit
    on; its trailing values seed each integration level.
    """
    if d < 0:
        raise FittingError(f"d must be >= 0, got {d}")
    x = np.asarray(history, dtype=float)
    result = np.asarray(forecast, dtype=float)
    # Seed values: last value of each differencing level, innermost first.
    levels = [x]
    for _ in range(d):
        levels.append(np.diff(levels[-1]))
    for level in range(d - 1, -1, -1):
        result = levels[level][-1] + np.cumsum(result)
    return result


def _lagged_design(y: np.ndarray, p: int) -> tuple[np.ndarray, np.ndarray]:
    """Design matrix of ``p`` lags (plus intercept) and the aligned target."""
    n = y.size - p
    if n < p + 2:
        raise FittingError(
            f"series of length {y.size} too short for AR({p}) estimation"
        )
    columns = [np.ones(n)]
    for i in range(1, p + 1):
        columns.append(y[p - i : p - i + n])
    return np.stack(columns, axis=1), y[p:]


def _fit_ar_ols(y: np.ndarray, p: int) -> tuple[float, np.ndarray, np.ndarray]:
    """OLS AR(p) fit: returns (intercept, phi, residuals)."""
    if p == 0:
        c = float(y.mean())
        return c, np.empty(0), y - c
    design, target = _lagged_design(y, p)
    coefficients, *_ = np.linalg.lstsq(design, target, rcond=None)
    residuals = target - design @ coefficients
    return float(coefficients[0]), coefficients[1:], residuals


def _css_residuals(
    y: np.ndarray, c: float, phi: np.ndarray, theta: np.ndarray
) -> np.ndarray:
    """One-step conditional residuals with pre-sample values set to zero."""
    p, q = phi.size, theta.size
    n = y.size
    e = np.zeros(n)
    for t in range(n):
        prediction = c
        for i in range(1, min(p, t) + 1):
            prediction += phi[i - 1] * y[t - i]
        for j in range(1, min(q, t) + 1):
            prediction += theta[j - 1] * e[t - j]
        e[t] = y[t] - prediction
    return e


class ARIMA(BaseEstimator):
    """AutoRegressive Integrated Moving Average forecaster.

    Parameters
    ----------
    order:
        The classical ``(p, d, q)`` triple (keyword-only under the
        Estimator API; legacy positional calls warn).

    Call :meth:`fit` with a 1-D history, then :meth:`forecast` for point
    forecasts at any horizon.  After fitting, :attr:`aic` exposes the model
    selection criterion used by :func:`auto_arima`.
    """

    _TEST_PARAMS = ({"order": (1, 0, 0)},)

    @positional_shim("order")
    def __init__(self, *, order: tuple[int, int, int] = (2, 0, 1)) -> None:
        p, d, q = order
        if min(p, d, q) < 0:
            raise FittingError(f"order components must be >= 0, got {order}")
        if p == 0 and q == 0 and d == 0:
            raise FittingError("ARIMA(0,0,0) has nothing to estimate")
        self.order = (int(p), int(d), int(q))
        self._history: np.ndarray | None = None
        self._c = 0.0
        self._phi = np.empty(0)
        self._theta = np.empty(0)
        self._sigma2 = 1.0
        self._nobs = 0

    # -- estimation ----------------------------------------------------------

    def fit(self, x: np.ndarray) -> "ARIMA":
        """Estimate the model from a 1-D training series (see module docs)."""
        series = np.asarray(x, dtype=float)
        if series.ndim != 1:
            raise FittingError(f"ARIMA expects a 1-D series, got shape {series.shape}")
        if not np.isfinite(series).all():
            raise FittingError("training series contains NaN or inf")
        p, d, q = self.order
        y = difference(series, d)
        if y.size < max(p, q) + max(8, p + q + 2):
            raise FittingError(
                f"series too short for ARIMA{self.order}: {series.size} points"
            )

        if q == 0:
            c, phi, residuals = _fit_ar_ols(y, p)
            theta = np.empty(0)
        else:
            c, phi, theta = self._hannan_rissanen(y, p, q)
            c, phi, theta = self._refine_css(y, c, phi, theta)
            residuals = _css_residuals(y, c, phi, theta)

        self._history = series
        self._c, self._phi, self._theta = c, phi, theta
        self._nobs = residuals.size
        self._sigma2 = float(np.mean(residuals**2))
        if not np.isfinite(self._sigma2) or self._sigma2 <= 0:
            self._sigma2 = 1e-12
        return self

    @staticmethod
    def _hannan_rissanen(
        y: np.ndarray, p: int, q: int
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """Initial (c, phi, theta) via the two-stage Hannan-Rissanen method."""
        long_order = min(max(10, 2 * (p + q)), y.size // 2 - 2)
        if long_order < 1:
            raise FittingError("series too short for Hannan-Rissanen")
        _, _, innovations = _fit_ar_ols(y, long_order)
        # Align: innovations[t] estimates e_{t + long_order}.
        offset = long_order
        start = max(p, q)
        rows = []
        targets = []
        for t in range(offset + start, y.size):
            row = [1.0]
            row.extend(y[t - i] for i in range(1, p + 1))
            row.extend(innovations[t - offset - j] for j in range(1, q + 1))
            rows.append(row)
            targets.append(y[t])
        if len(rows) < p + q + 2:
            raise FittingError("series too short for Hannan-Rissanen regression")
        design = np.asarray(rows)
        target = np.asarray(targets)
        coefficients, *_ = np.linalg.lstsq(design, target, rcond=None)
        c = float(coefficients[0])
        phi = coefficients[1 : 1 + p]
        theta = coefficients[1 + p : 1 + p + q]
        return c, phi, theta

    @staticmethod
    def _refine_css(
        y: np.ndarray, c: float, phi: np.ndarray, theta: np.ndarray
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """Polish the estimates by minimising the conditional sum of squares."""
        p, q = phi.size, theta.size

        def unpack(params: np.ndarray):
            return float(params[0]), params[1 : 1 + p], params[1 + p :]

        def objective(params: np.ndarray) -> float:
            ci, phii, thetai = unpack(params)
            # Keep the optimiser away from wildly explosive regions.
            if np.abs(phii).sum() > 4.0 or np.abs(thetai).sum() > 4.0:
                return 1e12
            e = _css_residuals(y, ci, phii, thetai)
            sse = float(e @ e)
            return sse if np.isfinite(sse) else 1e12

        start = np.concatenate(([c], phi, theta))
        result = optimize.minimize(
            objective, start, method="Nelder-Mead",
            options={"maxiter": 500 * start.size, "xatol": 1e-6, "fatol": 1e-8},
        )
        best = result.x if result.fun <= objective(start) else start
        return unpack(best)

    # -- inference -----------------------------------------------------------

    def _require_fitted(self) -> None:
        if self._history is None:
            raise FittingError("ARIMA used before fit()")

    @property
    def params(self) -> dict[str, object]:
        """Fitted parameters: intercept, AR and MA coefficients, sigma^2."""
        self._require_fitted()
        return {
            "c": self._c,
            "phi": self._phi.copy(),
            "theta": self._theta.copy(),
            "sigma2": self._sigma2,
        }

    @property
    def aic(self) -> float:
        """Akaike information criterion under Gaussian innovations."""
        self._require_fitted()
        k = 1 + self._phi.size + self._theta.size + 1  # + sigma^2
        return self._nobs * float(np.log(self._sigma2)) + 2.0 * k

    def forecast(self, horizon: int) -> np.ndarray:
        """Point forecast for ``horizon`` steps past the end of the history."""
        self._require_fitted()
        if horizon < 1:
            raise FittingError(f"horizon must be >= 1, got {horizon}")
        p, d, q = self.order
        y = difference(self._history, d)
        e = _css_residuals(y, self._c, self._phi, self._theta)

        extended_y = list(y)
        extended_e = list(e)
        predictions = np.empty(horizon)
        for step in range(horizon):
            t = len(extended_y)
            value = self._c
            for i in range(1, p + 1):
                if t - i >= 0:
                    value += self._phi[i - 1] * extended_y[t - i]
            for j in range(1, q + 1):
                if t - j >= 0:
                    value += self._theta[j - 1] * extended_e[t - j]
            predictions[step] = value
            extended_y.append(value)
            extended_e.append(0.0)  # future innovations are zero in expectation
        return undifference(predictions, self._history, d)


def auto_arima(
    x: np.ndarray,
    max_p: int = 3,
    max_d: int = 2,
    max_q: int = 2,
) -> ARIMA:
    """Order selection: ``d`` by the KPSS stationarity test, ``(p, q)`` by AIC.

    The series is differenced while the KPSS statistic rejects level
    stationarity at 5 % (the standard ``ndiffs`` procedure — a variance
    heuristic over-differences AR processes with strong positive
    autocorrelation); then all ``(p, q)`` combinations at that ``d`` are fit
    and the lowest-AIC model wins.
    """
    series = np.asarray(x, dtype=float)
    if series.ndim != 1 or series.size < 20:
        raise FittingError("auto_arima needs a 1-D series of at least 20 points")

    d = 0
    current = series
    while d < max_d and kpss_statistic(current) > KPSS_CRITICAL_5PCT:
        current = np.diff(current)
        d += 1

    best: ARIMA | None = None
    best_aic = np.inf
    for p in range(max_p + 1):
        for q in range(max_q + 1):
            if p == 0 and q == 0 and d == 0:
                continue
            try:
                model = ARIMA(order=(p, d, q)).fit(series)
            except (FittingError, np.linalg.LinAlgError):
                continue
            if model.aic < best_aic:
                best, best_aic = model, model.aic
    if best is None:
        raise FittingError("auto_arima could not fit any candidate model")
    return best

"""A from-scratch numpy GRU — the LSTM's lighter sibling.

Same training protocol as :class:`~repro.baselines.lstm.LSTMForecaster`
(sliding windows → next-step vector, min-max scaling, Adam, MSE, recursive
multi-step forecasting) with a gated recurrent unit cell:

    z_t = sigmoid([h_{t-1}, x_t] W_z + b_z)        (update gate)
    r_t = sigmoid([h_{t-1}, x_t] W_r + b_r)        (reset gate)
    n_t = tanh([r_t * h_{t-1}, x_t] W_n + b_n)     (candidate)
    h_t = (1 - z_t) * n_t + z_t * h_{t-1}

The backward pass is exact BPTT; the test-suite pins it against central
finite differences like the LSTM's.  Included as an extension baseline to
show the harness (and the gradient machinery) generalise beyond the
paper's single RNN architecture.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.lstm import AdamOptimizer, _clip_gradients, _sigmoid
from repro.core.estimator import BaseEstimator, positional_shim
from repro.exceptions import FittingError
from repro.scaling import MinMaxScaler, MultivariateScaler

__all__ = ["GRUNetwork", "GRUForecaster"]


class GRUNetwork:
    """Single-layer GRU + dense head with exact BPTT gradients.

    Gate parameters are stored jointly: ``W`` shaped
    ``(hidden + input, 2 * hidden)`` covers the update and reset gates;
    the candidate path has its own ``W_n`` because it sees the *reset*
    hidden state.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int = 64,
        output_size: int = 1,
        seed: int = 0,
    ) -> None:
        if min(input_size, hidden_size, output_size) < 1:
            raise FittingError("all layer sizes must be >= 1")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.output_size = output_size
        rng = np.random.default_rng(seed)
        fan_in = input_size + hidden_size
        scale = 1.0 / np.sqrt(fan_in)
        self.params: dict[str, np.ndarray] = {
            "W": rng.uniform(-scale, scale, size=(fan_in, 2 * hidden_size)),
            "b": np.zeros(2 * hidden_size),
            "W_n": rng.uniform(-scale, scale, size=(fan_in, hidden_size)),
            "b_n": np.zeros(hidden_size),
            "W_out": rng.uniform(-scale, scale, size=(hidden_size, output_size)),
            "b_out": np.zeros(output_size),
        }

    def forward(self, windows: np.ndarray) -> tuple[np.ndarray, dict]:
        """Batch forward pass; returns (predictions, cache)."""
        if windows.ndim != 3 or windows.shape[2] != self.input_size:
            raise FittingError(
                f"expected (batch, time, {self.input_size}) windows, "
                f"got {windows.shape}"
            )
        batch, time, _ = windows.shape
        hidden = self.hidden_size
        W, b = self.params["W"], self.params["b"]
        W_n, b_n = self.params["W_n"], self.params["b_n"]

        h = np.zeros((batch, hidden))
        steps = []
        for t in range(time):
            x_t = windows[:, t, :]
            zr_input = np.concatenate([h, x_t], axis=1)
            gates = _sigmoid(zr_input @ W + b)
            z = gates[:, :hidden]
            r = gates[:, hidden:]
            n_input = np.concatenate([r * h, x_t], axis=1)
            n = np.tanh(n_input @ W_n + b_n)
            h_prev = h
            h = (1.0 - z) * n + z * h_prev
            steps.append((zr_input, z, r, n_input, n, h_prev))

        predictions = h @ self.params["W_out"] + self.params["b_out"]
        cache = {"steps": steps, "h_final": h, "time": time}
        return predictions, cache

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """Inference-mode forward pass."""
        predictions, _ = self.forward(windows)
        return predictions

    def backward(self, d_predictions: np.ndarray, cache: dict) -> dict[str, np.ndarray]:
        """Exact gradients of the loss w.r.t. all parameters."""
        hidden = self.hidden_size
        W, W_n = self.params["W"], self.params["W_n"]
        grads = {name: np.zeros_like(p) for name, p in self.params.items()}

        grads["W_out"] = cache["h_final"].T @ d_predictions
        grads["b_out"] = d_predictions.sum(axis=0)
        dh = d_predictions @ self.params["W_out"].T

        for t in range(cache["time"] - 1, -1, -1):
            zr_input, z, r, n_input, n, h_prev = cache["steps"][t]
            dz = dh * (h_prev - n)
            dn = dh * (1.0 - z)
            dh_prev = dh * z

            dn_pre = dn * (1.0 - n**2)
            grads["W_n"] += n_input.T @ dn_pre
            grads["b_n"] += dn_pre.sum(axis=0)
            dn_input = dn_pre @ W_n.T
            dr_h = dn_input[:, :hidden]  # gradient w.r.t. (r * h_prev)
            dr = dr_h * h_prev
            dh_prev = dh_prev + dr_h * r

            dz_pre = dz * z * (1.0 - z)
            dr_pre = dr * r * (1.0 - r)
            d_gates = np.concatenate([dz_pre, dr_pre], axis=1)
            grads["W"] += zr_input.T @ d_gates
            grads["b"] += d_gates.sum(axis=0)
            dzr_input = d_gates @ W.T
            dh = dh_prev + dzr_input[:, :hidden]
        return grads


class GRUForecaster(BaseEstimator):
    """Windowed multivariate forecaster around :class:`GRUNetwork`.

    Same protocol as :class:`~repro.baselines.lstm.LSTMForecaster`; see
    that class for parameter semantics.  All parameters are keyword-only
    under the Estimator API; legacy positional calls warn.
    """

    _TEST_PARAMS = (
        {"window": 3, "hidden_size": 4, "epochs": 1, "batch_size": 8},
    )

    @positional_shim(
        "window", "hidden_size", "epochs", "learning_rate", "batch_size", "seed"
    )
    def __init__(
        self,
        *,
        window: int = 12,
        hidden_size: int = 64,
        epochs: int = 30,
        learning_rate: float = 1e-3,
        batch_size: int = 32,
        seed: int = 0,
    ) -> None:
        if window < 1:
            raise FittingError(f"window must be >= 1, got {window}")
        if epochs < 1:
            raise FittingError(f"epochs must be >= 1, got {epochs}")
        if batch_size < 1:
            raise FittingError(f"batch_size must be >= 1, got {batch_size}")
        self.window = window
        self.hidden_size = hidden_size
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.seed = seed
        self._network: GRUNetwork | None = None
        self._scaler: MultivariateScaler | None = None
        self._tail: np.ndarray | None = None
        self.loss_history: list[float] = []

    def fit(self, history: np.ndarray) -> "GRUForecaster":
        """Train on a ``(n, d)`` history array."""
        values = np.asarray(history, dtype=float)
        if values.ndim == 1:
            values = values[:, None]
        if values.ndim != 2:
            raise FittingError(f"expected (n, d) history, got shape {values.shape}")
        n, d = values.shape
        if n < self.window + 2:
            raise FittingError(
                f"history of {n} points too short for window={self.window}"
            )
        self._scaler = MultivariateScaler(MinMaxScaler).fit(values)
        scaled = self._scaler.transform(values)
        windows = np.stack(
            [scaled[i : i + self.window] for i in range(n - self.window)]
        )
        targets = scaled[self.window :]

        rng = np.random.default_rng(self.seed)
        network = GRUNetwork(
            input_size=d, hidden_size=self.hidden_size, output_size=d,
            seed=self.seed,
        )
        optimizer = AdamOptimizer(learning_rate=self.learning_rate)
        self.loss_history = []
        num_samples = windows.shape[0]
        for _ in range(self.epochs):
            order = rng.permutation(num_samples)
            epoch_loss = 0.0
            for start in range(0, num_samples, self.batch_size):
                idx = order[start : start + self.batch_size]
                predictions, cache = network.forward(windows[idx])
                error = predictions - targets[idx]
                epoch_loss += float((error**2).sum())
                grads = network.backward(2.0 * error / error.size, cache)
                _clip_gradients(grads, max_norm=5.0)
                optimizer.update(network.params, grads)
            self.loss_history.append(epoch_loss / (num_samples * d))
        self._network = network
        self._tail = scaled[-self.window :].copy()
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        """Recursive multi-step forecast, shape ``(horizon, d)``."""
        if self._network is None or self._scaler is None or self._tail is None:
            raise FittingError("GRUForecaster used before fit()")
        if horizon < 1:
            raise FittingError(f"horizon must be >= 1, got {horizon}")
        window = self._tail.copy()
        outputs = []
        for _ in range(horizon):
            prediction = self._network.predict(window[None, :, :])[0]
            outputs.append(prediction)
            window = np.vstack([window[1:], prediction])
        return self._scaler.inverse_transform(np.asarray(outputs))

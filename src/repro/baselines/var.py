"""Vector autoregression (VAR) — the classical *multivariate* baseline.

The paper's case for multiplexing is that multivariate series carry
inter-dimensional correlations a per-dimension forecaster ignores.  VAR is
the classical model built exactly on that idea:

    Y_t = c + A_1 Y_{t-1} + ... + A_p Y_{t-p} + e_t

with ``Y_t`` the d-vector of all dimensions, so every dimension's forecast
draws on every other dimension's history.  Estimation is equation-by-
equation OLS (the maximum-likelihood estimator under Gaussian errors);
order selection minimises the multivariate AIC
``ln det(Sigma_e) + 2 p d^2 / n``.

Comparing ``var`` against ``arima`` (per-dimension) in the evaluation
harness quantifies how much the cross-dimensional signal is actually worth
on each dataset — the classical mirror of MultiCast-vs-LLMTime.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimator import BaseEstimator, positional_shim
from repro.exceptions import FittingError

__all__ = ["VAR", "auto_var"]


class VAR(BaseEstimator):
    """Vector autoregression of order ``p`` with an intercept.

    Call :meth:`fit` with a ``(n, d)`` history, then :meth:`forecast`.
    ``order`` is keyword-only under the Estimator API; legacy positional
    calls warn.
    """

    _TEST_PARAMS = ({"order": 1},)

    @positional_shim("order")
    def __init__(self, *, order: int = 1) -> None:
        if order < 1:
            raise FittingError(f"order must be >= 1, got {order}")
        self.order = order
        self._intercept: np.ndarray | None = None
        self._coefficients: np.ndarray | None = None  # (p, d, d)
        self._sigma: np.ndarray | None = None
        self._history: np.ndarray | None = None
        self._nobs = 0

    @staticmethod
    def _validated(x: np.ndarray) -> np.ndarray:
        values = np.asarray(x, dtype=float)
        if values.ndim == 1:
            values = values[:, None]
        if values.ndim != 2:
            raise FittingError(f"expected (n, d) history, got shape {values.shape}")
        if not np.isfinite(values).all():
            raise FittingError("training series contains NaN or inf")
        return values

    def fit(self, x: np.ndarray) -> "VAR":
        """Estimate the coefficient matrices by per-equation OLS."""
        values = self._validated(x)
        n, d = values.shape
        p = self.order
        effective = n - p
        if effective < p * d + d + 2:
            raise FittingError(
                f"history of {n} points too short for VAR({p}) in {d} dims"
            )
        # Design: [1, Y_{t-1}, ..., Y_{t-p}] rows for t = p..n-1.
        design = np.ones((effective, 1 + p * d))
        for lag in range(1, p + 1):
            design[:, 1 + (lag - 1) * d : 1 + lag * d] = values[p - lag : n - lag]
        target = values[p:]
        solution, *_ = np.linalg.lstsq(design, target, rcond=None)

        self._intercept = solution[0]
        self._coefficients = np.stack(
            [
                solution[1 + (lag - 1) * d : 1 + lag * d].T
                for lag in range(1, p + 1)
            ]
        )
        residuals = target - design @ solution
        # MLE residual covariance (divide by the number of observations).
        self._sigma = residuals.T @ residuals / effective
        self._history = values
        self._nobs = effective
        return self

    def _require_fitted(self) -> None:
        if self._coefficients is None:
            raise FittingError("VAR used before fit()")

    @property
    def params(self) -> dict[str, np.ndarray]:
        """Fitted intercept ``c (d,)``, lag matrices ``A (p, d, d)``, and
        residual covariance ``sigma (d, d)``."""
        self._require_fitted()
        return {
            "c": self._intercept.copy(),
            "A": self._coefficients.copy(),
            "sigma": self._sigma.copy(),
        }

    @property
    def aic(self) -> float:
        """Multivariate AIC: ``ln det(sigma) + 2 p d^2 / n``."""
        self._require_fitted()
        d = self._sigma.shape[0]
        sign, logdet = np.linalg.slogdet(
            self._sigma + 1e-12 * np.eye(d)
        )
        if sign <= 0:
            return np.inf
        k = self.order * d * d + d
        return float(logdet + 2.0 * k / self._nobs)

    def forecast(self, horizon: int) -> np.ndarray:
        """Iterated point forecast, shape ``(horizon, d)``."""
        self._require_fitted()
        if horizon < 1:
            raise FittingError(f"horizon must be >= 1, got {horizon}")
        p = self.order
        window = [row.copy() for row in self._history[-p:]]
        outputs = []
        for _ in range(horizon):
            prediction = self._intercept.copy()
            for lag in range(1, p + 1):
                prediction += self._coefficients[lag - 1] @ window[-lag]
            outputs.append(prediction)
            window.append(prediction)
        return np.asarray(outputs)


def auto_var(x: np.ndarray, max_order: int = 5) -> VAR:
    """Order selection by multivariate AIC over ``1 .. max_order``."""
    values = VAR._validated(x)
    if max_order < 1:
        raise FittingError(f"max_order must be >= 1, got {max_order}")
    best: VAR | None = None
    best_aic = np.inf
    for p in range(1, max_order + 1):
        try:
            model = VAR(order=p).fit(values)
        except FittingError:
            break
        if model.aic < best_aic:
            best, best_aic = model, model.aic
    if best is None:
        raise FittingError("auto_var could not fit any candidate order")
    return best

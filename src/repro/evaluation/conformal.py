"""Split-conformal prediction intervals for any registered method.

The sample-ensemble intervals of :class:`~repro.core.ForecastOutput` reflect
the model's own spread, which may be over- or under-confident.  Conformal
calibration fixes that with a distribution-free guarantee: hold out
calibration windows, measure each method's absolute residuals there, and
widen/narrow the interval to the empirical ``level``-quantile of those
residuals.  Coverage then holds by construction (exchangeability assumed —
for time series this is the standard, slightly optimistic, split-conformal
recipe over rolling windows).

Residuals are calibrated *per horizon step*: long-range steps get wider
bands, matching how forecast uncertainty actually grows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data import Dataset
from repro.evaluation.protocol import run_method
from repro.exceptions import ConfigError, DataError

__all__ = ["ConformalForecaster", "ConformalResult"]


@dataclass
class ConformalResult:
    """A point forecast with conformally calibrated bands."""

    values: np.ndarray        # (horizon, d)
    lower: np.ndarray         # (horizon, d)
    upper: np.ndarray         # (horizon, d)
    level: float
    calibration_windows: int

    def width(self) -> np.ndarray:
        """Band width per step per dimension."""
        return self.upper - self.lower


class ConformalForecaster:
    """Wrap a registered method with split-conformal calibration.

    Parameters
    ----------
    method:
        A name from :func:`repro.evaluation.available_methods`.
    level:
        Target coverage of the band (e.g. 0.8).
    calibration_windows:
        How many rolling calibration origins to use (more = smoother
        quantile estimates, shorter effective training histories).
    """

    def __init__(
        self,
        method: str,
        level: float = 0.8,
        calibration_windows: int = 3,
        **method_options,
    ) -> None:
        if not 0.0 < level < 1.0:
            raise ConfigError(f"level must be in (0, 1), got {level}")
        if calibration_windows < 1:
            raise ConfigError(
                f"calibration_windows must be >= 1, got {calibration_windows}"
            )
        self.method = method
        self.level = level
        self.calibration_windows = calibration_windows
        self.method_options = method_options

    @staticmethod
    def _forecast_values(output) -> np.ndarray:
        return output if isinstance(output, np.ndarray) else output.values

    def forecast(
        self, dataset: Dataset, horizon: int, seed: int = 0
    ) -> ConformalResult:
        """Forecast ``horizon`` steps past the dataset's end, with bands.

        Calibration residuals come from re-running the method at
        ``calibration_windows`` rolling origins inside the dataset.
        """
        if horizon < 1:
            raise DataError(f"horizon must be >= 1, got {horizon}")
        values = np.asarray(dataset.values)
        n, d = values.shape
        needed = horizon * self.calibration_windows
        if n - needed < max(8, n // 3):
            raise DataError(
                f"dataset of {n} points too short for {self.calibration_windows} "
                f"calibration windows of horizon {horizon}"
            )

        # Per-step absolute residuals from the calibration windows.
        residuals = np.empty((self.calibration_windows, horizon, d))
        for w in range(self.calibration_windows):
            origin = n - (self.calibration_windows - w) * horizon
            history = values[:origin]
            actual = values[origin : origin + horizon]
            output = run_method(
                self.method, history, horizon, seed=seed + 1 + w,
                **self.method_options,
            )
            residuals[w] = np.abs(actual - self._forecast_values(output))

        # Finite-sample-corrected quantile over windows, per (step, dim).
        rank = min(
            1.0,
            np.ceil((self.calibration_windows + 1) * self.level)
            / self.calibration_windows,
        )
        margins = np.quantile(residuals, rank, axis=0)

        output = run_method(
            self.method, values, horizon, seed=seed, **self.method_options
        )
        point = self._forecast_values(output)
        return ConformalResult(
            values=point,
            lower=point - margins,
            upper=point + margins,
            level=self.level,
            calibration_windows=self.calibration_windows,
        )

"""Evaluation harness: protocol, method registry, result tables, plots.

The protocol follows the paper: hold out the trailing 20 % of each dataset,
forecast it with every method, and score per-dimension RMSE (Section IV-A5).
LLM-based methods additionally report token counts and simulated inference
seconds (see :mod:`repro.llm.cost`), which drive Tables VII-IX.
"""

from repro.evaluation.protocol import (
    EvalResult,
    available_methods,
    evaluate_method,
    run_method,
)
from repro.evaluation.backtest import BacktestResult, rolling_origin_evaluation
from repro.evaluation.conformal import ConformalForecaster, ConformalResult
from repro.evaluation.significance import DieboldMarianoResult, diebold_mariano
from repro.evaluation.results import TableResult, format_table
from repro.evaluation.plots import ascii_plot, overlay_series

__all__ = [
    "EvalResult",
    "run_method",
    "evaluate_method",
    "available_methods",
    "BacktestResult",
    "rolling_origin_evaluation",
    "ConformalForecaster",
    "ConformalResult",
    "diebold_mariano",
    "DieboldMarianoResult",
    "TableResult",
    "format_table",
    "ascii_plot",
    "overlay_series",
]

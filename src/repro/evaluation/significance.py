"""Forecast-accuracy significance testing (Diebold-Mariano).

When two methods' RMSEs differ by 10 %, is that signal or noise?  The
Diebold-Mariano test answers it from the loss differential series
``d_t = L(e1_t) - L(e2_t)``: under the null of equal accuracy the
studentised mean differential is asymptotically standard normal.  The
implementation includes the Harvey-Leybourne-Newbold small-sample
correction and a Newey-West (Bartlett) long-run variance whose bandwidth
defaults to ``h - 1`` for h-step-ahead forecasts, as in the original paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError

__all__ = ["DieboldMarianoResult", "diebold_mariano"]


def _normal_cdf(x: float) -> float:
    return 0.5 * math.erfc(-x / math.sqrt(2.0))


@dataclass(frozen=True)
class DieboldMarianoResult:
    """Test outcome: statistic, two-sided p-value, and interpretation aids."""

    statistic: float
    p_value: float
    mean_loss_differential: float
    num_observations: int

    @property
    def favours_first(self) -> bool:
        """True when method 1's losses are smaller on average."""
        return self.mean_loss_differential < 0

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether equal accuracy is rejected at level ``alpha``."""
        if not 0.0 < alpha < 1.0:
            raise DataError(f"alpha must be in (0, 1), got {alpha}")
        return self.p_value < alpha


def diebold_mariano(
    errors_1: np.ndarray,
    errors_2: np.ndarray,
    horizon: int = 1,
    loss: str = "squared",
) -> DieboldMarianoResult:
    """Diebold-Mariano test of equal forecast accuracy.

    Parameters
    ----------
    errors_1, errors_2:
        Forecast errors (actual − forecast) of the two methods over the
        same evaluation timestamps.
    horizon:
        Forecast horizon ``h``; sets the Newey-West bandwidth to ``h - 1``.
    loss:
        ``"squared"`` (RMSE-aligned) or ``"absolute"`` (MAE-aligned).

    Negative statistics favour method 1.  The returned p-value is
    two-sided with the Harvey-Leybourne-Newbold correction (Student-t is
    approximated by the normal beyond ~30 observations; below that the
    correction factor is the dominant fix anyway).
    """
    e1 = np.asarray(errors_1, dtype=float).ravel()
    e2 = np.asarray(errors_2, dtype=float).ravel()
    if e1.shape != e2.shape:
        raise DataError(f"error series differ in shape: {e1.shape} vs {e2.shape}")
    n = e1.size
    if n < 4:
        raise DataError(f"need at least 4 observations, got {n}")
    if horizon < 1:
        raise DataError(f"horizon must be >= 1, got {horizon}")
    if loss == "squared":
        d = e1**2 - e2**2
    elif loss == "absolute":
        d = np.abs(e1) - np.abs(e2)
    else:
        raise DataError(f"loss must be 'squared' or 'absolute', got {loss!r}")

    d_mean = float(d.mean())
    centred = d - d_mean
    bandwidth = min(horizon - 1, n - 1)
    long_run = float(centred @ centred) / n
    for k in range(1, bandwidth + 1):
        weight = 1.0 - k / (bandwidth + 1.0)
        long_run += 2.0 * weight * float(centred[k:] @ centred[:-k]) / n
    if long_run <= 0:
        # Degenerate differential (e.g. identical forecasts): no evidence.
        return DieboldMarianoResult(0.0, 1.0, d_mean, n)

    statistic = d_mean / math.sqrt(long_run / n)
    # Harvey-Leybourne-Newbold small-sample correction.
    h = horizon
    correction = math.sqrt((n + 1 - 2 * h + h * (h - 1) / n) / n)
    statistic *= correction
    p_value = 2.0 * (1.0 - _normal_cdf(abs(statistic)))
    return DieboldMarianoResult(
        statistic=float(statistic),
        p_value=float(min(1.0, p_value)),
        mean_loss_differential=d_mean,
        num_observations=n,
    )

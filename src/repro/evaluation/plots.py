"""Text-mode plots for the paper's figures.

Every figure in the paper is a forecast-overlay line chart (original series
vs one or two forecasts).  Offline and headless, we render the same overlays
as ASCII charts — enough to verify the *shape* claims ("follows the upward
trend", "shifted 1-2 units") — and expose the raw series for CSV export so
they can be re-plotted with any tool.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.exceptions import DataError

__all__ = ["ascii_plot", "overlay_series"]

_MARKERS = "*o+x#@"


def ascii_plot(
    series: dict[str, np.ndarray],
    width: int = 72,
    height: int = 16,
    title: str = "",
) -> str:
    """Render one or more aligned series as an ASCII line chart.

    Each entry of ``series`` maps a label to a 1-D array; all series share
    the x-axis (timestamp index) and the y-range.  The first series uses
    marker ``*``, the second ``o``, and so on; later series overwrite
    earlier ones where they collide.
    """
    if not series:
        raise DataError("ascii_plot needs at least one series")
    if width < 8 or height < 4:
        raise DataError("plot must be at least 8x4 characters")
    arrays = {}
    for label, values in series.items():
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size < 2:
            raise DataError(f"series {label!r} needs at least two points")
        if not np.isfinite(arr).all():
            raise DataError(f"series {label!r} contains NaN or inf")
        arrays[label] = arr

    y_min = min(a.min() for a in arrays.values())
    y_max = max(a.max() for a in arrays.values())
    if y_max == y_min:
        y_max = y_min + 1.0
    x_max = max(a.size for a in arrays.values())

    grid = [[" "] * width for _ in range(height)]
    for index, (label, arr) in enumerate(arrays.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for t, value in enumerate(arr):
            col = int(round(t / max(x_max - 1, 1) * (width - 1)))
            rel = (value - y_min) / (y_max - y_min)
            row = (height - 1) - int(round(rel * (height - 1)))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}" for i, label in enumerate(arrays)
    )
    lines.append(legend)
    lines.append(f"{y_max:10.3f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_min:10.3f} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + "└" + "─" * width)
    lines.append(" " * 12 + f"0{'t'.rjust(width - 1)}")
    return "\n".join(lines)


def overlay_series(
    path: str | Path,
    actual: np.ndarray,
    forecasts: dict[str, np.ndarray],
    history: np.ndarray | None = None,
) -> None:
    """Write a figure's underlying series to CSV for external re-plotting.

    Columns: timestamp index, ``history`` (blank over the forecast window),
    ``actual`` (blank over the history window), one column per forecast.
    """
    actual = np.asarray(actual, dtype=float).ravel()
    history = (
        np.asarray(history, dtype=float).ravel() if history is not None else np.empty(0)
    )
    for label, forecast in forecasts.items():
        if np.asarray(forecast).ravel().size != actual.size:
            raise DataError(
                f"forecast {label!r} length differs from the actuals"
            )
    offset = history.size
    total = offset + actual.size
    with Path(path).open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["t", "history", "actual", *forecasts])
        for t in range(total):
            row: list[object] = [t]
            row.append(f"{history[t]:.6g}" if t < offset else "")
            if t >= offset:
                row.append(f"{actual[t - offset]:.6g}")
                row.extend(
                    f"{np.asarray(f).ravel()[t - offset]:.6g}"
                    for f in forecasts.values()
                )
            else:
                row.extend([""] * (1 + len(forecasts)))
            writer.writerow(row)

"""Rolling-origin (backtesting) evaluation.

The paper scores one hold-out split; a production user wants error
estimates that don't hinge on a single test window.  Rolling-origin
evaluation re-forecasts from successively later origins and aggregates the
per-window errors — the standard backtest for small series.

Passing ``engine=`` routes MultiCast windows through the serving layer:
windows run concurrently on the engine's worker pool, and re-running the
same backtest (e.g. while comparing aggregation settings elsewhere, or from
a dashboard refresh loop) answers repeated windows from the engine's
content-addressed cache instead of regenerating them.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.spec import ForecastSpec
from repro.data import Dataset
from repro.evaluation.protocol import run_method
from repro.exceptions import ConfigError, DataError
from repro.metrics import rmse

__all__ = ["BacktestResult", "rolling_origin_evaluation"]

#: Methods the serving engine can execute (it wraps MultiCastForecaster).
_ENGINE_METHODS = ("multicast-di", "multicast-vi", "multicast-vc", "multicast-bi")


@dataclass
class BacktestResult:
    """Aggregated rolling-origin errors for one method on one dataset."""

    method: str
    dataset: str
    dim_names: tuple[str, ...]
    origins: list[int]
    window_rmse: list[dict[str, float]] = field(default_factory=list)

    @property
    def num_windows(self) -> int:
        return len(self.origins)

    def mean_rmse(self) -> dict[str, float]:
        """Per-dimension RMSE averaged over windows."""
        if not self.window_rmse:
            raise DataError("backtest collected no windows")
        return {
            name: float(np.mean([w[name] for w in self.window_rmse]))
            for name in self.dim_names
        }

    def std_rmse(self) -> dict[str, float]:
        """Per-dimension RMSE standard deviation over windows."""
        if not self.window_rmse:
            raise DataError("backtest collected no windows")
        return {
            name: float(np.std([w[name] for w in self.window_rmse]))
            for name in self.dim_names
        }


def rolling_origin_evaluation(
    method: str,
    dataset: Dataset,
    horizon: int,
    num_windows: int = 3,
    stride: int | None = None,
    min_history: int | None = None,
    seed: int = 0,
    engine=None,
    state_cache=None,
    spec: ForecastSpec | None = None,
    **options,
) -> BacktestResult:
    """Evaluate ``method`` at ``num_windows`` successive forecast origins.

    The last window's origin is ``n - horizon``; earlier windows step back
    by ``stride`` (default: ``horizon``, non-overlapping test windows).
    Every window must leave at least ``min_history`` (default: half the
    series) points of history.

    ``spec`` is a template :class:`~repro.core.spec.ForecastSpec` carrying
    the pipeline settings for MultiCast methods (its ``series``, ``horizon``
    and ``seed`` are filled in per window; its ``scheme`` is taken from
    ``method``).  Passing pipeline settings as loose keyword ``options``
    instead still works but is deprecated.

    ``engine`` (a :class:`~repro.serving.ForecastEngine`) is honoured for
    MultiCast methods: all windows are submitted at once and served
    concurrently, with results memoized in the engine's cache.  Other
    methods ignore it and run sequentially as before.

    ``state_cache`` (an :class:`~repro.llm.state_cache.IngestStateCache`)
    is honoured for sequential MultiCast windows: because origins ascend
    and each window's prompt extends the previous one's, window ``k+1``
    forks window ``k``'s cached ingest state and advances only the new
    suffix — O(Δ) instead of O(n) prefill per window.  Engine-served
    backtests use the engine's own ingest cache instead.
    """
    is_multicast = method in _ENGINE_METHODS
    if spec is not None:
        if not is_multicast:
            raise ConfigError(
                f"spec= applies only to MultiCast methods, not {method!r}"
            )
        if options:
            raise ConfigError(
                "pass pipeline settings inside spec=, not as loose options"
            )
        bound = [
            name for name in ("series", "horizon")
            if getattr(spec, name) is not None
        ]
        if bound:
            raise ConfigError(
                f"spec= must be a template ForecastSpec — the backtest "
                f"fills in the per-window series, horizon and seed itself, "
                f"but this spec already binds {bound}; rebuild it without "
                f"those fields (or spec.replace("
                + ", ".join(f"{name}=None" for name in bound)
                + "))"
            )
    elif is_multicast and options:
        warnings.warn(
            "passing loose pipeline options to rolling_origin_evaluation is "
            "deprecated; pass a template ForecastSpec via spec= instead "
            "(see docs/API.md)",
            DeprecationWarning,
            stacklevel=2,
        )
    if horizon < 1:
        raise ConfigError(f"horizon must be >= 1, got {horizon}")
    if num_windows < 1:
        raise ConfigError(f"num_windows must be >= 1, got {num_windows}")
    stride = horizon if stride is None else stride
    if stride < 1:
        raise ConfigError(f"stride must be >= 1, got {stride}")
    n = dataset.num_timestamps
    min_history = n // 2 if min_history is None else min_history

    origins = [n - horizon - k * stride for k in range(num_windows)][::-1]
    if origins[0] < min_history:
        raise ConfigError(
            f"{num_windows} windows of horizon {horizon} (stride {stride}) "
            f"leave only {origins[0]} history points (< {min_history})"
        )

    result = BacktestResult(
        method=method,
        dataset=dataset.name,
        dim_names=dataset.dim_names,
        origins=origins,
    )
    if spec is not None:
        forecasts = _run_windows_from_spec(
            spec, method, dataset, origins, horizon, seed, engine, state_cache
        )
    elif engine is not None and is_multicast:
        forecasts = _run_windows_on_engine(
            engine, method, dataset, origins, horizon, seed, options
        )
    else:
        run_options = dict(options)
        if state_cache is not None and is_multicast:
            run_options["state_cache"] = state_cache
        forecasts = []
        for window_index, origin in enumerate(origins):
            history = np.asarray(dataset.values[:origin])
            output = run_method(
                method, history, horizon, seed=seed + window_index, **run_options
            )
            forecasts.append(
                output if isinstance(output, np.ndarray) else output.values
            )
    for origin, forecast in zip(origins, forecasts):
        actual = np.asarray(dataset.values[origin : origin + horizon])
        result.window_rmse.append(
            {
                name: rmse(actual[:, k], forecast[:, k])
                for k, name in enumerate(dataset.dim_names)
            }
        )
    return result


def _run_windows_from_spec(
    spec, method, dataset, origins, horizon, seed, engine, state_cache
):
    """Run every backtest window from one template spec.

    Windows keep the per-window seed protocol (``seed + window_index``)
    and take their scheme from ``method``, so a spec-driven backtest
    scores identically to the loose-options path under the same settings.
    """
    from repro.core import MultiCastForecaster
    from repro.serving import ForecastRequest

    scheme = method.split("-", 1)[1]
    window_specs = [
        spec.replace(
            series=np.asarray(dataset.values[:origin]),
            horizon=horizon,
            seed=seed + window_index,
            scheme=scheme,
        )
        for window_index, origin in enumerate(origins)
    ]
    if engine is not None:
        responses = engine.forecast_batch(
            ForecastRequest.from_spec(
                window_spec, name=f"{dataset.name}@{origin}"
            )
            for window_spec, origin in zip(window_specs, origins)
        )
        return [response.values for response in responses]
    forecaster = MultiCastForecaster(state_cache=state_cache)
    return [
        forecaster.forecast(window_spec).values for window_spec in window_specs
    ]


def _run_windows_on_engine(
    engine, method, dataset, origins, horizon, seed, options
):
    """Submit every backtest window to the serving engine at once.

    Windows keep the sequential protocol's per-window seed (``seed +
    window_index``), so engine-served backtests score identically to
    sequential ones — they are just faster, and repeated runs hit the
    engine's cache.
    """
    from repro.core import MultiCastConfig, SaxConfig
    from repro.serving import ForecastRequest

    scheme = method.split("-", 1)[1]
    sax_options = dict(options).pop("sax", None)
    config_options = {k: v for k, v in options.items() if k != "sax"}
    sax = SaxConfig(**sax_options) if isinstance(sax_options, dict) else sax_options
    requests = []
    for window_index, origin in enumerate(origins):
        config = MultiCastConfig(
            scheme=scheme, sax=sax, seed=seed + window_index, **config_options
        )
        requests.append(
            ForecastRequest(
                history=np.asarray(dataset.values[:origin]),
                horizon=horizon,
                config=config,
                name=f"{dataset.name}@{origin}",
            )
        )
    responses = engine.forecast_batch(requests)
    return [response.values for response in responses]

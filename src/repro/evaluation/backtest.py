"""Rolling-origin (backtesting) evaluation.

The paper scores one hold-out split; a production user wants error
estimates that don't hinge on a single test window.  Rolling-origin
evaluation re-forecasts from successively later origins and aggregates the
per-window errors — the standard backtest for small series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data import Dataset
from repro.evaluation.protocol import run_method
from repro.exceptions import ConfigError, DataError
from repro.metrics import rmse

__all__ = ["BacktestResult", "rolling_origin_evaluation"]


@dataclass
class BacktestResult:
    """Aggregated rolling-origin errors for one method on one dataset."""

    method: str
    dataset: str
    dim_names: tuple[str, ...]
    origins: list[int]
    window_rmse: list[dict[str, float]] = field(default_factory=list)

    @property
    def num_windows(self) -> int:
        return len(self.origins)

    def mean_rmse(self) -> dict[str, float]:
        """Per-dimension RMSE averaged over windows."""
        if not self.window_rmse:
            raise DataError("backtest collected no windows")
        return {
            name: float(np.mean([w[name] for w in self.window_rmse]))
            for name in self.dim_names
        }

    def std_rmse(self) -> dict[str, float]:
        """Per-dimension RMSE standard deviation over windows."""
        if not self.window_rmse:
            raise DataError("backtest collected no windows")
        return {
            name: float(np.std([w[name] for w in self.window_rmse]))
            for name in self.dim_names
        }


def rolling_origin_evaluation(
    method: str,
    dataset: Dataset,
    horizon: int,
    num_windows: int = 3,
    stride: int | None = None,
    min_history: int | None = None,
    seed: int = 0,
    **options,
) -> BacktestResult:
    """Evaluate ``method`` at ``num_windows`` successive forecast origins.

    The last window's origin is ``n - horizon``; earlier windows step back
    by ``stride`` (default: ``horizon``, non-overlapping test windows).
    Every window must leave at least ``min_history`` (default: half the
    series) points of history.
    """
    if horizon < 1:
        raise ConfigError(f"horizon must be >= 1, got {horizon}")
    if num_windows < 1:
        raise ConfigError(f"num_windows must be >= 1, got {num_windows}")
    stride = horizon if stride is None else stride
    if stride < 1:
        raise ConfigError(f"stride must be >= 1, got {stride}")
    n = dataset.num_timestamps
    min_history = n // 2 if min_history is None else min_history

    origins = [n - horizon - k * stride for k in range(num_windows)][::-1]
    if origins[0] < min_history:
        raise ConfigError(
            f"{num_windows} windows of horizon {horizon} (stride {stride}) "
            f"leave only {origins[0]} history points (< {min_history})"
        )

    result = BacktestResult(
        method=method,
        dataset=dataset.name,
        dim_names=dataset.dim_names,
        origins=origins,
    )
    for window_index, origin in enumerate(origins):
        history = np.asarray(dataset.values[:origin])
        actual = np.asarray(dataset.values[origin : origin + horizon])
        output = run_method(
            method, history, horizon, seed=seed + window_index, **options
        )
        forecast = output if isinstance(output, np.ndarray) else output.values
        result.window_rmse.append(
            {
                name: rmse(actual[:, k], forecast[:, k])
                for k, name in enumerate(dataset.dim_names)
            }
        )
    return result

"""Result containers and plain-text table rendering.

Benchmarks print each reproduced table in the paper's row/column layout so
the output can be eyeballed against the PDF.  A :class:`TableResult` is a
header row plus data rows; :func:`format_table` renders aligned ASCII, and
``save_json``/``load_json`` round-trip tables for archival comparison runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import DataError

__all__ = ["TableResult", "format_table"]


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(header: list[str], rows: list[list], title: str = "") -> str:
    """Render rows as an aligned ASCII table (monospace, pipe-separated)."""
    if not header:
        raise DataError("a table needs a header row")
    text_rows = [[_cell(v) for v in row] for row in rows]
    for i, row in enumerate(text_rows):
        if len(row) != len(header):
            raise DataError(
                f"row {i} has {len(row)} cells for {len(header)} columns"
            )
    widths = [
        max(len(header[c]), *(len(r[c]) for r in text_rows)) if text_rows else len(header[c])
        for c in range(len(header))
    ]
    lines = []
    if title:
        lines.append(title)
    divider = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append(divider)
    for row in text_rows:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class TableResult:
    """A reproduced paper table: identity, layout, and the measured cells."""

    table_id: str
    title: str
    header: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        """Append one data row (cells in header order)."""
        self.rows.append(list(cells))

    def cell(self, row_label: str, column: str):
        """Look up a cell by first-column label and column name."""
        try:
            column_index = self.header.index(column)
        except ValueError:
            raise DataError(f"no column {column!r} in {self.header}") from None
        for row in self.rows:
            if row[0] == row_label:
                return row[column_index]
        raise DataError(f"no row labelled {row_label!r}")

    def format(self) -> str:
        """Render the table (plus notes) as aligned ASCII text."""
        text = format_table(self.header, self.rows, title=f"{self.table_id}: {self.title}")
        if self.notes:
            text += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return text

    def __str__(self) -> str:
        return self.format()

    def to_dict(self) -> dict:
        """Plain-JSON representation (floats stay floats, N/A stays a string)."""
        return {
            "table_id": self.table_id,
            "title": self.title,
            "header": list(self.header),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    def save_json(self, path: str | Path) -> None:
        """Persist the table for archival/regression comparison."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load_json(cls, path: str | Path) -> "TableResult":
        """Load a table previously written by :meth:`save_json`."""
        path = Path(path)
        if not path.exists():
            raise DataError(f"no such file: {path}")
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise DataError(f"{path} is not valid JSON: {exc}") from None
        missing = {"table_id", "title", "header", "rows"} - set(payload)
        if missing:
            raise DataError(f"{path} lacks table fields: {sorted(missing)}")
        return cls(
            table_id=payload["table_id"],
            title=payload["title"],
            header=list(payload["header"]),
            rows=[list(row) for row in payload["rows"]],
            notes=list(payload.get("notes", [])),
        )

"""Experiment protocol and method registry.

Every competitor from the paper's Section IV-A3 is registered under a name:

========================  ====================================================
``multicast-di/vi/vc``    MultiCast with the given multiplexing scheme
``multicast-bi``          the block-interleaving extension
``llmtime``               LLMTime applied per dimension
``arima``                 auto-order ARIMA per dimension
``lstm``                  the paper's grid-searched LSTM (128 units, 30 epochs)
``naive``/``drift``       reference forecasters
========================  ====================================================

:func:`run_method` produces the raw forecast; :func:`evaluate_method` adds
per-dimension RMSE against the held-out tail — one cell of Tables IV-VI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines import (
    GRUForecaster,
    HoltWinters,
    LLMTime,
    LSTMForecaster,
    Theta,
    auto_arima,
    auto_var,
    drift_forecast,
    estimate_period,
    naive_forecast,
    seasonal_naive_forecast,
)
from repro.core import (
    ForecastSpec,
    MultiCastConfig,
    MultiCastForecaster,
    SaxConfig,
)
from repro.core.spec import canonicalize_sampling_options
from repro.data import Dataset
from repro.exceptions import ConfigError
from repro.metrics import rmse

__all__ = ["EvalResult", "run_method", "evaluate_method", "available_methods"]

DEFAULT_TEST_FRACTION = 0.2


@dataclass
class EvalResult:
    """One (method, dataset) evaluation: forecasts, errors, and accounting."""

    method: str
    dataset: str
    dim_names: tuple[str, ...]
    forecast: np.ndarray
    actual: np.ndarray
    rmse_per_dim: dict[str, float]
    wall_seconds: float
    simulated_seconds: float = 0.0
    prompt_tokens: int = 0
    generated_tokens: int = 0
    metadata: dict = field(default_factory=dict)

    @property
    def reported_seconds(self) -> float:
        """What the paper's time rows report: simulated seconds for LLM
        methods (token-count arithmetic), wall time otherwise."""
        return self.simulated_seconds if self.simulated_seconds > 0 else self.wall_seconds


def _multicast_forecast(scheme):
    def run(history, horizon, seed, **options):
        options = canonicalize_sampling_options(
            options, context=f"run_method('multicast-{scheme}')"
        )
        sax_options = options.pop("sax", None)
        state_cache = options.pop("state_cache", None)
        execution = options.pop("execution", "batched")
        sax = SaxConfig(**sax_options) if isinstance(sax_options, dict) else sax_options
        config = MultiCastConfig(scheme=scheme, sax=sax, seed=seed, **options)
        spec = ForecastSpec.from_config(
            config, series=history, horizon=horizon, execution=execution
        )
        return MultiCastForecaster(state_cache=state_cache).forecast(spec)

    return run


def _llmtime_forecast(history, horizon, seed, **options):
    options = canonicalize_sampling_options(
        options, context="run_method('llmtime')"
    )
    return LLMTime(seed=seed, **options).forecast(history, horizon)


def _arima_forecast(history, horizon, seed, **options):
    del seed  # deterministic
    columns = [
        auto_arima(history[:, k], **options).forecast(horizon)
        for k in range(history.shape[1])
    ]
    return np.stack(columns, axis=1)


def _gru_forecast(history, horizon, seed, **options):
    """GRU extension baseline (same protocol as the LSTM)."""
    model = GRUForecaster(seed=seed, **options).fit(history)
    return model.forecast(horizon)


def _var_forecast(history, horizon, seed, **options):
    """Vector autoregression: the classical multivariate comparator."""
    del seed  # deterministic
    return auto_var(history, **options).forecast(horizon)


def _lstm_forecast(history, horizon, seed, **options):
    model = LSTMForecaster(seed=seed, **options).fit(history)
    return model.forecast(horizon)


def _holt_winters_forecast(history, horizon, seed, **options):
    """Additive Holt-Winters per dimension; the period is auto-detected
    from the autocorrelation peak unless passed as an option."""
    del seed  # deterministic
    period = options.pop("period", None)
    columns = []
    for k in range(history.shape[1]):
        series = history[:, k]
        p = estimate_period(series) if period is None else period
        if p >= 2 and series.size >= 2 * p + 1:
            columns.append(HoltWinters(period=p, **options).fit(series).forecast(horizon))
        else:
            columns.append(Theta().fit(series).forecast(horizon))
    return np.stack(columns, axis=1)


def _theta_forecast(history, horizon, seed, **options):
    del seed, options  # deterministic, no options
    columns = [
        Theta().fit(history[:, k]).forecast(horizon)
        for k in range(history.shape[1])
    ]
    return np.stack(columns, axis=1)


def _seasonal_naive(history, horizon, seed, **options):
    """Seasonal naive per dimension with an auto-detected (or given) period."""
    del seed
    period = options.pop("period", None)
    columns = []
    for k in range(history.shape[1]):
        p = estimate_period(history[:, k]) if period is None else period
        p = max(1, min(p, history.shape[0]))
        columns.append(
            seasonal_naive_forecast(history[:, k : k + 1], horizon, p)[:, 0]
        )
    return np.stack(columns, axis=1)


def _naive(history, horizon, seed, **options):
    del seed, options
    return naive_forecast(history, horizon)


def _drift(history, horizon, seed, **options):
    del seed, options
    return drift_forecast(history, horizon)


_METHODS = {
    "multicast-di": _multicast_forecast("di"),
    "multicast-vi": _multicast_forecast("vi"),
    "multicast-vc": _multicast_forecast("vc"),
    "multicast-bi": _multicast_forecast("bi"),
    "llmtime": _llmtime_forecast,
    "arima": _arima_forecast,
    "lstm": _lstm_forecast,
    "var": _var_forecast,
    "gru": _gru_forecast,
    "holt-winters": _holt_winters_forecast,
    "theta": _theta_forecast,
    "naive": _naive,
    "seasonal-naive": _seasonal_naive,
    "drift": _drift,
}


def available_methods() -> list[str]:
    """Registered method names, paper competitors first."""
    return list(_METHODS)


def run_method(
    method: str,
    history: np.ndarray,
    horizon: int,
    seed: int = 0,
    **options,
):
    """Run one registered method; returns its native forecast object.

    LLM methods return a :class:`~repro.core.output.ForecastOutput`; the
    classical baselines return a plain ``(horizon, d)`` array.
    """
    try:
        runner = _METHODS[method]
    except KeyError:
        known = ", ".join(_METHODS)
        raise ConfigError(f"unknown method {method!r}; available: {known}") from None
    return runner(history, horizon, seed, **options)


def evaluate_method(
    method: str,
    dataset: Dataset,
    test_fraction: float = DEFAULT_TEST_FRACTION,
    seed: int = 0,
    **options,
) -> EvalResult:
    """Hold out the trailing fraction, forecast it, and score per-dim RMSE."""
    history, actual = dataset.train_test_split(test_fraction)
    horizon = actual.shape[0]
    started = time.perf_counter()
    output = run_method(method, history, horizon, seed=seed, **options)
    wall = time.perf_counter() - started

    if isinstance(output, np.ndarray):
        forecast = output
        simulated = 0.0
        prompt_tokens = generated_tokens = 0
        metadata: dict = {}
    else:
        forecast = output.values
        simulated = output.simulated_seconds
        prompt_tokens = output.prompt_tokens
        generated_tokens = output.generated_tokens
        metadata = dict(output.metadata)

    errors = {
        name: rmse(actual[:, k], forecast[:, k])
        for k, name in enumerate(dataset.dim_names)
    }
    return EvalResult(
        method=method,
        dataset=dataset.name,
        dim_names=dataset.dim_names,
        forecast=forecast,
        actual=actual,
        rmse_per_dim=errors,
        wall_seconds=wall,
        simulated_seconds=simulated,
        prompt_tokens=prompt_tokens,
        generated_tokens=generated_tokens,
        metadata=metadata,
    )

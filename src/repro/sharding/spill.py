"""The on-disk spill tier of the two-tier ingest store.

A worker's in-memory :class:`~repro.llm.state_cache.IngestStateCache` is
bounded and process-private: LRU eviction throws prefill work away, and a
worker restart loses everything.  :class:`SpillStore` is the second tier
— a shared directory of serialized prefilled-model checkpoints that

* receives entries the in-memory tier evicts (so eviction demotes rather
  than destroys),
* answers in-memory misses (so prefill state survives worker restarts and
  *migrates across shards*: worker A's eviction is worker B's warm start
  after a routing change),
* is itself size-bounded, LRU-evicted **by token count** (a prefilled
  state's footprint scales with its prompt length, not its entry count),
  with recency tracked by file mtime — loads refresh it.

Lookups never scan the directory: deposits only ever happen at the full
prompt and at :func:`~repro.llm.state_cache.checkpoint_lengths` doubling
boundaries, so :meth:`fetch` probes the exact key plus O(log n) prefix
keys by content digest and stops at the longest hit.

Robustness contract: writes are atomic (temp file + ``os.replace``), and
a load that fails for *any* reason — truncated file from a killed worker,
pickle drift, concurrent eviction — deletes the entry and reports a miss.
A corrupt spill tier can cost re-ingest work but can never poison a
forecast or crash a worker.  Multiple worker processes share one
directory without coordination; every cross-process race collapses to
"miss" or "redundant store".
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections.abc import Sequence
from pathlib import Path

from repro.exceptions import ConfigError
from repro.llm.interface import LanguageModel
from repro.llm.state_cache import checkpoint_lengths

__all__ = ["SpillStore"]

_SUFFIX = ".spill"


class SpillStore:
    """Size-bounded shared directory of pickled prefilled models.

    Parameters
    ----------
    directory:
        Where entries live; created if missing.  Point every worker of a
        sharded engine at the same directory to let evicted prefill state
        migrate across shards.
    max_tokens:
        Total prompt-token budget across all spilled entries; the oldest
        (by mtime) entries are unlinked once the budget is exceeded.
        ``0`` builds a disabled store (stores and fetches are no-ops).
    """

    def __init__(self, directory: str | Path, max_tokens: int = 1_048_576) -> None:
        if max_tokens < 0:
            raise ConfigError(f"max_tokens must be >= 0, got {max_tokens}")
        self.directory = Path(directory)
        self.max_tokens = max_tokens
        if self.enabled:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._stores = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._corrupt_dropped = 0

    @property
    def enabled(self) -> bool:
        """False for a zero-budget store (stores and fetches are no-ops)."""
        return self.max_tokens > 0

    @staticmethod
    def _digest(model_name: str, vocab_size: int, tokens: tuple) -> str:
        payload = repr((model_name, int(vocab_size), tokens)).encode()
        return hashlib.sha256(payload).hexdigest()

    def _path(self, model_name: str, vocab_size: int, tokens: tuple) -> Path:
        digest = self._digest(model_name, vocab_size, tokens)
        return self.directory / f"{digest}.{len(tokens)}{_SUFFIX}"

    # -- write side ----------------------------------------------------------

    def store(
        self,
        model_name: str,
        vocab_size: int,
        tokens: Sequence[int],
        model: LanguageModel,
    ) -> None:
        """Persist one prefilled model checkpoint (atomic, then evict).

        Entries longer than the whole budget are dropped outright.  The
        caller keeps ownership of ``model`` — it is serialized, not
        retained — so this is safe to call with a model about to be
        discarded by the in-memory tier.
        """
        prompt = tuple(int(t) for t in tokens)
        if not self.enabled or not prompt or len(prompt) > self.max_tokens:
            return
        path = self._path(model_name, vocab_size, prompt)
        payload = pickle.dumps(
            (model_name, int(vocab_size), prompt, model),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        temp = path.with_suffix(f".tmp-{os.getpid()}-{threading.get_ident()}")
        try:
            temp.write_bytes(payload)
            os.replace(temp, path)
        except OSError:
            # Disk trouble degrades the spill tier to a no-op, never the
            # forecast path.
            temp.unlink(missing_ok=True)
            return
        with self._lock:
            self._stores += 1
        self._evict()

    def _entries(self) -> list[tuple[Path, int, float]]:
        """(path, token count, mtime) for every live entry, oldest first."""
        rows = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        for name in names:
            if not name.endswith(_SUFFIX):
                continue
            try:
                count = int(name[: -len(_SUFFIX)].rsplit(".", 1)[1])
                mtime = (self.directory / name).stat().st_mtime
            except (IndexError, ValueError, OSError):
                continue  # foreign file or concurrently removed
            rows.append((self.directory / name, count, mtime))
        rows.sort(key=lambda row: row[2])
        return rows

    def _evict(self) -> None:
        rows = self._entries()
        total = sum(count for _, count, _ in rows)
        for path, count, _ in rows:
            if total <= self.max_tokens:
                break
            try:
                path.unlink()
            except OSError:
                continue  # another worker evicted it first
            total -= count
            with self._lock:
                self._evictions += 1

    # -- read side -----------------------------------------------------------

    def _load(
        self, model_name: str, vocab_size: int, tokens: tuple
    ) -> LanguageModel | None:
        path = self._path(model_name, vocab_size, tokens)
        try:
            payload = path.read_bytes()
        except OSError:
            return None
        try:
            stored_name, stored_vocab, stored_tokens, model = pickle.loads(payload)
            if (stored_name, stored_vocab, stored_tokens) != (
                model_name,
                int(vocab_size),
                tokens,
            ):
                raise ValueError("spill key mismatch (digest collision?)")
        except Exception:
            # Truncated write, pickle drift, tampering: drop and miss.
            with self._lock:
                self._corrupt_dropped += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        return model

    def fetch(
        self, model_name: str, vocab_size: int, tokens: Sequence[int]
    ) -> tuple[LanguageModel | None, int]:
        """Longest spilled prefix of ``tokens``: ``(model, matched)`` or ``(None, 0)``.

        Probes the exact prompt first, then each doubling checkpoint
        boundary longest-first — the only lengths deposits occur at, so no
        directory scan is needed.  The returned model is a private
        instance (freshly deserialized); callers may advance it directly.
        """
        prompt = tuple(int(t) for t in tokens)
        if not self.enabled or not prompt:
            return None, 0
        lengths = [len(prompt), *reversed(checkpoint_lengths(len(prompt)))]
        for matched in lengths:
            model = self._load(model_name, vocab_size, prompt[:matched])
            if model is not None:
                with self._lock:
                    self._hits += 1
                return model, matched
        with self._lock:
            self._misses += 1
        return None, 0

    # -- introspection -------------------------------------------------------

    @property
    def stats(self) -> dict:
        """Per-process accounting plus the directory's current footprint."""
        rows = self._entries()
        with self._lock:
            return {
                "entries": len(rows),
                "total_tokens": sum(count for _, count, _ in rows),
                "max_tokens": self.max_tokens,
                "stores": self._stores,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "corrupt_dropped": self._corrupt_dropped,
            }

    def __repr__(self) -> str:
        stats = self.stats
        return (
            f"SpillStore({str(self.directory)!r}, "
            f"tokens={stats['total_tokens']}/{self.max_tokens}, "
            f"entries={stats['entries']}, hits={stats['hits']})"
        )

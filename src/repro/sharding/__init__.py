"""Multi-process sharded serving: decode workers beyond one GIL.

Every earlier throughput lever — pooled draws, lockstep batched decoding
(:mod:`repro.llm.batch`), the cross-request continuous scheduler
(:mod:`repro.scheduling`) — executes inside one Python process.  This
package scales *out* instead of up:

* :class:`ShardedEngine` — the supervisor: fans
  :class:`~repro.core.spec.ForecastSpec` requests out to N worker
  processes, each running a full single-process serving stack, and owns
  routing, health (restart + bounded retry, typed :class:`ShardFailure`),
  and result reassembly.  Drop-in behind
  :class:`~repro.gateway.gateway.ForecastGateway`, bit-identical to the
  in-process engine under fixed seeds.
* :func:`rendezvous_shard` / :func:`rendezvous_ranking` — cache-affine
  HRW routing on :func:`~repro.serving.cache.forecast_digest` prefixes,
  so repeated specs keep landing on their cache-warm worker.
* :class:`SpillStore` — the on-disk tier of the two-tier ingest store: a
  shared, size-bounded, corruption-tolerant directory of serialized
  prefill checkpoints that in-memory
  :class:`~repro.llm.state_cache.IngestStateCache` eviction demotes into,
  letting prefill state survive worker restarts and migrate across
  shards.

See ``docs/SERVING.md`` ("Scaling out") for sizing and placement
guidance, and ``benchmarks/bench_loadtest.py`` for the standing
throughput trajectory.
"""

from repro.sharding.engine import ShardedEngine, ShardFailure
from repro.sharding.routing import rendezvous_ranking, rendezvous_shard
from repro.sharding.spill import SpillStore
from repro.sharding.worker import worker_main

__all__ = [
    "ShardedEngine",
    "ShardFailure",
    "SpillStore",
    "rendezvous_ranking",
    "rendezvous_shard",
    "worker_main",
]

"""Cache-affine request routing: rendezvous (HRW) hashing on the digest.

The sharded engine must send *repeated* specs to the *same* worker, or
every per-worker cache the serving stack has accumulated — the result
cache, the :class:`~repro.llm.state_cache.IngestStateCache`, the
:class:`~repro.scheduling.RadixPrefillTree` — degrades by a factor of the
shard count.  Rendezvous hashing (highest random weight) gives that
affinity with two properties a modulo hash lacks:

* **minimal disruption** — when a shard dies or is added, only the keys
  whose winning shard changed move; every other key keeps its cache-warm
  home;
* **statelessness** — routing is a pure function of
  ``(digest, candidate shards)``; the supervisor carries no routing table
  to rebuild after a restart.

Keys are :func:`~repro.serving.cache.forecast_digest` prefixes — already
SHA-256-uniform, so the HRW scores need only one cheap stable hash per
``(key, shard)`` pair.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence

__all__ = ["rendezvous_shard", "rendezvous_ranking"]

#: Digest prefix length fed into the per-shard score: 16 hex chars = 64
#: bits, far beyond what shard-count-scale balance needs.
KEY_PREFIX = 16


def _score(key: str, shard: int) -> int:
    """Stable 64-bit HRW score of one ``(key, shard)`` pair.

    Uses ``hashlib`` rather than built-in ``hash`` so scores — and
    therefore placements — are identical across processes and runs
    (``PYTHONHASHSEED`` randomises ``hash`` per interpreter).
    """
    payload = f"{key[:KEY_PREFIX]}|{shard}".encode()
    return int.from_bytes(hashlib.blake2b(payload, digest_size=8).digest(), "big")


def rendezvous_ranking(key: str, shards: Sequence[int]) -> list[int]:
    """All candidate shards ordered best-first for ``key``.

    The head is where the key lives; the tail is the deterministic
    failover order (the supervisor retries a request on the next-ranked
    healthy shard after a worker death).
    """
    if not shards:
        raise ValueError("rendezvous_ranking needs at least one candidate shard")
    return sorted(shards, key=lambda shard: _score(key, shard), reverse=True)


def rendezvous_shard(key: str, shards: Sequence[int]) -> int:
    """The winning shard for ``key`` among ``shards`` (highest HRW score)."""
    return rendezvous_ranking(key, shards)[0]

"""The sharded engine: fan requests out to decode worker *processes*.

Every execution mode the serving stack has grown — pooled draws, lockstep
batched decoding, the continuous scheduler — still decodes inside one
Python process, so one GIL is the ceiling on sustained throughput.
:class:`ShardedEngine` is the escape hatch production LLM-serving stacks
take when a single executor saturates: N worker processes (see
:mod:`repro.sharding.worker`), each a complete single-process serving
stack over its own model replicas, behind a supervisor that owns

* **routing** — cache-affine rendezvous hashing of the request's
  :func:`~repro.serving.cache.forecast_digest`
  (:mod:`repro.sharding.routing`), so repeated specs land on the worker
  that already holds their result-cache entry and prefill state;
* **health** — worker deaths are detected via process sentinels; the
  shard is restarted (counted in ``shard_restarts``) and its in-flight
  requests are retried on other shards (bounded attempts, then a typed
  :class:`ShardFailure` error response) — the shared
  :class:`~repro.sharding.SpillStore` directory means the restarted
  worker rehydrates evicted prefill state instead of starting cold;
* **result reassembly** — worker results resolve
  :class:`concurrent.futures.Future` objects in submission order per
  caller, ledger records are enriched with ``shard``/``worker_pid`` and
  written by the one supervisor-side ledger, and supervisor spans
  (``shard:dispatch`` / ``shard:collect``) record placement and attempts.

The engine is a drop-in for :class:`~repro.serving.engine.ForecastEngine`
behind :class:`~repro.gateway.gateway.ForecastGateway` — same
``submit`` / ``forecast`` / ``metrics`` / ``ledger`` surface — and
bit-identical to it under fixed seeds: forecasts are pure functions of
``(history, config, horizon, seed)``, and workers run the exact
single-process code path.  Tests pin this across {batched, continuous} ×
{cold, warm cache} × shard counts.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import shutil
import tempfile
import threading
import time
from collections.abc import Iterable
from concurrent.futures import Future
from multiprocessing import connection

from repro.core.spec import ForecastSpec
from repro.exceptions import ConfigError, ReproError
from repro.observability.ledger import RunLedger
from repro.observability.spans import NULL_TRACER, Span
from repro.serving.cache import forecast_digest
from repro.serving.metrics import MetricsRegistry
from repro.serving.request import ForecastRequest, ForecastResponse
from repro.sharding.routing import KEY_PREFIX, rendezvous_ranking
from repro.sharding.worker import worker_main

__all__ = ["ShardedEngine", "ShardFailure"]


class ShardFailure(ReproError):
    """A request exhausted its attempts because workers kept dying.

    Carries the shards tried and the attempt count; surfaced to callers
    as a failed :class:`~repro.serving.request.ForecastResponse` whose
    ``error`` starts with ``"ShardFailure"``, and to the ledger as an
    ``outcome="failed"`` record.
    """

    def __init__(self, shards_tried: tuple[int, ...], attempts: int) -> None:
        self.shards_tried = shards_tried
        self.attempts = attempts
        super().__init__(
            f"ShardFailure: worker died on shard(s) {list(shards_tried)} "
            f"({attempts} attempt(s) exhausted)"
        )


class _Shard:
    """Supervisor-side bookkeeping for one worker process."""

    def __init__(self, index: int, task_queue) -> None:
        self.index = index
        self.queue = task_queue
        self.process = None
        self.healthy = False
        self.restarts = 0
        self.worker_pid: int | None = None
        self.dispatched_total = 0
        self.inflight = 0


class _Pending:
    """One in-flight request: identity, retry state, and its future."""

    def __init__(
        self,
        request_id: int,
        request: ForecastRequest,
        digest: str,
        future: Future,
        on_progress,
        extra: dict,
        root: Span | None,
    ) -> None:
        self.id = request_id
        self.request = request
        self.digest = digest
        self.future = future
        self.on_progress = on_progress
        self.extra = extra
        self.root = root
        self.attempt = 1
        self.shard: int | None = None
        self.failed_shards: set[int] = set()


class ShardedEngine:
    """Multi-process forecast service: N decode workers, one supervisor.

    Parameters
    ----------
    num_shards:
        Decode worker processes.  Each runs a full
        :class:`~repro.serving.engine.ForecastEngine`; sizing guidance
        lives in ``docs/SERVING.md`` ("Scaling out").
    start_method:
        ``multiprocessing`` start method; ``"spawn"`` (default) is safe
        alongside the supervisor's threads, ``"fork"`` starts faster on
        Linux when no other threads are live yet.
    worker_threads:
        Sample-draw pool size inside each worker.
    result_cache_entries / ingest_cache_tokens / max_resident_streams:
        Forwarded to each worker's engine (``0`` disables the respective
        cache, exactly as in-process).
    spill_dir:
        Shared directory of the on-disk ingest spill tier.  ``None``
        creates a private temporary directory (removed on :meth:`close`);
        pass an explicit path to share spill state across engine restarts.
    spill_max_tokens:
        Token budget of the spill tier (``0`` disables spilling).
    max_attempts:
        Total placement attempts per request: after this many worker
        deaths a request resolves to a :class:`ShardFailure` error
        response.
    metrics / tracer / ledger:
        Supervisor-side observability, same contract as
        :class:`~repro.serving.engine.ForecastEngine`.  The ledger gains
        ``shard`` / ``worker_pid`` on every record; the tracer gains
        ``shard:dispatch`` / ``shard:collect`` spans; metrics gain the
        ``shard_*`` family.
    chaos_delay_seconds:
        Failure-injection knob: every worker sleeps this long before
        serving each request, making kill-mid-request tests
        deterministic.  Leave at 0.0 in production.
    """

    def __init__(
        self,
        num_shards: int = 2,
        *,
        start_method: str = "spawn",
        worker_threads: int = 4,
        result_cache_entries: int = 128,
        ingest_cache_tokens: int = 262_144,
        max_resident_streams: int = 64,
        spill_dir: str | None = None,
        spill_max_tokens: int = 1_048_576,
        max_attempts: int = 2,
        metrics: MetricsRegistry | None = None,
        tracer=None,
        ledger: RunLedger | str | None = None,
        chaos_delay_seconds: float = 0.0,
    ) -> None:
        if num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
        if max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {max_attempts}")
        self.num_shards = num_shards
        self.max_attempts = max_attempts
        self.metrics = metrics or MetricsRegistry()
        self.tracer = NULL_TRACER if tracer is None else tracer
        if ledger is None or isinstance(ledger, RunLedger):
            self.ledger = ledger
        else:
            self.ledger = RunLedger(ledger)
        self._owns_spill_dir = spill_dir is None
        if spill_dir is None and spill_max_tokens > 0:
            spill_dir = tempfile.mkdtemp(prefix="multicast-spill-")
        self.spill_dir = spill_dir
        self._options = {
            "worker_threads": int(worker_threads),
            "result_cache_entries": int(result_cache_entries),
            "ingest_cache_tokens": int(ingest_cache_tokens),
            "max_resident_streams": int(max_resident_streams),
            "spill_dir": spill_dir if spill_max_tokens > 0 else None,
            "spill_max_tokens": int(spill_max_tokens),
            "chaos_delay_seconds": float(chaos_delay_seconds),
        }
        self._ctx = multiprocessing.get_context(start_method)
        self._results = self._ctx.Queue()
        self._lock = threading.Lock()
        self._pending: dict[int, _Pending] = {}
        self._next_id = 0
        self._closing = False
        self._closed = False
        self._shards = [_Shard(index, self._ctx.Queue()) for index in range(num_shards)]
        for shard in self._shards:
            self._spawn(shard)
        self._collector = threading.Thread(
            target=self._collect_loop, name="shard-collect", daemon=True
        )
        self._health = threading.Thread(
            target=self._health_loop, name="shard-health", daemon=True
        )
        self._collector.start()
        self._health.start()

    # -- lifecycle ------------------------------------------------------------

    def _spawn(self, shard: _Shard) -> None:
        if self._closing:
            return
        process = self._ctx.Process(
            target=worker_main,
            args=(shard.index, self._options, shard.queue, self._results),
            name=f"mc-shard-{shard.index}",
            daemon=True,
        )
        process.start()
        shard.process = process
        shard.healthy = True

    def close(self) -> None:
        """Stop every worker; unfinished requests resolve as failed."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._closing = True
            leftovers = list(self._pending.values())
            self._pending.clear()
        for shard in self._shards:
            try:
                shard.queue.put({"kind": "stop"})
            except (OSError, ValueError):
                pass
        for shard in self._shards:
            process = shard.process
            if process is None:
                continue
            try:
                process.join(timeout=10)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5)
            except (AssertionError, ValueError):
                pass  # process object raced a restart; daemon flag reaps it
        self._collector.join(timeout=5)
        self._health.join(timeout=5)
        for pending in leftovers:
            if not pending.future.done():
                pending.future.set_result(
                    ForecastResponse(
                        pending.request, error="engine closed before completion"
                    )
                )
        self._results.close()
        self._results.cancel_join_thread()
        for shard in self._shards:
            shard.queue.close()
            shard.queue.cancel_join_thread()
        if self._owns_spill_dir and self.spill_dir:
            shutil.rmtree(self.spill_dir, ignore_errors=True)

    def __enter__(self) -> "ShardedEngine":
        """Enter ``with``: the engine itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Exit ``with``: close every worker."""
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigError("engine is closed")

    # -- public API -----------------------------------------------------------

    @staticmethod
    def _coerce(request: ForecastRequest | ForecastSpec) -> ForecastRequest:
        if isinstance(request, ForecastSpec):
            return ForecastRequest.from_spec(request)
        return request

    def forecast(
        self,
        request: ForecastRequest | ForecastSpec,
        *,
        on_progress=None,
        ledger_extra: dict | None = None,
    ) -> ForecastResponse:
        """Serve one request, blocking until its shard returns the result."""
        return self.submit(
            request, on_progress=on_progress, ledger_extra=ledger_extra
        ).result()

    def submit(
        self,
        request: ForecastRequest | ForecastSpec,
        *,
        on_progress=None,
        ledger_extra: dict | None = None,
    ) -> Future:
        """Route a request to its shard; returns a Future of the response.

        Same hooks as :meth:`ForecastEngine.submit`: ``on_progress`` is
        relayed from the worker as sample draws retire, ``ledger_extra``
        carries the gateway's admission metadata into the worker's ledger
        record (``enqueued_at`` is converted to
        ``gateway_queue_wait_seconds`` supervisor-side, since
        ``time.perf_counter`` readings do not transfer across processes).
        """
        self._check_open()
        request = self._coerce(request)
        extra = dict(ledger_extra) if ledger_extra else {}
        enqueued_at = extra.pop("enqueued_at", None)
        if enqueued_at is not None:
            queue_wait = time.perf_counter() - enqueued_at
            extra["gateway_queue_wait_seconds"] = queue_wait
            self.metrics.histogram("gateway_queue_wait_seconds").observe(queue_wait)
        digest = forecast_digest(
            request.history, request.config, request.horizon, request.seed
        )
        root = None
        if self.tracer.enabled:
            root = Span(
                "request",
                {
                    "request_name": request.name or "",
                    "scheme": request.config.scheme,
                    "horizon": int(request.horizon),
                    "seed": int(request.effective_seed),
                    "digest": digest[:KEY_PREFIX],
                },
            )
        future: Future = Future()
        with self._lock:
            self._next_id += 1
            pending = _Pending(
                self._next_id, request, digest, future, on_progress, extra, root
            )
            self._pending[pending.id] = pending
            self._dispatch_locked(pending)
        self.metrics.counter("shard_requests_total").inc()
        return future

    def forecast_batch(
        self, requests: Iterable[ForecastRequest | ForecastSpec]
    ) -> list[ForecastResponse]:
        """Serve many requests across the shards; responses in request order."""
        futures = [self.submit(request) for request in requests]
        return [future.result() for future in futures]

    def metrics_snapshot(self) -> dict:
        """Supervisor metrics plus a per-shard health/occupancy section."""
        snapshot = self.metrics.snapshot()
        with self._lock:
            snapshot["shards"] = {
                str(shard.index): {
                    "type": "shard",
                    "healthy": shard.healthy,
                    "restarts": shard.restarts,
                    "inflight": shard.inflight,
                    "dispatched_total": shard.dispatched_total,
                    "worker_pid": shard.worker_pid,
                }
                for shard in self._shards
            }
        return snapshot

    # -- routing --------------------------------------------------------------

    def _dispatch_locked(self, pending: _Pending) -> None:
        """Place one pending request on its rendezvous-winning shard.

        Caller holds ``self._lock``.  Shards that already failed this
        request are excluded while an alternative exists, so a retry never
        returns to the worker that just died under it.
        """
        healthy = [shard.index for shard in self._shards if shard.healthy]
        candidates = [
            index for index in healthy if index not in pending.failed_shards
        ]
        if not candidates:
            candidates = healthy or [shard.index for shard in self._shards]
        target = rendezvous_ranking(pending.digest, candidates)[0]
        shard = self._shards[target]
        pending.shard = target
        shard.dispatched_total += 1
        shard.inflight += 1
        self.metrics.gauge(f"shard_{target}_inflight").set(shard.inflight)
        if pending.root is not None:
            dispatch = Span(
                "shard:dispatch", {"shard": target, "attempt": pending.attempt}
            )
            dispatch.finish()
            pending.root.children.append(dispatch)
        shard.queue.put(
            {
                "kind": "request",
                "id": pending.id,
                "request": pending.request,
                "ledger_extra": pending.extra or None,
            }
        )

    # -- result collection ----------------------------------------------------

    def _collect_loop(self) -> None:
        while not self._closing:
            try:
                message = self._results.get(timeout=0.1)
            except (queue_module.Empty, OSError, ValueError):
                continue
            kind = message.get("kind")
            if kind == "ready":
                with self._lock:
                    shard = self._shards[message["shard"]]
                    shard.worker_pid = message["worker_pid"]
            elif kind == "progress":
                with self._lock:
                    pending = self._pending.get(message["id"])
                callback = pending.on_progress if pending else None
                if callback is not None:
                    try:
                        callback(message["completed"], message["requested"])
                    except Exception:  # noqa: BLE001 - advisory hook
                        pass
            elif kind == "result":
                self._finish(message)

    def _finish(self, message: dict) -> None:
        with self._lock:
            pending = self._pending.pop(message["id"], None)
            if pending is not None and pending.shard is not None:
                shard = self._shards[pending.shard]
                shard.inflight = max(0, shard.inflight - 1)
                self.metrics.gauge(f"shard_{pending.shard}_inflight").set(
                    shard.inflight
                )
        if pending is None:
            return  # duplicate after a crash-retry raced a late result
        attempts = max(int(message["attempts"]), pending.attempt)
        response = ForecastResponse(
            pending.request,
            output=message["output"],
            error=message["error"],
            cache_hit=message["cache_hit"],
            partial=message["partial"],
            attempts=attempts,
            wall_seconds=message["wall_seconds"],
        )
        if pending.root is not None:
            collect = Span(
                "shard:collect",
                {
                    "shard": message["shard"],
                    "worker_pid": message["worker_pid"],
                    "attempt": pending.attempt,
                },
            )
            collect.finish()
            pending.root.children.append(collect)
            pending.root.set_attribute("outcome", self._outcome(response))
            pending.root.finish()
            self.tracer.collector.add(pending.root)
            response.trace = pending.root
        self.metrics.histogram("shard_request_seconds").observe(
            float(message["wall_seconds"])
        )
        record = message.get("record")
        if record is not None and self.ledger is not None:
            record["shard"] = message["shard"]
            record["worker_pid"] = message["worker_pid"]
            record["attempts"] = attempts
            self.ledger.append(record)
        pending.future.set_result(response)

    @staticmethod
    def _outcome(response: ForecastResponse) -> str:
        if not response.ok:
            return "failed"
        return "partial" if response.partial else "ok"

    # -- health ---------------------------------------------------------------

    def _health_loop(self) -> None:
        while not self._closing:
            with self._lock:
                try:
                    sentinels = {
                        shard.process.sentinel: shard
                        for shard in self._shards
                        if shard.healthy and shard.process is not None
                    }
                except ValueError:
                    continue  # a process object was closed mid-snapshot
            if not sentinels:
                time.sleep(0.05)
                continue
            try:
                dead = connection.wait(list(sentinels), timeout=0.2)
            except OSError:
                continue
            for sentinel in dead:
                if self._closing:
                    return
                self._handle_death(sentinels[sentinel])

    def _handle_death(self, shard: _Shard) -> None:
        """Restart a dead worker and retry its in-flight requests elsewhere."""
        failures: list[_Pending] = []
        with self._lock:
            if self._closing or not shard.healthy:
                return
            shard.healthy = False
            shard.restarts += 1
            shard.inflight = 0
            self.metrics.gauge(f"shard_{shard.index}_inflight").set(0)
            orphans = [
                pending
                for pending in self._pending.values()
                if pending.shard == shard.index
            ]
            for pending in orphans:
                pending.failed_shards.add(shard.index)
                pending.attempt += 1
                if pending.attempt > self.max_attempts:
                    del self._pending[pending.id]
                    failures.append(pending)
                else:
                    self.metrics.counter("shard_retries").inc()
                    self._dispatch_locked(pending)
        self.metrics.counter("shard_restarts").inc()
        for pending in failures:
            self._fail(pending)
        # Respawn last: retries have already been placed on *other* shards,
        # so cache affinity cannot route them straight back to the crash.
        try:
            self._spawn(shard)
        except OSError:
            pass  # out of processes: the shard stays unhealthy, routing skips it

    def _fail(self, pending: _Pending) -> None:
        """Resolve a retries-exhausted request as a typed shard failure."""
        attempts_tried = pending.attempt - 1  # the final increment never ran
        failure = ShardFailure(tuple(sorted(pending.failed_shards)), attempts_tried)
        self.metrics.counter("shard_failures").inc()
        response = ForecastResponse(
            pending.request, error=str(failure), attempts=attempts_tried
        )
        if pending.root is not None:
            pending.root.set_attribute("outcome", "failed")
            pending.root.set_attribute("error", str(failure))
            pending.root.finish()
            self.tracer.collector.add(pending.root)
            response.trace = pending.root
        if self.ledger is not None:
            request = pending.request
            self.ledger.append(
                {
                    "unix_time": round(time.time(), 3),
                    "name": request.name,
                    "tenant": request.tenant,
                    "admission": pending.extra.get("admission", "direct"),
                    "gateway_queue_wait_seconds": None,
                    "outcome": "failed",
                    "config_hash": pending.digest,
                    "seed": int(request.effective_seed),
                    "scheme": request.config.scheme,
                    "sax": request.config.sax is not None,
                    "model": request.config.model,
                    "horizon": int(request.horizon),
                    "execution": request.execution,
                    "cache_hit": False,
                    "partial": False,
                    "attempts": attempts_tried,
                    "error": str(failure),
                    "wall_seconds": 0.0,
                    "prompt_tokens": 0,
                    "generated_tokens": 0,
                    "ingest": None,
                    "queue_wait_seconds": None,
                    "timings": {},
                    "spans": None,
                    "shard": None,
                    "worker_pid": None,
                    "metrics": {},
                }
            )
        pending.future.set_result(response)

    def __repr__(self) -> str:
        with self._lock:
            healthy = sum(1 for shard in self._shards if shard.healthy)
            inflight = len(self._pending)
        return (
            f"ShardedEngine(shards={self.num_shards}, healthy={healthy}, "
            f"inflight={inflight}, pid={os.getpid()})"
        )

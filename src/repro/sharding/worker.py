"""The decode worker process: one full serving engine per shard.

Each shard of a :class:`~repro.sharding.engine.ShardedEngine` is a
separate OS process running :func:`worker_main` — a plain module-level
function so the ``spawn`` start method (the safe default in a process
that also runs supervisor threads) can import and launch it.  A worker
owns a complete single-process stack: its own
:class:`~repro.serving.engine.ForecastEngine` (sample pool, result
cache, :class:`~repro.scheduling.ContinuousScheduler`, radix prefill
tree) over its own :class:`~repro.llm.state_cache.IngestStateCache`,
backed by the *shared* :class:`~repro.sharding.SpillStore` directory so
prefill state evicted here outlives this process and can warm any other
shard.

Protocol (all messages are plain picklable dicts):

* inbound ``{"kind": "request", "id", "request", "ledger_extra"}`` —
  serve one :class:`~repro.serving.request.ForecastRequest`; results and
  progress go to the shared result queue tagged with ``id``;
* inbound ``{"kind": "stop"}`` — drain, close the engine, exit 0;
* outbound ``{"kind": "ready", ...}`` — sent once after the engine is
  built (the supervisor uses it to mark the shard healthy);
* outbound ``{"kind": "progress", "id", "completed", "requested"}``;
* outbound ``{"kind": "result", "id", "shard", "worker_pid", ...}`` —
  the response fields plus the worker-side ledger record (the supervisor
  enriches it with ``shard``/``worker_pid`` and appends it, so one
  process writes the ledger file).

Requests are served one at a time in arrival order: a shard is a serial
decode loop (internally sample-parallel), which keeps per-shard ordering
trivial and makes queue depth an honest backpressure signal.

Workers run the null tracer — span trees are process-local object graphs
that do not cross a pickle boundary; the supervisor contributes
``shard:dispatch`` / ``shard:collect`` spans instead.  Outputs are
bit-identical either way.
"""

from __future__ import annotations

import os
import time

from repro.observability.ledger import RunLedger

__all__ = ["worker_main"]


class _CollectingLedger(RunLedger):
    """A RunLedger that keeps records in memory instead of writing JSONL.

    The worker's engine appends one record per served request; the loop
    pops it and ships it to the supervisor, which owns the real ledger
    file (a single writer, enriched with shard identity).
    """

    def __init__(self) -> None:
        super().__init__(path=os.devnull)
        self.records: list[dict] = []

    def append(self, record: dict) -> None:
        """Stash the record for :meth:`pop` (nothing touches disk)."""
        self.records.append(record)

    def pop(self) -> dict | None:
        """The most recent record, removed — or None if nothing landed."""
        return self.records.pop() if self.records else None


def _build_engine(options: dict):
    """Construct the worker's private serving stack from picklable options."""
    from repro.llm.state_cache import IngestStateCache
    from repro.serving.cache import ForecastCache
    from repro.serving.engine import ForecastEngine
    from repro.sharding.spill import SpillStore

    spill = None
    if options.get("spill_dir"):
        spill = SpillStore(
            options["spill_dir"],
            max_tokens=int(options.get("spill_max_tokens", 1_048_576)),
        )
    ledger = _CollectingLedger()
    engine = ForecastEngine(
        num_workers=int(options.get("worker_threads", 4)),
        cache=ForecastCache(max_entries=int(options.get("result_cache_entries", 128))),
        ingest_cache=IngestStateCache(
            max_tokens=int(options.get("ingest_cache_tokens", 262_144)),
            spill=spill,
        ),
        max_resident_streams=int(options.get("max_resident_streams", 64)),
        ledger=ledger,
    )
    return engine, ledger


def worker_main(shard: int, options: dict, tasks, results) -> None:
    """Entry point of one decode worker process.

    ``tasks`` is this shard's inbound queue, ``results`` the queue shared
    by every shard.  ``options`` carries the engine knobs (see
    :func:`_build_engine`) plus ``chaos_delay_seconds`` — a deliberate
    pre-serve sleep used by crash-recovery tests to hold a request
    in-flight long enough to kill the process deterministically.
    """
    engine, ledger = _build_engine(options)
    chaos_delay = float(options.get("chaos_delay_seconds", 0.0))
    pid = os.getpid()
    results.put({"kind": "ready", "shard": shard, "worker_pid": pid})
    try:
        while True:
            message = tasks.get()
            if message is None or message.get("kind") == "stop":
                break
            request_id = message["id"]
            request = message["request"]
            if chaos_delay > 0.0:
                time.sleep(chaos_delay)

            def on_progress(completed: int, requested: int) -> None:
                results.put(
                    {
                        "kind": "progress",
                        "id": request_id,
                        "completed": int(completed),
                        "requested": int(requested),
                    }
                )

            try:
                response = engine.forecast(
                    request,
                    on_progress=on_progress,
                    ledger_extra=message.get("ledger_extra"),
                )
                payload = {
                    "output": response.output,
                    "error": response.error,
                    "cache_hit": response.cache_hit,
                    "partial": response.partial,
                    "attempts": response.attempts,
                    "wall_seconds": response.wall_seconds,
                    "record": ledger.pop(),
                }
            except Exception as error:  # noqa: BLE001 - shipped, not raised
                # The engine converts expected failures into error
                # responses; anything that still escapes must not kill the
                # worker loop — report it as a failed response instead.
                payload = {
                    "output": None,
                    "error": f"worker error: {error}",
                    "cache_hit": False,
                    "partial": False,
                    "attempts": 1,
                    "wall_seconds": 0.0,
                    "record": ledger.pop(),
                }
            payload.update(
                {"kind": "result", "id": request_id, "shard": shard,
                 "worker_pid": pid}
            )
            results.put(payload)
    finally:
        engine.close()

"""The ``auto`` selector: pick a strategy from the series' shape.

``auto`` is not a serialisation of its own — it inspects the request
(history length, dimensionality, detected seasonality, the config's token
budget) and delegates to the strategy the heuristics favour, recording the
choice in the output's metadata so ledger records and spans stay honest:

1. **patch** when the per-step digit prompt would overflow
   ``config.max_context_tokens`` — patch aggregation divides the token
   count by ``patch_length``, which beats silently truncating history;
2. **decompose** when at least one dimension has a detected seasonal
   period with two full cycles of history — component-wise forecasting is
   exactly the regime where exact-suffix induction struggles;
3. **default** (digit, or SAX when ``config.sax`` is set) otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.core.multiplex import get_multiplexer
from repro.core.output import ForecastOutput
from repro.decomposition import estimate_period
from repro.exceptions import FittingError
from repro.strategies.base import PromptStrategy, StrategyContext, get_strategy

__all__ = ["AutoStrategy", "select_strategy"]


def select_strategy(values: np.ndarray, config) -> str:
    """The strategy name ``auto`` resolves to for this history and config.

    Pure and deterministic in ``(values, config)`` — the same request
    always selects the same strategy, so auto-selected forecasts stay
    reproducible and cacheable.
    """
    n, d = values.shape
    width = 1 if config.sax is not None else config.num_digits
    multiplexer = get_multiplexer(config.scheme)
    prompt_tokens = n * multiplexer.tokens_per_timestamp(d, width)
    if prompt_tokens > config.max_context_tokens:
        return "patch"
    for k in range(d):
        period = _detected_period(values[:, k])
        if period is not None and n >= 2 * period:
            return "decompose"
    return "default"


def _detected_period(series: np.ndarray) -> int | None:
    """The autocorrelation-peak period, or ``None`` when unusable."""
    try:
        period = estimate_period(series)
    except FittingError:
        return None
    return period if period >= 2 else None


class AutoStrategy(PromptStrategy):
    """Delegate to :func:`select_strategy`'s pick and record the choice."""

    name = "auto"

    def forecast(
        self,
        values: np.ndarray,
        horizon: int,
        seed: int | None,
        context: StrategyContext,
    ) -> ForecastOutput:
        """Select per :func:`select_strategy`, delegate, annotate metadata."""
        from repro.strategies.base import resolve_strategy

        config = context.config
        selected = select_strategy(values, config)
        delegate = resolve_strategy(selected, config)
        output = delegate.forecast(values, horizon, seed, context)
        # The ledger records the auto selection, not just the delegate:
        # "auto:patch" says both what ran and why it was chosen.
        output.metadata["auto_selected"] = delegate.name
        output.metadata["strategy"] = f"auto:{delegate.name}"
        return output

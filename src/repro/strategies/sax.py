"""The SAX strategy: symbol-per-segment prompting (paper Section III-B).

Each dimension is SAX-quantized first (PAA on the time axis, Gaussian
breakpoints on the value axis) so one symbol replaces ``num_digits`` digit
tokens per timestamp — the paper's >10× execution-time lever — and the
multiplexers run unchanged over symbol cells.  This is the pre-strategy
``MultiCastForecaster`` SAX path moved behind the
:class:`~repro.strategies.base.PromptStrategy` interface; outputs are bit
identical to the legacy path under the same seed.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregation import aggregate_samples
from repro.core.config import SaxConfig
from repro.core.multiplex import SaxSymbolCodec
from repro.core.output import ForecastOutput
from repro.encoding import SEPARATOR, sax_vocabulary
from repro.sax.encoder import SaxEncoder
from repro.sax.paa import num_segments
from repro.strategies.base import PromptStrategy, StrategyContext

__all__ = ["SaxStrategy"]


class SaxStrategy(PromptStrategy):
    """SAX symbols through the configured multiplexer (paper SAX path)."""

    name = "sax"

    def forecast(
        self,
        values: np.ndarray,
        horizon: int,
        seed: int | None,
        context: StrategyContext,
    ) -> ForecastOutput:
        """Quantize per dimension → multiplex symbols → generate → decode."""
        config = context.config
        clock = context.clock
        multiplexer = context.multiplexer
        # Forcing strategy="sax" without SAX settings uses the paper's
        # Table II defaults; "default" resolution always has config.sax.
        sax = config.sax if config.sax is not None else SaxConfig()
        n, d = values.shape
        alphabet = sax.alphabet()

        with clock.stage("scale"):
            encoders = []
            words = []
            for k in range(d):
                encoder = SaxEncoder(
                    sax.segment_length, alphabet, reconstruction=sax.reconstruction
                ).fit(values[:, k])
                encoders.append(encoder)
                words.append(encoder.encode(values[:, k]))

            codec = SaxSymbolCodec(alphabet)
            # Symbol indices per segment per dimension: the SAX "code matrix".
            symbol_codes = np.asarray(
                [[alphabet.index_of(s) for s in word] for word in words],
                dtype=np.int64,
            ).T
            symbol_codes = context.truncate_rows(symbol_codes, width=1)

        with clock.stage("multiplex") as mux_span:
            vocabulary = sax_vocabulary(alphabet.symbols)
            stream = multiplexer.mux(symbol_codes, codec) + [SEPARATOR]
            prompt_ids = vocabulary.encode(stream)

            horizon_segments = num_segments(horizon, sax.segment_length)
            tokens_needed = (
                horizon_segments * multiplexer.tokens_per_timestamp(d, 1)
            )
            constraint = context.constraint(vocabulary, alphabet.symbols, d, 1)
            mux_span.set_attribute("prompt_tokens", len(prompt_ids))
            mux_span.set_attribute("tokens_needed", tokens_needed)

        with clock.stage("generate") as generate_span:
            streams, generated, simulated, ingest_info = context.run_samples(
                vocabulary, prompt_ids, tokens_needed, constraint, seed,
                generate_span,
            )

        with clock.stage("demultiplex"):
            sample_values = np.empty((len(streams), horizon, d))
            for s, tokens in enumerate(streams):
                rows = multiplexer.demux(
                    tokens, d, codec, row_offset=symbol_codes.shape[0]
                )
                rows = context.fit_rows(
                    rows.astype(float),
                    horizon_segments,
                    d,
                    fallback=symbol_codes[-1].astype(float),
                ).astype(int)
                for k in range(d):
                    symbols = [alphabet.symbols[i] for i in rows[:, k]]
                    decoded = encoders[k].decode(
                        symbols, n=horizon_segments * sax.segment_length
                    )
                    sample_values[s, :, k] = decoded[:horizon]

        with clock.stage("aggregate"):
            point = aggregate_samples(sample_values, config.aggregation)
        return ForecastOutput(
            values=point,
            samples=sample_values,
            prompt_tokens=len(prompt_ids),
            generated_tokens=generated,
            simulated_seconds=simulated,
            model_name=config.model,
            metadata={
                "method": f"multicast-{multiplexer.name}",
                "sax": True,
                "strategy": self.name,
                "segment_length": sax.segment_length,
                "alphabet_size": sax.alphabet_size,
                "alphabet_kind": sax.alphabet_kind,
                "requested_samples": config.num_samples,
                "completed_samples": len(streams),
                **ingest_info,
            },
        )

"""The per-step digit strategy: the paper's raw pipeline (Section III-A).

Each timestamp of each dimension is rescaled to a fixed digit budget and
serialised digit-by-digit through the configured multiplexer — exactly the
pre-strategy ``MultiCastForecaster`` raw path, moved behind the
:class:`~repro.strategies.base.PromptStrategy` interface.  Outputs are bit
identical to the legacy path under the same seed (pinned by
``tests/test_strategies.py``).
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregation import aggregate_samples
from repro.core.output import ForecastOutput
from repro.encoding import SEPARATOR, DigitCodec, digit_vocabulary
from repro.scaling import FixedDigitScaler, MultivariateScaler
from repro.strategies.base import PromptStrategy, StrategyContext

__all__ = ["DigitStrategy"]


class DigitStrategy(PromptStrategy):
    """Per-step digits through the configured multiplexer (paper raw path)."""

    name = "digit"

    def forecast(
        self,
        values: np.ndarray,
        horizon: int,
        seed: int | None,
        context: StrategyContext,
    ) -> ForecastOutput:
        """Rescale → multiplex digits → generate → demultiplex → descale."""
        config = context.config
        clock = context.clock
        multiplexer = context.multiplexer
        n, d = values.shape

        with clock.stage("scale"):
            scaler = MultivariateScaler(
                lambda: FixedDigitScaler(num_digits=config.num_digits)
            ).fit(values)
            codes = scaler.transform(values).astype(np.int64)
            codes = context.truncate_rows(codes, config.num_digits)

        with clock.stage("multiplex") as mux_span:
            codec = DigitCodec(config.num_digits)
            vocabulary = digit_vocabulary()
            stream = multiplexer.mux(codes, codec) + [SEPARATOR]
            prompt_ids = vocabulary.encode(stream)
            tokens_needed = horizon * multiplexer.tokens_per_timestamp(
                d, config.num_digits
            )
            constraint = context.constraint(
                vocabulary, "0123456789", d, config.num_digits
            )
            mux_span.set_attribute("prompt_tokens", len(prompt_ids))
            mux_span.set_attribute("tokens_needed", tokens_needed)

        with clock.stage("generate") as generate_span:
            streams, generated, simulated, ingest_info = context.run_samples(
                vocabulary, prompt_ids, tokens_needed, constraint, seed,
                generate_span,
            )

        with clock.stage("demultiplex"):
            sample_values = np.empty((len(streams), horizon, d))
            for s, tokens in enumerate(streams):
                rows = multiplexer.demux(
                    tokens, d, codec, row_offset=codes.shape[0]
                )
                rows = context.fit_rows(
                    rows.astype(float), horizon, d, fallback=codes[-1].astype(float)
                )
                sample_values[s] = scaler.inverse_transform(rows)

        with clock.stage("aggregate"):
            point = aggregate_samples(sample_values, config.aggregation)
        return ForecastOutput(
            values=point,
            samples=sample_values,
            prompt_tokens=len(prompt_ids),
            generated_tokens=generated,
            simulated_seconds=simulated,
            model_name=config.model,
            metadata={
                "method": f"multicast-{multiplexer.name}",
                "sax": False,
                "strategy": self.name,
                "requested_samples": config.num_samples,
                "completed_samples": len(streams),
                **ingest_info,
            },
        )

"""Pluggable prompt strategies for the MultiCast pipeline.

A :class:`~repro.strategies.base.PromptStrategy` owns the serialisation
half of a forecast — history → token prompt → generated tokens → values —
while the forecaster keeps the sampling half (ingest cache, batched and
continuous decoding) and hands it to the strategy as a
:class:`~repro.strategies.base.StrategyContext`.  Strategies are selected
by the ``strategy`` field on :class:`~repro.core.spec.ForecastSpec` /
:class:`~repro.core.config.MultiCastConfig`:

- ``"default"`` — the pre-strategy pipeline, bit for bit (digit, or SAX
  when ``config.sax`` is set);
- ``"digit"`` — per-step fixed-digit serialisation (paper Section III-A);
- ``"sax"`` — symbol-per-segment SAX prompting (paper Section III-B);
- ``"patch"`` — per-patch PAA means, ~``patch_length``× fewer tokens;
- ``"decompose"`` — trend/seasonal/residual forecast as separate
  sub-requests and recombined exactly;
- ``"auto"`` — heuristic selection from length, dimensionality, detected
  seasonality and the token budget.
"""

from repro.strategies.auto import AutoStrategy, select_strategy
from repro.strategies.base import (
    PromptStrategy,
    StrategyContext,
    get_strategy,
    resolve_strategy,
)
from repro.strategies.decompose import DecomposeThenForecastStrategy
from repro.strategies.digit import DigitStrategy
from repro.strategies.patch import PatchAggregateStrategy
from repro.strategies.sax import SaxStrategy

__all__ = [
    "PromptStrategy",
    "StrategyContext",
    "get_strategy",
    "resolve_strategy",
    "select_strategy",
    "AutoStrategy",
    "DecomposeThenForecastStrategy",
    "DigitStrategy",
    "PatchAggregateStrategy",
    "SaxStrategy",
]

"""The :class:`PromptStrategy` interface and its registry.

A prompt strategy owns the *serialisation half* of a forecast: how the
rescaled history becomes a token prompt, how many tokens the continuation
needs, which grammar constrains generation, and how generated streams are
parsed back into value space.  The sampling half — prompt ingest, the
ingest-state cache, batched/continuous/pooled decoding — stays in
:class:`~repro.core.forecaster.MultiCastForecaster` and is handed to the
strategy as a :class:`StrategyContext`, so every strategy (including the
sub-requests a composite strategy issues) flows through the engine,
scheduler and cache layers unchanged.

Strategies are stateless: one instance may serve any number of concurrent
forecasts.  They are selected by name through the ``strategy`` field of
:class:`~repro.core.spec.ForecastSpec` /
:class:`~repro.core.config.MultiCastConfig` (see
:data:`~repro.core.config.PROMPT_STRATEGIES`) and resolved per request by
:func:`resolve_strategy` — ``"default"`` reproduces the pre-strategy
pipeline bit for bit (digit path, or SAX when ``config.sax`` is set).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

from repro.core.config import PROMPT_STRATEGIES
from repro.core.output import ForecastOutput
from repro.exceptions import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import MultiCastConfig

__all__ = ["PromptStrategy", "StrategyContext", "get_strategy", "resolve_strategy"]


class StrategyContext(ABC):
    """The execution services a forecaster hands its strategy.

    The context is implemented by
    :class:`~repro.core.forecaster.MultiCastForecaster` (one per request);
    strategies never talk to the LLM substrate directly, so ingest
    caching, batched decoding, continuous scheduling and deadline stops
    apply identically to every strategy — and to every *sub-request* a
    composite strategy issues through :meth:`subforecast`.
    """

    #: The request's pipeline configuration (scheme, digits, SAX, ...).
    config: "MultiCastConfig"

    #: The request's :class:`~repro.core.timing.StageClock`; strategies
    #: wrap each pipeline phase in ``clock.stage(...)`` so the output's
    #: timing invariant (``wall_seconds == sum(timings)``) holds.
    clock = None

    #: The request's multiplexer (resolved from ``config.scheme``).
    multiplexer = None

    @abstractmethod
    def run_samples(
        self, vocabulary, prompt_ids, tokens_needed, constraint, seed,
        generate_span,
    ):
        """Draw the configured sample ensemble for one prompt.

        Returns ``(streams, generated_tokens, simulated_seconds, info)``
        exactly as the forecaster's generation machinery reports them;
        ``info`` carries execution/ingest metadata merged into the
        output's ``metadata``.
        """

    @abstractmethod
    def constraint(self, vocabulary, value_tokens, num_dims, width):
        """The generation constraint for the request's scheme and codec."""

    @abstractmethod
    def truncate_rows(self, matrix, width):
        """Drop old rows so the serialised prompt fits the token budget."""

    @abstractmethod
    def fit_rows(self, rows, horizon, num_dims, fallback):
        """Truncate or pad a demultiplexed sample to exactly ``horizon`` rows."""

    @abstractmethod
    def subforecast(self, values, horizon, seed, label=""):
        """Run a nested forecast through the full request machinery.

        The sub-request uses the parent's execution mode, ingest-state
        cache, scheduler and stop callable — so it hits the ingest cache
        and the batched decoder like any top-level request — but always
        the ``"default"`` strategy (composites never recurse).  Returns
        the sub-request's :class:`~repro.core.output.ForecastOutput`.
        """


class PromptStrategy(ABC):
    """One way of turning a series into tokens and tokens back into values."""

    #: Registry name; recorded in output metadata, spans and the ledger.
    name: str = ""

    @abstractmethod
    def forecast(
        self,
        values: np.ndarray,
        horizon: int,
        seed: int | None,
        context: StrategyContext,
    ) -> ForecastOutput:
        """Produce a forecast for ``values`` using ``context``'s services.

        ``values`` is the validated ``(n, d)`` float history (already
        seasonally adjusted when the config asks for it); ``seed`` is the
        request-level sampling seed (``None`` falls back to the config's).
        Implementations must wrap their work in ``context.clock`` stages
        and set ``metadata["strategy"]`` to their :attr:`name`.
        """


def get_strategy(name: str) -> "PromptStrategy":
    """The strategy registered under ``name`` (a fresh stateless instance).

    ``"default"`` is config-dependent (digit vs. SAX), so it cannot be
    built from a bare name — use :func:`resolve_strategy` with the
    request's config instead.
    """
    from repro.strategies.auto import AutoStrategy
    from repro.strategies.decompose import DecomposeThenForecastStrategy
    from repro.strategies.digit import DigitStrategy
    from repro.strategies.patch import PatchAggregateStrategy
    from repro.strategies.sax import SaxStrategy

    registry = {
        "digit": DigitStrategy,
        "sax": SaxStrategy,
        "patch": PatchAggregateStrategy,
        "decompose": DecomposeThenForecastStrategy,
        "auto": AutoStrategy,
    }
    if name not in registry:
        raise ConfigError(
            f"unknown prompt strategy {name!r}; choose from "
            f"{tuple(registry)} (or 'default' via resolve_strategy)"
        )
    return registry[name]()


def resolve_strategy(name: str, config: "MultiCastConfig") -> "PromptStrategy":
    """Resolve a spec/config strategy name to a concrete strategy.

    ``"default"`` preserves the pre-strategy pipeline selection exactly:
    the SAX path when ``config.sax`` is set, the raw digit path otherwise.
    Every other name maps straight to its registered strategy.
    """
    if name not in PROMPT_STRATEGIES:
        raise ConfigError(
            f"strategy must be one of {PROMPT_STRATEGIES}, got {name!r}"
        )
    if name == "default":
        return get_strategy("sax" if config.sax is not None else "digit")
    return get_strategy(name)

"""The patch-aggregate strategy: per-patch summary stats instead of digits.

Patch-based prompting (arXiv 2506.12953) observes that an LLM forecaster
does not need every timestamp spelled out: aggregating each
``patch_length``-step window to one summary statistic (the PAA mean,
reusing :mod:`repro.sax.paa`) divides both the prompt and the generated
token count by roughly the patch length while keeping the digit
serialisation — so the cut *compounds* with SAX-style alphabet tricks and
with batched decoding (see ``benchmarks/bench_strategies.py``).

The history's trailing partial patch is aggregated over exactly the values
it contains (:func:`~repro.sax.paa.paa`'s exact last-frame weighting — see
:func:`~repro.sax.paa.paa_weights`), never zero-padded; the model forecasts
``ceil(horizon / patch_length)`` patch rows and each generated patch mean
is expanded piecewise-constant over its window, truncated to the horizon.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregation import aggregate_samples
from repro.core.output import ForecastOutput
from repro.encoding import SEPARATOR, DigitCodec, digit_vocabulary
from repro.sax.paa import num_segments, paa
from repro.scaling import FixedDigitScaler, MultivariateScaler
from repro.strategies.base import PromptStrategy, StrategyContext

__all__ = ["PatchAggregateStrategy"]


class PatchAggregateStrategy(PromptStrategy):
    """PAA patch means, digit-serialised: ~``patch_length``× fewer tokens."""

    name = "patch"

    def forecast(
        self,
        values: np.ndarray,
        horizon: int,
        seed: int | None,
        context: StrategyContext,
    ) -> ForecastOutput:
        """Aggregate patches → multiplex digits → generate → expand patches."""
        config = context.config
        clock = context.clock
        multiplexer = context.multiplexer
        n, d = values.shape
        patch = config.patch_length

        with clock.stage("scale"):
            # (k, d) matrix of per-patch means; the trailing partial patch
            # averages only the values it actually contains.
            patch_means = np.stack(
                [paa(values[:, k], patch) for k in range(d)], axis=1
            )
            scaler = MultivariateScaler(
                lambda: FixedDigitScaler(num_digits=config.num_digits)
            ).fit(patch_means)
            codes = scaler.transform(patch_means).astype(np.int64)
            codes = context.truncate_rows(codes, config.num_digits)

        with clock.stage("multiplex") as mux_span:
            codec = DigitCodec(config.num_digits)
            vocabulary = digit_vocabulary()
            stream = multiplexer.mux(codes, codec) + [SEPARATOR]
            prompt_ids = vocabulary.encode(stream)
            horizon_patches = num_segments(horizon, patch)
            tokens_needed = horizon_patches * multiplexer.tokens_per_timestamp(
                d, config.num_digits
            )
            constraint = context.constraint(
                vocabulary, "0123456789", d, config.num_digits
            )
            mux_span.set_attribute("prompt_tokens", len(prompt_ids))
            mux_span.set_attribute("tokens_needed", tokens_needed)
            mux_span.set_attribute("patch_length", patch)

        with clock.stage("generate") as generate_span:
            streams, generated, simulated, ingest_info = context.run_samples(
                vocabulary, prompt_ids, tokens_needed, constraint, seed,
                generate_span,
            )

        with clock.stage("demultiplex"):
            sample_values = np.empty((len(streams), horizon, d))
            for s, tokens in enumerate(streams):
                rows = multiplexer.demux(
                    tokens, d, codec, row_offset=codes.shape[0]
                )
                rows = context.fit_rows(
                    rows.astype(float),
                    horizon_patches,
                    d,
                    fallback=codes[-1].astype(float),
                )
                means = scaler.inverse_transform(rows)
                # Each patch mean holds over its window; the final patch
                # covers only the remainder of the horizon.
                sample_values[s] = np.repeat(means, patch, axis=0)[:horizon]

        with clock.stage("aggregate"):
            point = aggregate_samples(sample_values, config.aggregation)
        return ForecastOutput(
            values=point,
            samples=sample_values,
            prompt_tokens=len(prompt_ids),
            generated_tokens=generated,
            simulated_seconds=simulated,
            model_name=config.model,
            metadata={
                "method": f"multicast-patch-{multiplexer.name}",
                "sax": False,
                "strategy": self.name,
                "patch_length": patch,
                "history_patches": int(codes.shape[0]),
                "horizon_patches": int(horizon_patches),
                "requested_samples": config.num_samples,
                "completed_samples": len(streams),
                **ingest_info,
            },
        )

"""The decompose-then-forecast strategy: STL-style split, three sub-requests.

Decomposition-aware prompting (arXiv 2506.12953) forecasts a series'
structural components separately: each dimension is split into
trend + seasonal + residual by classical decomposition
(:mod:`repro.decomposition.classical`), the three component matrices are
forecast as *separate sub-requests* through the parent request's full
machinery — so every sub-request hits the ingest-state cache, the batched
decoder or the continuous scheduler exactly like a top-level request — and
the component forecasts are recombined sample-by-sample with exact token
and sample bookkeeping in the returned
:class:`~repro.core.output.ForecastOutput`.

Dimensions with no usable seasonality (no detected period, or fewer than
two full periods of history) contribute their whole series to the trend
component and zeros to the other two; a component that is identically zero
across all dimensions is skipped outright (its forecast is exactly zero,
no tokens spent) — the bookkeeping records the skip.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregation import aggregate_samples
from repro.core.output import ForecastOutput
from repro.decomposition import ClassicalDecomposition, estimate_period
from repro.exceptions import FittingError
from repro.llm import child_seeds
from repro.strategies.base import PromptStrategy, StrategyContext

__all__ = ["DecomposeThenForecastStrategy"]

#: Component order; also the sub-request seed derivation order.
_COMPONENTS = ("trend", "seasonal", "residual")


class DecomposeThenForecastStrategy(PromptStrategy):
    """Forecast trend/seasonal/residual separately and recombine exactly."""

    name = "decompose"

    def forecast(
        self,
        values: np.ndarray,
        horizon: int,
        seed: int | None,
        context: StrategyContext,
    ) -> ForecastOutput:
        """Split each dimension, sub-forecast each component, recombine."""
        config = context.config
        clock = context.clock
        n, d = values.shape

        with clock.stage("decompose"):
            components = {
                name: np.zeros_like(values) for name in _COMPONENTS
            }
            periods: list[int | None] = []
            for k in range(d):
                period = self._period_for(values[:, k], config)
                if period is None or n < 2 * period:
                    # No usable seasonality: the whole series is "trend".
                    components["trend"][:, k] = values[:, k]
                    periods.append(None)
                    continue
                split = ClassicalDecomposition.fit(values[:, k], period)
                components["trend"][:, k] = split.trend
                components["seasonal"][:, k] = split.seasonal_at(np.arange(n))
                components["residual"][:, k] = split.residual
                periods.append(period)

        base_seed = config.seed if seed is None else seed
        component_seeds = child_seeds(
            np.random.default_rng(base_seed), len(_COMPONENTS)
        )

        outputs: dict[str, ForecastOutput | None] = {}
        with clock.stage("generate"):
            for name, sub_seed in zip(_COMPONENTS, component_seeds):
                component = components[name]
                if not component.any():
                    # Identically zero everywhere: the forecast is exactly
                    # zero; spending tokens on it would only add noise.
                    outputs[name] = None
                    continue
                outputs[name] = context.subforecast(
                    component, horizon, sub_seed, label=f"component:{name}"
                )

        with clock.stage("aggregate"):
            forecast_outputs = [o for o in outputs.values() if o is not None]
            if forecast_outputs:
                completed = min(o.num_samples for o in forecast_outputs)
                execution = forecast_outputs[0].metadata.get("execution")
            else:  # an all-zero series: every component was skipped
                completed = config.num_samples
                execution = None
            combined = np.zeros((completed, horizon, d))
            for output in forecast_outputs:
                combined += output.samples[:completed]
            point = aggregate_samples(combined, config.aggregation)

        bookkeeping = {
            name: (
                {"skipped": True, "prompt_tokens": 0, "generated_tokens": 0}
                if output is None
                else {
                    "skipped": False,
                    "prompt_tokens": output.prompt_tokens,
                    "generated_tokens": output.generated_tokens,
                    "completed_samples": output.num_samples,
                    "ingest": output.metadata.get("ingest"),
                }
            )
            for name, output in outputs.items()
        }
        metadata = {
            "method": "multicast-decompose",
            "sax": config.sax is not None,
            "strategy": self.name,
            "periods": periods,
            "components": bookkeeping,
            "ingest": "composite",
            "requested_samples": config.num_samples,
            "completed_samples": completed,
        }
        if execution is not None:
            metadata["execution"] = execution
        return ForecastOutput(
            values=point,
            samples=combined,
            prompt_tokens=sum(o.prompt_tokens for o in forecast_outputs),
            generated_tokens=sum(o.generated_tokens for o in forecast_outputs),
            simulated_seconds=sum(
                o.simulated_seconds for o in forecast_outputs
            ),
            model_name=config.model,
            metadata=metadata,
        )

    @staticmethod
    def _period_for(series: np.ndarray, config) -> int | None:
        """The seasonality period to decompose one dimension with.

        An integer ``deseasonalize`` setting is honoured directly;
        otherwise the period is detected from the autocorrelation peak.
        Returns ``None`` when there is no usable seasonality.
        """
        if isinstance(config.deseasonalize, int):
            return config.deseasonalize
        try:
            period = estimate_period(series)
        except FittingError:
            return None
        return period if period >= 2 else None

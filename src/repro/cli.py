"""Command-line interface.

Usage (installed as ``repro-multicast``, or ``python -m repro.cli``)::

    repro-multicast forecast --dataset gas_rate --scheme di --num-samples 5
    repro-multicast forecast --dataset gas_rate --execution batched
    repro-multicast forecast --csv mydata.csv --horizon 24 --output fcst.csv
    repro-multicast forecast --dataset gas_rate --trace
    repro-multicast evaluate --dataset weather --methods multicast-di arima
    repro-multicast batch --manifest jobs.json --workers 8 --metrics-out m.json
    repro-multicast batch --manifest jobs.json --ledger runs.jsonl --trace
    repro-multicast batch --manifest jobs.json --execution continuous \
        --max-resident-streams 32
    repro-multicast serve --manifest jobs.json --max-pending 32 \
        --quota-rate 10 --ledger runs.jsonl
    repro-multicast loadtest --requests 5000 --rate 1000 --deadline 2.0
    repro-multicast loadtest --replay-ledger runs.jsonl --driver closed
    repro-multicast ledger summarize runs.jsonl
    repro-multicast table iv
    repro-multicast figure 2
    repro-multicast list

Every subcommand prints plain text; ``forecast --output`` also writes the
forecast as CSV.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core import (
    EXECUTION_MODES,
    PROMPT_STRATEGIES,
    ForecastSpec,
    MultiCastConfig,
    MultiCastForecaster,
    SaxConfig,
    canonicalize_sampling_options,
)
from repro.data import (
    Dataset,
    electricity,
    gas_rate,
    load_csv,
    save_csv,
    weather,
)
from repro.evaluation import ascii_plot, evaluate_method, format_table
from repro.evaluation.protocol import available_methods
from repro.exceptions import ReproError
from repro.llm import available_models

__all__ = ["main", "build_parser"]

_DATASETS = {"gas_rate": gas_rate, "electricity": electricity, "weather": weather}

_TABLES = {}  # populated lazily to keep import time low


def _table_functions():
    from repro import experiments

    return {
        "i": experiments.table_i,
        "iii": experiments.table_iii,
        "iv": experiments.table_iv,
        "v": experiments.table_v,
        "vi": experiments.table_vi,
        "vii": experiments.table_vii,
        "viii": experiments.table_viii,
        "ix": experiments.table_ix,
    }


def _figure_functions():
    from repro import experiments

    return {
        "2": experiments.figure_2,
        "3": experiments.figure_3,
        "4": experiments.figure_4,
        "5": experiments.figure_5,
        "6": experiments.figure_6,
        "7": experiments.figure_7,
        "8": experiments.figure_8,
    }


def _load_dataset(args) -> Dataset:
    if args.csv:
        return load_csv(args.csv)
    return _DATASETS[args.dataset or "gas_rate"]()


def _ensure_writable(path: str | None, flag: str) -> None:
    """Fail fast when an output path cannot possibly be written.

    Checked before any forecasting work starts, so a typo'd ``--output``
    directory surfaces as a normal CLI error up front instead of a raw
    traceback after the (expensive) run has already completed.
    """
    if path is None:
        return
    import os

    parent = os.path.dirname(path) or "."
    if not os.path.isdir(parent):
        raise ReproError(f"{flag} directory does not exist: {parent}")
    if os.path.isdir(path):
        raise ReproError(f"{flag} path is a directory: {path}")


def _add_samples_argument(parser: argparse.ArgumentParser) -> None:
    """Add the canonical ``--num-samples`` flag plus its deprecated alias."""
    parser.add_argument(
        "--num-samples", dest="num_samples", type=int, default=None,
        help="continuations sampled per forecast (default 5)",
    )
    parser.add_argument(
        "--samples", dest="samples_legacy", type=int, default=None,
        help="deprecated alias of --num-samples",
    )


def _resolve_samples(args, default: int = 5) -> int:
    """The sample count from ``--num-samples``/``--samples`` (warned alias).

    Alias handling lives in :func:`canonicalize_sampling_options` — the
    CLI only collects the flags and lets the spec layer warn/reject.
    """
    options = {}
    if args.num_samples is not None:
        options["num_samples"] = args.num_samples
    if args.samples_legacy is not None:
        options["samples"] = args.samples_legacy
    resolved = canonicalize_sampling_options(
        options, context="the repro-multicast CLI"
    )
    return resolved.get("num_samples", default)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-multicast",
        description="MultiCast: zero-shot multivariate forecasting (reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    forecast = sub.add_parser("forecast", help="forecast a dataset or CSV file")
    source = forecast.add_mutually_exclusive_group()
    # No argparse default here: a defaulted flag is never counted as "seen"
    # by the exclusivity check, so --dataset gas_rate --csv x would slip by.
    source.add_argument("--dataset", choices=sorted(_DATASETS), default=None)
    source.add_argument("--csv", help="path to a headed CSV file")
    forecast.add_argument("--scheme", choices=("di", "vi", "vc", "bi"), default="di")
    _add_samples_argument(forecast)
    forecast.add_argument("--digits", type=int, default=3)
    forecast.add_argument("--model", default="llama2-7b-sim")
    forecast.add_argument("--seed", type=int, default=0)
    forecast.add_argument(
        "--execution", choices=EXECUTION_MODES, default="batched",
        help="how the sample ensemble is decoded (bit-identical outputs; "
             "batched is usually fastest)",
    )
    forecast.add_argument(
        "--strategy", choices=PROMPT_STRATEGIES, default="default",
        help="prompt strategy: how history is serialised into the prompt "
             "('default' keeps the classic digit/SAX pipeline; see "
             "docs/ARCHITECTURE.md)",
    )
    forecast.add_argument(
        "--patch-length", type=int, default=None,
        help="patch width for --strategy patch (timestamps aggregated "
             "per prompt token group; default 6)",
    )
    forecast.add_argument(
        "--horizon", type=int, default=None,
        help="steps past the end (default: hold out and score the last 20%%)",
    )
    forecast.add_argument("--sax-segment", type=int, default=None,
                          help="enable SAX with this segment length")
    forecast.add_argument("--sax-alphabet", type=int, default=5)
    forecast.add_argument("--sax-kind", choices=("alphabetical", "digital"),
                          default="alphabetical")
    forecast.add_argument("--output", help="write the forecast to this CSV path")
    forecast.add_argument("--plot", action="store_true",
                          help="draw an ASCII overlay of dimension 0")
    forecast.add_argument("--verbose", action="store_true",
                          help="print the per-stage timing breakdown")
    forecast.add_argument("--trace", action="store_true",
                          help="print the hierarchical span tree of the run")

    evaluate = sub.add_parser("evaluate", help="score methods on a dataset")
    evaluate.add_argument("--dataset", choices=sorted(_DATASETS), default="gas_rate")
    evaluate.add_argument("--methods", nargs="+",
                          default=["multicast-di", "llmtime", "arima"])
    _add_samples_argument(evaluate)
    evaluate.add_argument("--seed", type=int, default=0)

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("which", choices=sorted(_table_functions()) + ["all"])
    _add_samples_argument(table)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("which", choices=sorted(_figure_functions()))
    _add_samples_argument(figure)
    figure.add_argument("--csv-out", help="also write the series to this path")

    plan = sub.add_parser("plan", help="predict token/time/cost before running")
    plan.add_argument("--dataset", choices=sorted(_DATASETS), default="gas_rate")
    plan.add_argument("--scheme", choices=("di", "vi", "vc", "bi"), default="di")
    _add_samples_argument(plan)
    plan.add_argument("--model", default="llama2-7b-sim")
    plan.add_argument("--horizon", type=int, default=None,
                      help="default: 20%% of the dataset length")
    plan.add_argument("--sax-segment", type=int, default=None)

    backtest = sub.add_parser("backtest", help="rolling-origin evaluation")
    backtest.add_argument("--dataset", choices=sorted(_DATASETS), default="gas_rate")
    backtest.add_argument("--method", default="multicast-di")
    backtest.add_argument("--horizon", type=int, default=20)
    backtest.add_argument("--windows", type=int, default=3)
    _add_samples_argument(backtest)
    backtest.add_argument("--seed", type=int, default=0)
    backtest.add_argument("--workers", type=int, default=0,
                          help="serve windows through an engine with this "
                               "many sample workers (0 = sequential)")
    backtest.add_argument(
        "--execution", choices=EXECUTION_MODES, default="batched",
        help="ensemble decoding for MultiCast windows (bit-identical outputs)",
    )
    backtest.add_argument(
        "--strategy", choices=PROMPT_STRATEGIES, default="default",
        help="prompt strategy for MultiCast windows",
    )

    batch = sub.add_parser(
        "batch", help="forecast many series/configs concurrently from a manifest"
    )
    batch.add_argument("--manifest", required=True,
                       help="JSON manifest of forecast jobs (see docs/API.md)")
    batch.add_argument("--workers", type=int, default=4,
                       help="sample-draw worker threads")
    batch.add_argument("--request-concurrency", type=int, default=2,
                       help="requests in flight at once")
    batch.add_argument("--execution", choices=EXECUTION_MODES, default=None,
                       help="override every job's execution mode; "
                            "'continuous' joins all jobs in one shared "
                            "decode loop (bit-identical outputs)")
    batch.add_argument("--strategy", choices=PROMPT_STRATEGIES, default=None,
                       help="override every job's prompt strategy")
    batch.add_argument("--max-resident-streams", type=int, default=64,
                       help="continuous-scheduler admission cap: total live "
                            "decode streams across resident requests")
    batch.add_argument("--repeat", type=int, default=1,
                       help="run the whole batch this many times "
                            "(later passes exercise the result cache)")
    batch.add_argument("--no-cache", action="store_true",
                       help="disable the content-addressed result cache")
    batch.add_argument("--metrics-out",
                       help="write the engine's metrics snapshot to this JSON path")
    batch.add_argument("--ledger",
                       help="append one JSONL run-ledger record per request "
                            "to this path (see docs/OBSERVABILITY.md)")
    batch.add_argument("--trace", action="store_true",
                       help="trace every request; with --ledger, records "
                            "carry full span trees")

    serve = sub.add_parser(
        "serve",
        help="serve a manifest through the async gateway "
             "(admission control, quotas, coalescing)",
    )
    serve.add_argument("--manifest", required=True,
                       help="JSON manifest of forecast jobs (see docs/API.md)")
    serve.add_argument("--workers", type=int, default=4,
                       help="sample-draw worker threads")
    serve.add_argument("--shards", type=int, default=0,
                       help="decode worker *processes*: 0 serves in-process, "
                            "N >= 1 stands up a ShardedEngine with N shards "
                            "(bit-identical results; see docs/SERVING.md)")
    serve.add_argument("--request-concurrency", type=int, default=2,
                       help="engine requests in flight at once")
    serve.add_argument("--max-pending", type=int, default=64,
                       help="admission bound: requests beyond this are shed "
                            "with a typed Overloaded error")
    serve.add_argument("--quota-rate", type=float, default=None,
                       help="per-tenant sustained requests/second "
                            "(default: unlimited)")
    serve.add_argument("--quota-burst", type=float, default=1.0,
                       help="per-tenant burst allowance (bucket size)")
    serve.add_argument("--no-coalesce", action="store_true",
                       help="disable single-flight coalescing of identical "
                            "in-flight requests")
    serve.add_argument("--execution", choices=EXECUTION_MODES, default=None,
                       help="override every job's execution mode")
    serve.add_argument("--metrics-out",
                       help="write the engine's metrics snapshot to this JSON path")
    serve.add_argument("--ledger",
                       help="append one JSONL run-ledger record per request "
                            "(admission outcomes included)")

    loadtest = sub.add_parser(
        "loadtest",
        help="replay or synthesize a workload against the gateway and "
             "report SLO metrics",
    )
    loadtest.add_argument("--requests", type=int, default=1000,
                          help="total arrivals to offer")
    loadtest.add_argument("--driver", choices=("open", "closed"),
                          default="open",
                          help="open-loop (fixed offered rate) or "
                               "closed-loop (fixed concurrency)")
    loadtest.add_argument("--rate", type=float, default=200.0,
                          help="open-loop offered rate, requests/second")
    loadtest.add_argument("--concurrency", type=int, default=8,
                          help="closed-loop in-flight workers")
    loadtest.add_argument("--replay-ledger", default=None,
                          help="rebuild the workload from this run-ledger "
                               "JSONL instead of synthesizing")
    loadtest.add_argument("--distinct", type=int, default=50,
                          help="distinct request shapes in a synthetic "
                               "workload (repetition drives coalescing)")
    loadtest.add_argument("--seed", type=int, default=0)
    loadtest.add_argument("--model", default="uniform-sim",
                          help="backend model for the workload")
    _add_samples_argument(loadtest)
    loadtest.add_argument("--horizon", type=int, default=3)
    loadtest.add_argument("--deadline", type=float, default=None,
                          help="per-request deadline in seconds")
    loadtest.add_argument("--execution", choices=EXECUTION_MODES,
                          default="batched")
    loadtest.add_argument("--max-pending", type=int, default=64)
    loadtest.add_argument("--quota-rate", type=float, default=None)
    loadtest.add_argument("--quota-burst", type=float, default=1.0)
    loadtest.add_argument("--no-cache", action="store_true",
                          help="disable the engine's result cache")
    loadtest.add_argument("--no-coalesce", action="store_true")
    loadtest.add_argument("--shards", type=int, default=0,
                          help="decode worker processes behind the gateway "
                               "(0 = in-process engine)")
    loadtest.add_argument("--json-out", default=None,
                          help="write the full report as JSON to this path")
    loadtest.add_argument("--ledger-out", default=None,
                          help="run ledger written by the gateway during "
                               "the test (replayable by --replay-ledger)")

    ledger = sub.add_parser(
        "ledger", help="inspect run-ledger files written by batch --ledger"
    )
    ledger_sub = ledger.add_subparsers(dest="ledger_command", required=True)
    summarize = ledger_sub.add_parser(
        "summarize", help="aggregate a ledger into outcome counts and latency"
    )
    summarize.add_argument("file", help="path to a .jsonl run ledger")
    summarize.add_argument("--json", action="store_true",
                           help="emit the summary as JSON instead of text")

    sweep = sub.add_parser(
        "sweep",
        help="grid/random hyperparameter search with ledger-backed resume",
    )
    sweep.add_argument("--method", default="multicast-vi",
                       help="multicast-<scheme> or a baseline estimator name")
    sweep.add_argument("--dataset", choices=sorted(_DATASETS),
                       default="gas_rate")
    sweep.add_argument("--param", action="append", default=[],
                       metavar="KEY=V1,V2,...",
                       help="swept knob and its candidate values "
                            "(repeatable; paper aliases b/w/a accepted)")
    sweep.add_argument("--fixed", action="append", default=[],
                       metavar="KEY=VALUE",
                       help="knob pinned to one value for every trial "
                            "(repeatable)")
    sweep.add_argument("--search", choices=("grid", "random"),
                       default="grid")
    sweep.add_argument("--trials", type=int, default=None,
                       help="number of random-search draws "
                            "(grid search sizes itself)")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--horizon", type=int, default=4,
                       help="backtest horizon each trial is scored on")
    sweep.add_argument("--windows", type=int, default=3,
                       help="rolling-origin backtest windows per trial")
    sweep.add_argument("--stride", type=int, default=None,
                       help="origin step between windows (default: horizon)")
    sweep.add_argument("--rungs", type=int, default=1,
                       help="successive-halving rungs (1 = no early stop)")
    sweep.add_argument("--eta", type=int, default=3,
                       help="successive-halving keep ratio")
    sweep.add_argument("--shards", type=int, default=0,
                       help="decode worker processes for MultiCast trials "
                            "(0 = in-process; results are bit-identical)")
    sweep.add_argument("--ledger", default=None,
                       help="JSONL run ledger: one record per (trial, rung); "
                            "required for --resume")
    sweep.add_argument("--resume", action="store_true",
                       help="skip trials already recorded in --ledger "
                            "(matched by content digest)")
    sweep.add_argument("--json-out", default=None,
                       help="write the full report as JSON to this path")

    sub.add_parser("list", help="list datasets, methods, and backend models")
    return parser


def _command_forecast(args) -> int:
    _ensure_writable(args.output, "--output")
    dataset = _load_dataset(args)
    sax = None
    if args.sax_segment is not None:
        sax = SaxConfig(
            segment_length=args.sax_segment,
            alphabet_size=args.sax_alphabet,
            alphabet_kind=args.sax_kind,
        )
    if args.horizon is None:
        history, actual = dataset.train_test_split(0.2)
        horizon = actual.shape[0]
    else:
        history, actual = np.asarray(dataset.values), None
        horizon = args.horizon
    spec_kwargs = {}
    if args.patch_length is not None:
        spec_kwargs["patch_length"] = args.patch_length
    spec = ForecastSpec(
        series=history,
        horizon=horizon,
        scheme=args.scheme,
        num_digits=args.digits,
        num_samples=_resolve_samples(args),
        model=args.model,
        sax=sax,
        seed=args.seed,
        execution=args.execution,
        strategy=args.strategy,
        **spec_kwargs,
    )
    tracer = None
    if args.trace:
        from repro.observability import SpanCollector, Tracer

        tracer = Tracer(SpanCollector())
    output = MultiCastForecaster(tracer=tracer).forecast(spec)

    print(f"{dataset.name}: {dataset.num_dims} dims, history {len(history)}, "
          f"horizon {horizon}, scheme {args.scheme}, model {args.model}")
    print(f"tokens: prompt={output.prompt_tokens} generated={output.generated_tokens}"
          f"  simulated={output.simulated_seconds:.0f}s wall={output.wall_seconds:.2f}s")
    if args.verbose:
        total = output.wall_seconds or 1.0
        print("stage timings:")
        for stage, seconds in output.timings.items():
            print(f"  {stage:<13} {seconds * 1000:9.2f} ms  "
                  f"{seconds / total:6.1%}")
    if tracer is not None:
        from repro.observability import render_span_tree

        print("trace:")
        for root in tracer.collector.drain():
            print(render_span_tree(root))
    if actual is not None:
        from repro.metrics import rmse

        for k, name in enumerate(dataset.dim_names):
            print(f"  RMSE[{name}] = {rmse(actual[:, k], output.values[:, k]):.4f}")
    if args.plot:
        series = {"forecast": output.values[:, 0]}
        if actual is not None:
            series = {"actual": actual[:, 0], **series}
        print(ascii_plot(series, title=f"{dataset.dim_names[0]}"))
    if args.output:
        save_csv(
            Dataset(f"{dataset.name}_forecast", output.values, dataset.dim_names),
            args.output,
        )
        print(f"forecast written to {args.output}")
    return 0


def _command_evaluate(args) -> int:
    dataset = _DATASETS[args.dataset]()
    num_samples = _resolve_samples(args)
    rows = []
    for method in args.methods:
        options = {}
        if method.startswith("multicast") or method == "llmtime":
            options["num_samples"] = num_samples
        result = evaluate_method(method, dataset, seed=args.seed, **options)
        rows.append([
            method,
            *(result.rmse_per_dim[name] for name in dataset.dim_names),
            f"{result.reported_seconds:.0f}s",
        ])
    print(format_table(
        ["method", *dataset.dim_names, "time"],
        rows,
        title=f"{dataset.name}: per-dimension RMSE (last 20% held out)",
    ))
    return 0


def _command_table(args) -> int:
    functions = _table_functions()
    num_samples = _resolve_samples(args)
    names = sorted(functions) if args.which == "all" else [args.which]
    for name in names:
        function = functions[name]
        if name == "i":
            print(function().format())
        else:
            print(function(num_samples=num_samples).format())
        print()
    return 0


def _command_figure(args) -> int:
    _ensure_writable(args.csv_out, "--csv-out")
    figure = _figure_functions()[args.which](num_samples=_resolve_samples(args))
    print(figure.render())
    if args.csv_out:
        figure.save_csv(args.csv_out)
        print(f"series written to {args.csv_out}")
    return 0


def _command_list(args) -> int:
    del args
    print("datasets:       " + "  ".join(sorted(_DATASETS)))
    print("methods:        " + "  ".join(available_methods()))
    print("backend models: " + "  ".join(available_models()))
    return 0


def _command_plan(args) -> int:
    from repro.core import plan_forecast

    dataset = _DATASETS[args.dataset]()
    horizon = args.horizon or max(1, dataset.num_timestamps // 5)
    num_samples = _resolve_samples(args)
    sax = None
    if args.sax_segment is not None:
        sax = SaxConfig(segment_length=args.sax_segment)
    config = MultiCastConfig(
        scheme=args.scheme, num_samples=num_samples, model=args.model, sax=sax
    )
    plan = plan_forecast(config, dataset.num_timestamps, dataset.num_dims, horizon)
    print(f"{dataset.name}: scheme={args.scheme} samples={num_samples} "
          f"horizon={horizon} sax={'on' if sax else 'off'}")
    print(f"  prompt tokens          {plan.prompt_tokens}")
    print(f"  generated tokens       {plan.generated_tokens}")
    print(f"  billing total          {plan.total_tokens} tokens")
    print(f"  simulated inference    {plan.simulated_seconds:.0f}s")
    print(f"  estimated cost         ${plan.usd:.4f}")
    return 0


def _command_backtest(args) -> int:
    from repro.evaluation import rolling_origin_evaluation

    dataset = _DATASETS[args.dataset]()
    num_samples = _resolve_samples(args)
    spec = None
    options = {}
    if args.method.startswith("multicast"):
        spec = ForecastSpec(
            num_samples=num_samples,
            execution=args.execution,
            strategy=args.strategy,
        )
    elif args.method == "llmtime":
        options["num_samples"] = num_samples
    engine = None
    if args.workers > 0:
        from repro.serving import ForecastEngine

        engine = ForecastEngine(num_workers=args.workers)
    try:
        result = rolling_origin_evaluation(
            args.method, dataset, horizon=args.horizon,
            num_windows=args.windows, seed=args.seed, engine=engine,
            spec=spec, **options,
        )
    finally:
        if engine is not None:
            engine.close()
    mean, std = result.mean_rmse(), result.std_rmse()
    print(f"{args.method} on {dataset.name}: {result.num_windows} windows "
          f"of {args.horizon} (origins {result.origins})")
    for name in dataset.dim_names:
        print(f"  RMSE[{name}] = {mean[name]:.4f} ± {std[name]:.4f}")
    return 0


def _command_batch(args) -> int:
    import dataclasses
    import json

    from repro.exceptions import ConfigError
    from repro.serving import ForecastCache, ForecastEngine, load_manifest

    _ensure_writable(args.metrics_out, "--metrics-out")
    _ensure_writable(args.ledger, "--ledger")
    jobs = load_manifest(args.manifest)
    requests = []
    for job in jobs:
        if job.csv is not None:
            series = np.asarray(load_csv(job.csv).values)
        elif job.dataset in _DATASETS:
            series = np.asarray(_DATASETS[job.dataset]().values)
        else:
            raise ConfigError(
                f"job {job.name!r}: unknown dataset {job.dataset!r}; "
                f"available: {', '.join(sorted(_DATASETS))}"
            )
        request = job.to_request(series)
        if args.execution is not None:
            # replace() re-runs __post_init__, so the override is validated
            # exactly like a manifest-specified execution.
            request = dataclasses.replace(request, execution=args.execution)
        if args.strategy is not None:
            request = dataclasses.replace(
                request,
                config=dataclasses.replace(request.config, strategy=args.strategy),
            )
        requests.append(request)

    cache = ForecastCache(max_entries=0) if args.no_cache else None
    tracer = None
    if args.trace:
        from repro.observability import SpanCollector, Tracer

        tracer = Tracer(SpanCollector())
    failed = 0
    with ForecastEngine(
        num_workers=args.workers,
        cache=cache,
        max_concurrent_requests=args.request_concurrency,
        max_resident_streams=args.max_resident_streams,
        tracer=tracer,
        ledger=args.ledger,
    ) as engine:
        for round_index in range(max(1, args.repeat)):
            if args.repeat > 1:
                print(f"pass {round_index + 1}/{args.repeat}:")
            responses = engine.forecast_batch(requests)
            for response in responses:
                print(f"  {response.summary()}")
            failed = sum(1 for r in responses if not r.ok)
        stats = engine.cache.stats
        print(f"jobs: {len(requests)}  failed: {failed}  "
              f"cache: {stats['hits']} hits / {stats['misses']} misses")
        if args.metrics_out:
            with open(args.metrics_out, "w") as handle:
                json.dump(engine.metrics_snapshot(), handle, indent=2)
            print(f"metrics written to {args.metrics_out}")
        if args.ledger:
            print(f"ledger: {engine.ledger.records_written} records "
                  f"appended to {args.ledger}")
    return 1 if failed else 0


def _command_serve(args) -> int:
    import asyncio
    import dataclasses
    import json

    from repro.exceptions import ConfigError
    from repro.gateway import (
        ForecastGateway,
        Overloaded,
        QuotaExceeded,
        TenantQuota,
    )
    from repro.serving import ForecastEngine, load_manifest

    _ensure_writable(args.metrics_out, "--metrics-out")
    _ensure_writable(args.ledger, "--ledger")
    jobs = load_manifest(args.manifest)
    requests = []
    for job in jobs:
        if job.csv is not None:
            series = np.asarray(load_csv(job.csv).values)
        elif job.dataset in _DATASETS:
            series = np.asarray(_DATASETS[job.dataset]().values)
        else:
            raise ConfigError(
                f"job {job.name!r}: unknown dataset {job.dataset!r}; "
                f"available: {', '.join(sorted(_DATASETS))}"
            )
        request = job.to_request(series)
        if args.execution is not None:
            request = dataclasses.replace(request, execution=args.execution)
        requests.append(request)

    quota = (
        TenantQuota(rate=args.quota_rate, burst=args.quota_burst)
        if args.quota_rate is not None
        else None
    )
    if args.shards > 0:
        from repro.sharding import ShardedEngine

        engine = ShardedEngine(
            num_shards=args.shards,
            worker_threads=args.workers,
            ledger=args.ledger,
        )
    else:
        engine = ForecastEngine(
            num_workers=args.workers,
            max_concurrent_requests=args.request_concurrency,
            ledger=args.ledger,
        )

    async def _serve_all() -> int:
        rejected = 0
        failed = 0
        async with ForecastGateway(
            engine,
            max_pending=args.max_pending,
            default_quota=quota,
            coalesce=not args.no_coalesce,
        ) as gateway:
            handles = []
            for request in requests:
                try:
                    handles.append(await gateway.submit(request))
                except (Overloaded, QuotaExceeded) as error:
                    rejected += 1
                    print(f"  {request.name or 'request'}: REJECTED {error}")
            for handle in handles:
                response = await gateway.result(handle)
                flags = " [coalesced]" if handle.coalesced else ""
                print(f"  {response.summary()}{flags}")
                if not response.ok:
                    failed += 1
            stats = gateway.stats()["admission"]
        print(f"jobs: {len(requests)}  failed: {failed}  "
              f"rejected: {rejected}  shed: {stats['shed']}  "
              f"quota: {stats['quota_rejected']}")
        return 1 if (failed or rejected) else 0

    try:
        code = asyncio.run(_serve_all())
        if args.metrics_out:
            with open(args.metrics_out, "w") as handle:
                json.dump(engine.metrics_snapshot(), handle, indent=2)
            print(f"metrics written to {args.metrics_out}")
        if args.ledger:
            print(f"ledger: {engine.ledger.records_written} records "
                  f"appended to {args.ledger}")
    finally:
        engine.close()
    return code


def _command_loadtest(args) -> int:
    import json

    from repro.loadtest import LoadTestConfig, run_loadtest

    _ensure_writable(args.json_out, "--json-out")
    _ensure_writable(args.ledger_out, "--ledger-out")
    config = LoadTestConfig(
        requests=args.requests,
        driver=args.driver,
        rate=args.rate,
        concurrency=args.concurrency,
        ledger_path=args.replay_ledger,
        distinct=args.distinct,
        seed=args.seed,
        horizon=args.horizon,
        num_samples=_resolve_samples(args, default=2),
        model=args.model,
        execution=args.execution,
        deadline_seconds=args.deadline,
        max_pending=args.max_pending,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        coalesce=not args.no_coalesce,
        use_result_cache=not args.no_cache,
        ledger_out=args.ledger_out,
        shards=args.shards,
    )
    report = run_loadtest(config)
    print(report.summary())
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"report written to {args.json_out}")
    return 0


def _command_ledger(args) -> int:
    import json

    from repro.observability import summarize_ledger

    summary = summarize_ledger(args.file)
    if args.json:
        print(json.dumps(summary.to_dict(), indent=2))
    else:
        print(summary.format())
    return 0


def _parse_sweep_value(text: str):
    """A CLI sweep value: bool/None/int/float when it parses, else str."""
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    for parse in (int, float):
        try:
            return parse(text)
        except ValueError:
            continue
    return text.strip()


def _parse_sweep_assignments(entries, *, flag: str, multi: bool) -> dict:
    """``KEY=V1,V2`` flags into a space/fixed dict for SweepSpec."""
    parsed: dict = {}
    for entry in entries:
        key, separator, value = entry.partition("=")
        if not separator or not key.strip() or not value.strip():
            raise ReproError(
                f"{flag} expects KEY=VALUE{',VALUE...' if multi else ''}, "
                f"got {entry!r}"
            )
        values = [_parse_sweep_value(v) for v in value.split(",")]
        parsed[key.strip()] = values if multi else values[0]
    return parsed


def _command_sweep(args) -> int:
    import json

    from repro.sweeps import SweepRunner, SweepSpec

    if args.resume and args.ledger is None:
        raise ReproError("--resume needs --ledger (the record of done trials)")
    sweep = SweepSpec(
        method=args.method,
        space=_parse_sweep_assignments(args.param, flag="--param", multi=True),
        search=args.search,
        num_trials=args.trials,
        seed=args.seed,
        horizon=args.horizon,
        num_windows=args.windows,
        stride=args.stride,
        num_rungs=args.rungs,
        eta=args.eta,
        fixed=_parse_sweep_assignments(args.fixed, flag="--fixed", multi=False),
    )
    series = np.asarray(_DATASETS[args.dataset]().values)
    runner_kwargs = {"ledger": args.ledger} if args.ledger else {}
    if args.shards > 0 and args.method.startswith("multicast-"):
        from repro.sharding import ShardedEngine

        with ShardedEngine(num_shards=args.shards) as engine:
            report = SweepRunner(engine, **runner_kwargs).run(
                sweep, series, resume=args.resume
            )
    else:
        report = SweepRunner(**runner_kwargs).run(
            sweep, series, resume=args.resume
        )
    print(report.format())
    if args.json_out:
        _ensure_writable(args.json_out, "--json-out")
        with open(args.json_out, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
    return 0


_COMMANDS = {
    "forecast": _command_forecast,
    "evaluate": _command_evaluate,
    "table": _command_table,
    "figure": _command_figure,
    "plan": _command_plan,
    "backtest": _command_backtest,
    "batch": _command_batch,
    "serve": _command_serve,
    "loadtest": _command_loadtest,
    "ledger": _command_ledger,
    "sweep": _command_sweep,
    "list": _command_list,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        # filesystem problems with user-supplied paths (unwritable output,
        # a directory where a file was expected) are user errors, not bugs.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())

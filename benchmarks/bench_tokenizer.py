"""Beyond-paper bench: tokenizer adaptation (the paper's Section III-A note).

Reproduces, in simulation, the LLMTime finding the paper cites: BPE-style
partial digit merging (value-dependent splits) degrades numeric in-context
learning relative to digit-level tokenization — the reason both LLMTime
and MultiCast adapt the tokenizer per backend model.
"""

from repro.experiments import tokenizer_comparison_table


def test_tokenizer_adaptation(benchmark, emit):
    table = benchmark.pedantic(
        tokenizer_comparison_table, rounds=1, iterations=1
    )
    emit("tokenizer_study", table.format())
    for dim in ("GasRate", "CO2"):
        digit = table.cell("digit", dim)
        paired = table.cell("paired", dim)
        assert paired > digit, (
            f"BPE-style merging should degrade accuracy on {dim}"
        )

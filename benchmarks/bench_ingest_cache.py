"""Ingest-caching benches: fork-after-prefill and incremental extension.

Two measurements, mirroring the two halves of the ingest-caching design:

* **fork vs re-ingest** — end-to-end forecast wall time with the legacy
  per-draw re-ingest path (``share_prefill=False``) against the shared
  prefill path, per model preset and ensemble size.  The prompt dominates
  the token budget (long history, short horizon), so re-paying its ingest
  per sample is the bottleneck the fork removes;
* **backtest incremental extension** — rolling-origin evaluation with and
  without an :class:`~repro.llm.state_cache.IngestStateCache`.  Window
  ``k+1``'s prompt strictly extends window ``k``'s, so the cache turns each
  window's O(n) prefill into O(Δ); the ingested-token reduction *grows*
  with the number of windows (superlinear win), which the report shows by
  measuring at two window counts.

Run standalone to (re)generate ``BENCH_ingest.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_ingest_cache.py

``--smoke`` runs the single acceptance case (llama2-7b-sim at 10 samples),
asserts fork speedup > 1, and skips the JSON write — the CI entry point.
Through pytest (``pytest benchmarks/bench_ingest_cache.py``) the full
thresholds are asserted: >=2x fork speedup at 10 samples on llama2-7b-sim
and a backtest ingest reduction that increases with window count.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import ForecastSpec, MultiCastConfig, MultiCastForecaster
from repro.core.planning import plan_forecast
from repro.data import Dataset
from repro.evaluation import rolling_origin_evaluation
from repro.llm import IngestStateCache

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_ingest.json"

HISTORY_LENGTH = 580  # ~4060 prompt tokens: just under the context budget
HORIZON = 3
PRESETS = ("llama2-7b-sim", "ppm-recency-sim", "ctw-sim", "ngram-sim")
ENSEMBLE_SIZES = (4, 10, 20)

BACKTEST_LENGTH = 240
BACKTEST_HORIZON = 4
BACKTEST_STRIDE = 2
BACKTEST_SAMPLES = 2


def _history(n: int) -> np.ndarray:
    """A 2-dim series whose global extremes sit in the first two rows.

    Early extremes pin the digit scaler's fit for every truncation of the
    series, which is what keeps successive backtest prompts strict prefix
    extensions of each other.
    """
    rng = np.random.default_rng(0)
    t = np.arange(n)
    values = np.column_stack(
        [
            np.sin(t / 6.0) + 0.1 * rng.standard_normal(n),
            np.cos(t / 9.0) + 0.1 * rng.standard_normal(n),
        ]
    )
    values[0] = [2.5, 2.5]
    values[1] = [-2.5, -2.5]
    return values


def measure_fork_vs_reingest(
    presets=PRESETS, ensemble_sizes=ENSEMBLE_SIZES
) -> dict:
    """End-to-end forecast time: per-draw re-ingest vs shared prefill."""
    history = _history(HISTORY_LENGTH)
    report: dict = {}
    for preset in presets:
        report[preset] = {}
        for num_samples in ensemble_sizes:
            config = MultiCastConfig(
                scheme="di", model=preset, num_samples=num_samples, seed=0
            )
            spec = ForecastSpec.from_config(config, series=history, horizon=HORIZON)
            start = time.perf_counter()
            legacy = MultiCastForecaster(share_prefill=False).forecast(spec)
            reingest = time.perf_counter() - start

            start = time.perf_counter()
            shared = MultiCastForecaster().forecast(spec)
            fork = time.perf_counter() - start

            assert shared.values.tobytes() == legacy.values.tobytes()
            report[preset][str(num_samples)] = {
                "prompt_tokens": legacy.prompt_tokens,
                "generated_tokens": legacy.generated_tokens,
                "reingest_seconds": reingest,
                "fork_seconds": fork,
                "speedup": reingest / fork,
            }
    return report


def measure_backtest_extension(window_counts=(3, 6)) -> dict:
    """Rolling-origin backtest with and without the ingest-state cache."""
    dataset = Dataset(
        name="bench-extension",
        values=_history(BACKTEST_LENGTH),
        dim_names=("x", "y"),
    )
    config = MultiCastConfig(num_samples=BACKTEST_SAMPLES, seed=0)
    report: dict = {}
    for num_windows in window_counts:
        common = dict(
            horizon=BACKTEST_HORIZON,
            num_windows=num_windows,
            stride=BACKTEST_STRIDE,
            spec=ForecastSpec(num_samples=BACKTEST_SAMPLES),
        )
        start = time.perf_counter()
        uncached = rolling_origin_evaluation("multicast-di", dataset, **common)
        uncached_seconds = time.perf_counter() - start

        cache = IngestStateCache()
        start = time.perf_counter()
        cached = rolling_origin_evaluation(
            "multicast-di", dataset, state_cache=cache, **common
        )
        cached_seconds = time.perf_counter() - start

        assert cached.window_rmse == uncached.window_rmse
        origins = uncached.origins
        prompt_tokens = [
            plan_forecast(config, origin, 2, BACKTEST_HORIZON).prompt_tokens
            for origin in origins
        ]
        uncached_ingested = sum(prompt_tokens)
        cached_ingested = uncached_ingested - cache.stats["tokens_saved"]
        report[f"{num_windows}_windows"] = {
            "origins": origins,
            "cache_outcomes": {
                "misses": cache.stats["misses"],
                "extends": cache.stats["extends"],
            },
            "uncached_ingested_tokens": uncached_ingested,
            "cached_ingested_tokens": cached_ingested,
            "ingest_reduction": uncached_ingested / cached_ingested,
            "uncached_seconds": uncached_seconds,
            "cached_seconds": cached_seconds,
            "wall_speedup": uncached_seconds / cached_seconds,
        }
    return report


def run() -> dict:
    report = {
        "fork_vs_reingest": measure_fork_vs_reingest(),
        "backtest_extension": measure_backtest_extension(),
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def smoke() -> None:
    """CI entry point: the one acceptance case, asserted, nothing written."""
    report = measure_fork_vs_reingest(
        presets=("llama2-7b-sim",), ensemble_sizes=(10,)
    )
    case = report["llama2-7b-sim"]["10"]
    print(
        f"llama2-7b-sim @ 10 samples: reingest {case['reingest_seconds']:.3f}s, "
        f"fork {case['fork_seconds']:.3f}s, speedup {case['speedup']:.2f}x"
    )
    assert case["speedup"] > 1.0, "shared prefill must beat per-draw re-ingest"


def test_ingest_bench(emit):
    report = run()
    lines = ["fork vs re-ingest (end-to-end forecast):"]
    for preset, cases in report["fork_vs_reingest"].items():
        for num_samples, case in cases.items():
            lines.append(
                f"  {preset:<16} S={num_samples:>2}  "
                f"reingest {case['reingest_seconds']:7.3f} s  "
                f"fork {case['fork_seconds']:7.3f} s  "
                f"speedup {case['speedup']:5.2f}x"
            )
    lines.append("backtest incremental extension:")
    for key, case in report["backtest_extension"].items():
        lines.append(
            f"  {key:<10} ingest tokens {case['uncached_ingested_tokens']:>6} -> "
            f"{case['cached_ingested_tokens']:>5} "
            f"({case['ingest_reduction']:.1f}x less)  "
            f"wall speedup {case['wall_speedup']:4.2f}x"
        )
    emit("ingest_cache", "\n".join(lines))
    # Acceptance thresholds from the ingest-caching issue.
    assert report["fork_vs_reingest"]["llama2-7b-sim"]["10"]["speedup"] >= 2.0
    extension = report["backtest_extension"]
    # Superlinear: the ingest reduction grows with the number of windows.
    assert (
        extension["6_windows"]["ingest_reduction"]
        > extension["3_windows"]["ingest_reduction"]
        > 1.0
    )


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        smoke()
    else:
        print(json.dumps(run(), indent=2))
        print(f"wrote {BENCH_PATH}")

"""Prompt-strategy bench: tokens vs accuracy per serialisation strategy.

One workload, every prompt strategy.  A strongly seasonal two-dimensional
series is forecast over the same horizon by each strategy in
``repro.strategies`` — the classic per-step digit pipeline, SAX symbols,
per-patch PAA aggregation, and decompose-then-forecast — and the report
records the full trajectory: prompt tokens, generated tokens, held-out
RMSE, and wall time under both pooled and batched decoding.  Token savings
compound with batched decoding (fewer prompt tokens to ingest *and* fewer
decode steps per stream), so both axes appear side by side.

Run standalone to (re)generate ``BENCH_strategies.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_strategies.py

``--smoke`` runs just the digit/patch pair and asserts the acceptance
threshold (patch cuts prompt tokens >= 3x at equal horizon) without
writing JSON — the CI entry point.  Through pytest
(``pytest benchmarks/bench_strategies.py``) the full report is generated
and the same threshold asserted.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import ForecastSpec, MultiCastConfig, MultiCastForecaster, SaxConfig
from repro.metrics import rmse

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_strategies.json"

PRESET = "llama2-7b-sim"
HISTORY_LENGTH = 120
HORIZON = 24
NUM_SAMPLES = 5
PATCH_LENGTH = 6
SEED = 0

#: strategy name -> extra MultiCastConfig fields for that row.
STRATEGIES = {
    "digit": {},
    "sax": {"sax": SaxConfig(segment_length=6, alphabet_size=5)},
    "patch": {"patch_length": PATCH_LENGTH},
    "decompose": {},
    "auto": {},
}


def _series(n: int = HISTORY_LENGTH + HORIZON) -> np.ndarray:
    """A seasonal two-dimensional series (period 12) with mild noise."""
    t = np.arange(n)
    rng = np.random.default_rng(7)
    return np.column_stack([
        np.sin(2 * np.pi * t / 12.0) + 0.05 * rng.standard_normal(n),
        np.cos(2 * np.pi * t / 12.0) + 0.05 * rng.standard_normal(n),
    ])


def measure_strategies(names=tuple(STRATEGIES)) -> dict:
    """Tokens, accuracy, and wall time per strategy on the shared workload."""
    series = _series()
    history, actual = series[:HISTORY_LENGTH], series[HISTORY_LENGTH:]
    report: dict = {}
    for name in names:
        config = MultiCastConfig(
            strategy=name,
            num_samples=NUM_SAMPLES,
            model=PRESET,
            seed=SEED,
            **STRATEGIES[name],
        )
        seconds: dict = {}
        output = None
        for execution in ("pooled", "batched"):
            spec = ForecastSpec.from_config(
                config, series=history, horizon=HORIZON, execution=execution
            )
            start = time.perf_counter()
            result = MultiCastForecaster(config).forecast(spec)
            seconds[execution] = time.perf_counter() - start
            if output is not None:
                assert result.values.tobytes() == output.values.tobytes()
            output = result
        report[name] = {
            "strategy_ran": output.metadata["strategy"],
            "prompt_tokens": output.prompt_tokens,
            "generated_tokens": output.generated_tokens,
            "total_tokens": output.prompt_tokens + output.generated_tokens,
            "rmse": float(np.mean([
                rmse(actual[:, k], output.values[:, k])
                for k in range(actual.shape[1])
            ])),
            "seconds": seconds,
        }
    if "digit" in report:
        digits = report["digit"]
        for name, row in report.items():
            row["prompt_token_reduction_vs_digit"] = (
                digits["prompt_tokens"] / row["prompt_tokens"]
            )
    return report


def run() -> dict:
    report = {
        "workload": {
            "preset": PRESET,
            "history_length": HISTORY_LENGTH,
            "horizon": HORIZON,
            "num_samples": NUM_SAMPLES,
            "patch_length": PATCH_LENGTH,
        },
        "strategies": measure_strategies(),
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def smoke() -> None:
    """CI entry point: digit vs patch, asserted, nothing written."""
    report = measure_strategies(names=("digit", "patch"))
    digit, patch = report["digit"], report["patch"]
    print(
        f"{PRESET} @ horizon {HORIZON}: digit {digit['prompt_tokens']} "
        f"prompt tokens (rmse {digit['rmse']:.3f}), patch "
        f"{patch['prompt_tokens']} prompt tokens (rmse {patch['rmse']:.3f}), "
        f"reduction {patch['prompt_token_reduction_vs_digit']:.2f}x"
    )
    assert patch["prompt_token_reduction_vs_digit"] >= 3.0, (
        "patch aggregation must cut prompt tokens at least 3x vs "
        "per-step digits at equal horizon"
    )


def test_strategies_bench(emit):
    report = run()
    lines = [
        f"prompt strategies on {PRESET} "
        f"(history {HISTORY_LENGTH}, horizon {HORIZON}, S={NUM_SAMPLES}):"
    ]
    for name, row in report["strategies"].items():
        lines.append(
            f"  {name:<9} ({row['strategy_ran']:<14}) "
            f"prompt {row['prompt_tokens']:>5}  "
            f"generated {row['generated_tokens']:>5}  "
            f"rmse {row['rmse']:6.3f}  "
            f"batched {row['seconds']['batched']:6.3f} s  "
            f"cut {row['prompt_token_reduction_vs_digit']:5.2f}x"
        )
    emit("strategies", "\n".join(lines))
    # Acceptance threshold from the prompt-strategy issue.
    assert (
        report["strategies"]["patch"]["prompt_token_reduction_vs_digit"] >= 3.0
    )


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        smoke()
    else:
        print(json.dumps(run(), indent=2))
        print(f"wrote {BENCH_PATH}")

"""Batched-decoding bench: lockstep ensembles vs per-draw execution.

One measurement, three execution modes.  A forecast draws S continuations
of the same prompt; ``execution="sequential"`` and ``"pooled"`` advance
each draw's own token loop (S model passes per step), while
``"batched"`` drives all S streams through one
:class:`~repro.llm.batch.BatchedDecoder` — streams with equal generated
prefixes share one model state, so each decode step scores only the
*distinct* states (one vectorised ``next_distribution_batch`` call) and
forks a group only when sampled tokens actually diverge.

The workload is the regime batching targets: a strongly periodic series,
where the PPM substrate's longest-suffix predictions are peaked and the
batch stays collapsed into a handful of groups for the whole decode (the
``mean_groups`` column).  The step-occupancy and group-count curves in the
report show the schedule directly: occupancy stays at S until streams
retire, groups grow only as sampled tokens split the ensemble.

Run standalone to (re)generate ``BENCH_batching.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_batching.py

``--smoke`` runs the single acceptance case (S=20 on the PPM substrate),
asserts batched beats pooled, and skips the JSON write — the CI entry
point.  Through pytest (``pytest benchmarks/bench_batching.py``) the full
threshold is asserted: >=3x over the pooled path at S=20.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import ForecastSpec, MultiCastForecaster

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_batching.json"

PRESET = "llama2-7b-sim"  # the PPM substrate
HISTORY_LENGTH = 120
HORIZON = 24  # decode-heavy: generated tokens outweigh the prompt ingest
TEMPERATURE = 0.3
ENSEMBLE_SIZES = (5, 10, 20)
EXECUTIONS = ("sequential", "pooled", "batched")
REPEATS = 2  # best-of, to keep scheduler noise out of the ratios


def _history(n: int = HISTORY_LENGTH) -> np.ndarray:
    """A clean two-dimensional periodic series (period 12)."""
    t = np.arange(n)
    return np.column_stack(
        [np.sin(2 * np.pi * t / 12.0), np.cos(2 * np.pi * t / 12.0)]
    )


def _spec(num_samples: int) -> ForecastSpec:
    return ForecastSpec(
        series=_history(),
        horizon=HORIZON,
        scheme="di",
        num_samples=num_samples,
        model=PRESET,
        temperature=TEMPERATURE,
        seed=0,
    )


def measure_executions(ensemble_sizes=ENSEMBLE_SIZES) -> dict:
    """End-to-end forecast wall time per execution mode and ensemble size."""
    report: dict = {}
    for num_samples in ensemble_sizes:
        spec = _spec(num_samples)
        seconds: dict = {}
        outputs: dict = {}
        for mode in EXECUTIONS:
            run_spec = spec.replace(execution=mode)
            best = float("inf")
            for _ in range(REPEATS):
                start = time.perf_counter()
                outputs[mode] = MultiCastForecaster().forecast(run_spec)
                best = min(best, time.perf_counter() - start)
            seconds[mode] = best
        reference = outputs["sequential"]
        for mode in ("pooled", "batched"):
            assert outputs[mode].values.tobytes() == reference.values.tobytes()
            assert outputs[mode].samples.tobytes() == reference.samples.tobytes()
        occupancy = outputs["batched"].metadata["batch_occupancy"]
        groups = outputs["batched"].metadata["batch_groups"]
        report[str(num_samples)] = {
            "prompt_tokens": reference.prompt_tokens,
            "generated_tokens": reference.generated_tokens,
            "seconds": seconds,
            "speedup_vs_pooled": seconds["pooled"] / seconds["batched"],
            "speedup_vs_sequential": seconds["sequential"] / seconds["batched"],
            "steps": len(occupancy),
            "mean_occupancy": float(np.mean(occupancy)),
            "mean_groups": float(np.mean(groups)),
            "occupancy_curve": occupancy,
            "group_curve": groups,
        }
    return report


def run() -> dict:
    report = {
        "workload": {
            "preset": PRESET,
            "history_length": HISTORY_LENGTH,
            "horizon": HORIZON,
            "temperature": TEMPERATURE,
        },
        "executions": measure_executions(),
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def smoke() -> None:
    """CI entry point: the one acceptance case, asserted, nothing written."""
    report = measure_executions(ensemble_sizes=(20,))
    case = report["20"]
    print(
        f"{PRESET} @ S=20: pooled {case['seconds']['pooled']:.3f}s, "
        f"batched {case['seconds']['batched']:.3f}s, "
        f"speedup {case['speedup_vs_pooled']:.2f}x, "
        f"mean groups {case['mean_groups']:.2f}"
    )
    assert case["speedup_vs_pooled"] > 1.0, (
        "lockstep batching must beat per-draw pooled execution"
    )


def test_batching_bench(emit):
    report = run()
    lines = [
        f"batched decoding on {PRESET} "
        f"(history {HISTORY_LENGTH}, horizon {HORIZON}):"
    ]
    for num_samples, case in report["executions"].items():
        seconds = case["seconds"]
        lines.append(
            f"  S={num_samples:>2}  seq {seconds['sequential']:6.3f} s  "
            f"pooled {seconds['pooled']:6.3f} s  "
            f"batched {seconds['batched']:6.3f} s  "
            f"speedup {case['speedup_vs_pooled']:5.2f}x  "
            f"groups {case['mean_groups']:5.2f}/{case['mean_occupancy']:5.2f}"
        )
    case = report["executions"]["20"]
    curve = case["occupancy_curve"]
    lines.append(
        "  occupancy S=20: "
        + " ".join(str(curve[i]) for i in range(0, len(curve), len(curve) // 12))
    )
    emit("batching", "\n".join(lines))
    # Acceptance threshold from the batched-decoding issue.
    assert case["speedup_vs_pooled"] >= 3.0
    # The schedule is monotone: streams only retire, never rejoin …
    assert case["occupancy_curve"] == sorted(case["occupancy_curve"], reverse=True)
    # … and there are never more model states than live streams.
    assert all(
        g <= o for g, o in zip(case["group_curve"], case["occupancy_curve"])
    )


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        smoke()
    else:
        print(json.dumps(run(), indent=2))
        print(f"wrote {BENCH_PATH}")

"""Table IV — forecasting RMSE on Gas Rate (6 methods x 2 dimensions).

Paper values:

    MultiCast (DI)  0.781  4.639      LLMTIME  0.703  2.75
    MultiCast (VI)  1.154  2.71       ARIMA    0.92   2.63
    MultiCast (VC)  0.965  3.626      LSTM     1.122  3.89

Shapes asserted: every method lands in a plausible error band for its
dimension (the paper's winners vary by dimension — no ordering is pinned),
and the LLM-based methods are competitive with the classical ones on the
GasRate dimension, as the paper highlights.
"""

import numpy as np

from repro.experiments import table_iv


def test_table_iv(benchmark, emit):
    table = benchmark.pedantic(table_iv, rounds=1, iterations=1)
    emit("table_iv", table.format())
    assert len(table.rows) == 6
    gas_errors = {row[0]: row[1] for row in table.rows}
    co2_errors = {row[0]: row[2] for row in table.rows}
    assert all(np.isfinite(list(gas_errors.values())))
    # Paper band (0.70-1.15) with margin for the synthetic substrate.
    for method, error in gas_errors.items():
        assert 0.1 < error < 3.0, (method, error)
    for method, error in co2_errors.items():
        assert 0.3 < error < 9.0, (method, error)
    # The LLM methods are competitive on GasRate: best LLM within 2x of
    # the best classical method (paper: LLMTIME actually wins there).
    llm = min(gas_errors[m] for m in gas_errors if m != "ARIMA" and m != "LSTM")
    classical = min(gas_errors["ARIMA"], gas_errors["LSTM"])
    assert llm < 2.0 * classical

"""Beyond-paper bench: seed sensitivity of the reproduced numbers.

The paper reports single-run RMSEs; our fully-seeded substrate can quantify
how much those cells move.  Two sources of variance are separated: the
sampling seed (re-running the same experiment) and the dataset realisation
(a different synthetic stand-in).  The stds contextualise every
paper-vs-measured comparison in EXPERIMENTS.md.
"""

from repro.experiments.sensitivity import seed_sensitivity_table


def test_generation_seed_sensitivity(benchmark, emit):
    table = benchmark.pedantic(
        lambda: seed_sensitivity_table("multicast-di", num_seeds=5, vary="generation"),
        rounds=1,
        iterations=1,
    )
    emit("sensitivity_generation", table.format())
    # Re-running with a new sampling seed moves the cells by far less than
    # their magnitude — the reproduction is stable, not a lucky draw.
    for dim in ("GasRate", "CO2"):
        assert table.cell("std", dim) < 0.5 * table.cell("mean", dim)


def test_dataset_seed_sensitivity(benchmark, emit):
    table = benchmark.pedantic(
        lambda: seed_sensitivity_table("multicast-di", num_seeds=5, vary="dataset"),
        rounds=1,
        iterations=1,
    )
    emit("sensitivity_dataset", table.format())
    for dim in ("GasRate", "CO2"):
        assert table.cell("min", dim) > 0.0
        assert table.cell("max", dim) < 5.0 * table.cell("mean", dim)

"""Table V — forecasting RMSE on Electricity (6 methods x 3 dimensions).

Paper values:

    MultiCast (DI)  5.914  1.444   9.198     LLMTIME  4.299  1.432  7.543
    MultiCast (VI)  8.63   1.882  13.752     ARIMA    7.063  1.572  4.181
    MultiCast (VC)  2.424  1.913  10.230     LSTM     4.892  1.43   8.740

Shapes asserted: the scale separation between dimensions survives (HUFL
errors exceed HULL errors for every method — the series is an order of
magnitude larger), and all errors stay within plausible bands.
"""

from repro.experiments import table_v


def test_table_v(benchmark, emit):
    table = benchmark.pedantic(table_v, rounds=1, iterations=1)
    emit("table_v", table.format())
    assert len(table.rows) == 6
    for row in table.rows:
        method, hufl, hull, ot = row
        assert hufl > hull, f"{method}: HUFL (big scale) must out-err HULL"
        assert 0.2 < hufl < 15.0, (method, hufl)
        assert 0.05 < hull < 5.0, (method, hull)
        assert 0.5 < ot < 25.0, (method, ot)

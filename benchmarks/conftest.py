"""Shared fixtures for the benchmark suite.

Every bench regenerates one of the paper's tables or figures with the
paper's default parameters (Table II bold values), prints it, and writes it
under ``results/`` so the paper-vs-measured comparison in EXPERIMENTS.md can
be refreshed from a single run:

    pytest benchmarks/ --benchmark-only

Expensive tables run exactly once inside ``benchmark.pedantic`` (the timing
then reports the full-table wall time); cheap kernels use the default
statistical benchmarking.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Print a rendered table/figure and persist it under results/."""

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit

"""Beyond-paper bench: the zero-shot task extensions, evaluated quantitatively.

The paper only *names* imputation, anomaly and change-point detection as
future work; this bench evaluates our implementations on planted ground
truth, against simple statistical baselines, so the extensions carry
numbers rather than demos:

* anomaly: tolerance-windowed F1 on planted spikes vs a global z-score rule;
* change-point: localisation of a planted regime break vs a rolling-mean
  difference rule;
* imputation: gap RMSE vs linear interpolation on a clean periodic signal.
"""

import numpy as np

from repro.core import MultiCastConfig
from repro.evaluation import format_table
from repro.tasks import (
    detect_anomalies,
    detect_changepoints,
    impute,
    inject_point_anomalies,
    inject_regime_change,
    score_detections,
)


def _zscore_detector(series, threshold=3.5):
    """Baseline: global z-score rule."""
    z = np.abs((series - series.mean()) / (series.std() + 1e-12))
    return np.nonzero(z > threshold)[0]


def _rolling_mean_break_detector(series, window=20):
    """Baseline: largest rolling-mean jump."""
    scores = np.zeros(series.size)
    for t in range(window, series.size - window + 1):
        scores[t] = abs(
            series[t : t + window].mean() - series[t - window : t].mean()
        )
    return np.array([int(scores.argmax())])


def test_anomaly_detection_quality(benchmark, emit):
    def run():
        series = np.sin(2 * np.pi * np.arange(240) / 20.0)
        corrupted, truth = inject_point_anomalies(
            series, count=3, magnitude=5.0, seed=3, margin=20
        )
        ours = score_detections(
            detect_anomalies(corrupted, threshold_quantile=0.985), truth, tolerance=2
        )
        baseline = score_detections(
            _zscore_detector(corrupted), truth, tolerance=2
        )
        return [
            ["zero-shot NLL", ours.precision, ours.recall, ours.f1],
            ["z-score baseline", baseline.precision, baseline.recall, baseline.f1],
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "task_anomaly",
        format_table(["Detector", "Precision", "Recall", "F1"], rows,
                     title="Zero-shot anomaly detection on planted spikes"),
    )
    ours_f1 = rows[0][3]
    assert ours_f1 > 0.5


def test_changepoint_detection_quality(benchmark, emit):
    def run():
        series, break_at = inject_regime_change(110, 90, seed=4)
        ours = score_detections(
            detect_changepoints(series, window=20), [break_at], tolerance=5
        )
        baseline = score_detections(
            _rolling_mean_break_detector(series), [break_at], tolerance=5
        )
        return [
            ["zero-shot compression", ours.precision, ours.recall, ours.f1],
            ["rolling-mean baseline", baseline.precision, baseline.recall, baseline.f1],
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "task_changepoint",
        format_table(["Detector", "Precision", "Recall", "F1"], rows,
                     title="Zero-shot change-point detection on a regime break"),
    )
    assert rows[0][2] == 1.0  # the planted break is recalled


def test_imputation_quality(benchmark, emit):
    def run():
        t = np.arange(220.0)
        clean = np.sin(2 * np.pi * t / 20.0)
        mask = np.zeros(220, bool)
        mask[100:112] = True
        corrupted = clean.copy()
        corrupted[mask] = 0.0
        filled = impute(corrupted, mask, MultiCastConfig(num_samples=5, seed=0))
        ours = float(np.sqrt(np.mean((filled[mask] - clean[mask]) ** 2)))
        linear = np.interp(
            np.nonzero(mask)[0], [99, 112], [clean[99], clean[112]]
        )
        baseline = float(np.sqrt(np.mean((linear - clean[mask]) ** 2)))
        return [["zero-shot infill", ours], ["linear interpolation", baseline]]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "task_imputation",
        format_table(["Method", "Gap RMSE"], rows,
                     title="Zero-shot imputation of a 12-step gap (clean sine)"),
    )
    ours, baseline = rows[0][1], rows[1][1]
    # On a periodic signal the pattern-aware infill crushes interpolation.
    assert ours < 0.5 * baseline

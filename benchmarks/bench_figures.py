"""Figures 2-8 — forecast overlay charts.

Each bench regenerates one figure with the paper's default parameters,
renders the ASCII overlay to ``results/figure_N.txt``, writes the raw
series to ``results/figure_N.csv`` for external re-plotting, and asserts
the figure's qualitative claim.
"""

import numpy as np

from repro.experiments import (
    figure_2,
    figure_3,
    figure_4,
    figure_5,
    figure_6,
    figure_7,
    figure_8,
)


def _run(benchmark, emit, results_dir, figure_fn, name):
    figure = benchmark.pedantic(figure_fn, rounds=1, iterations=1)
    emit(name, figure.render())
    figure.save_csv(results_dir / f"{name}.csv")
    return figure


def test_figure_2(benchmark, emit, results_dir):
    """LLaMA2-sim tracks the series; Phi-2-sim is visibly offset (Fig. 2)."""
    figure = _run(benchmark, emit, results_dir, figure_2, "figure_2")
    assert figure.rmse_of("llama2-sim") < figure.rmse_of("phi2-sim")
    # The phi2 stand-in's bias shows as a mean offset, like the paper's
    # "entire output is shifted 1 to 2 units".
    phi_offset = float(np.mean(figure.forecasts["phi2-sim"] - figure.actual))
    llama_offset = float(np.mean(figure.forecasts["llama2-sim"] - figure.actual))
    assert abs(phi_offset) > abs(llama_offset)


def test_figure_3(benchmark, emit, results_dir):
    """MultiCast (DI) vs ARIMA on GasRate: both track the series (Fig. 3)."""
    figure = _run(benchmark, emit, results_dir, figure_3, "figure_3")
    spread = float(figure.actual.max() - figure.actual.min())
    assert figure.rmse_of("multicast-di") < spread
    assert figure.rmse_of("arima") < spread


def test_figure_4(benchmark, emit, results_dir):
    """MultiCast (VC) vs LSTM on HUFL (Fig. 4)."""
    figure = _run(benchmark, emit, results_dir, figure_4, "figure_4")
    spread = float(figure.actual.max() - figure.actual.min())
    assert figure.rmse_of("multicast-vc") < spread
    # MultiCast should reproduce the series' variance, the paper's point
    # against the LSTM's over-smoothed output.
    assert np.std(figure.forecasts["multicast-vc"]) > 0.2 * np.std(figure.actual)


def test_figure_5(benchmark, emit, results_dir):
    """MultiCast (VI) vs ARIMA on Tlog (Fig. 5)."""
    figure = _run(benchmark, emit, results_dir, figure_5, "figure_5")
    spread = float(figure.actual.max() - figure.actual.min())
    assert figure.rmse_of("multicast-vi") < 1.5 * spread
    assert figure.rmse_of("arima") < spread


def test_figure_6(benchmark, emit, results_dir):
    """SAX segment lengths 3/6/9 on CO2: piecewise-constant overlays (Fig. 6)."""
    figure = _run(benchmark, emit, results_dir, figure_6, "figure_6")
    for w in (3, 6, 9):
        forecast = figure.forecasts[f"sax-w{w}"]
        # A SAX forecast is piecewise constant with w-length segments: the
        # number of distinct consecutive values is bounded by ceil(h/w).
        changes = int(np.count_nonzero(np.diff(forecast)))
        assert changes <= -(-forecast.size // w), w


def test_figure_7(benchmark, emit, results_dir):
    """SAX alphabet sizes 5/10/20 on CO2 (Fig. 7)."""
    figure = _run(benchmark, emit, results_dir, figure_7, "figure_7")
    # Larger alphabets admit more distinct levels in the forecast.
    levels = {
        a: np.unique(np.round(figure.forecasts[f"sax-a{a}"], 6)).size
        for a in (5, 10, 20)
    }
    assert levels[5] <= 5 and levels[10] <= 10 and levels[20] <= 20


def test_figure_8(benchmark, emit, results_dir):
    """Digital SAX symbols on CO2: tracks the original closely (Fig. 8)."""
    figure = _run(benchmark, emit, results_dir, figure_8, "figure_8")
    spread = float(figure.actual.max() - figure.actual.min())
    assert figure.rmse_of("sax-digital") < spread

"""Serving-layer benches: pooled throughput and cache warm-up.

The substrate's in-context models are so fast on CPU that thread pooling
alone cannot show the serving engine's value (Python threads share one
interpreter).  The ``hosted-api-sim`` preset registered here flips on
``ModelSpec.realtime_scale``, so every draw sleeps in proportion to its
simulated token latency — exactly the profile of a remote inference API,
where the client thread idles while the provider decodes.  Against that
backend the engine's fan-out overlaps the waits and the content-addressed
cache removes them entirely.

Run standalone to (re)generate ``BENCH_serving.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_serving.py

or through pytest (``pytest benchmarks/bench_serving.py``), where the
acceptance thresholds — >=2x pooled throughput, >=10x warm-cache speedup —
are asserted.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core import ForecastSpec, MultiCastConfig, MultiCastForecaster
from repro.data import synthetic_multivariate
from repro.llm import ModelSpec, TokenCostModel, register_model
from repro.llm.ppm import PPMLanguageModel
from repro.serving import ForecastEngine, ForecastRequest

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

NUM_REQUESTS = 4
NUM_SAMPLES = 4
NUM_WORKERS = 4
HORIZON = 8


def _register_hosted_backend() -> str:
    """A remote-API stand-in: modest CPU work, latency dominated by sleeps."""
    register_model(
        ModelSpec(
            name="hosted-api-sim",
            factory=lambda v: PPMLanguageModel(v, max_order=3),
            cost=TokenCostModel(seconds_per_generated_token=0.5),
            realtime_scale=0.003,
            description="Hosted-API stand-in: per-token latency as real sleeps.",
        ),
        overwrite=True,
    )
    return "hosted-api-sim"


def _requests(model: str, use_cache: bool) -> list[ForecastRequest]:
    jobs = []
    for index in range(NUM_REQUESTS):
        history = synthetic_multivariate(n=160, num_dims=2, seed=index).values
        config = MultiCastConfig(num_samples=NUM_SAMPLES, model=model, seed=index)
        jobs.append(
            ForecastRequest(
                history,
                HORIZON,
                config=config,
                use_cache=use_cache,
                name=f"bench-{index}",
            )
        )
    return jobs


def measure_throughput() -> dict:
    """Sequential forecaster vs engine fan-out on the same request batch."""
    model = _register_hosted_backend()

    start = time.perf_counter()
    for request in _requests(model, use_cache=False):
        MultiCastForecaster().forecast(
            ForecastSpec.from_config(
                request.config, series=request.history, horizon=request.horizon,
                execution="sequential",  # the baseline the engine fans out
            )
        )
    sequential = time.perf_counter() - start

    with ForecastEngine(
        num_workers=NUM_WORKERS, max_concurrent_requests=2
    ) as engine:
        start = time.perf_counter()
        responses = engine.forecast_batch(_requests(model, use_cache=False))
        pooled = time.perf_counter() - start
    assert all(response.ok for response in responses)

    return {
        "num_requests": NUM_REQUESTS,
        "num_samples": NUM_SAMPLES,
        "num_workers": NUM_WORKERS,
        "horizon": HORIZON,
        "sequential_seconds": sequential,
        "pooled_seconds": pooled,
        "throughput_speedup": sequential / pooled,
    }


def measure_cache() -> dict:
    """Cold miss vs warm hit for an identical request."""
    model = _register_hosted_backend()
    with ForecastEngine(num_workers=NUM_WORKERS) as engine:
        request = _requests(model, use_cache=True)[0]

        start = time.perf_counter()
        cold_response = engine.forecast(request)
        cold = time.perf_counter() - start

        start = time.perf_counter()
        warm_response = engine.forecast(request)
        warm = time.perf_counter() - start
    assert not cold_response.cache_hit and warm_response.cache_hit

    return {
        "cold_seconds": cold,
        "warm_seconds": warm,
        "cache_speedup": cold / warm,
    }


def run() -> dict:
    report = {"throughput": measure_throughput(), "cache": measure_cache()}
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_serving_bench(emit):
    report = run()
    throughput, cache = report["throughput"], report["cache"]
    lines = [
        f"sequential     {throughput['sequential_seconds']:8.3f} s",
        f"pooled (x{NUM_WORKERS})     {throughput['pooled_seconds']:8.3f} s"
        f"   speedup {throughput['throughput_speedup']:5.2f}x",
        f"cold cache     {cache['cold_seconds']:8.3f} s",
        f"warm cache     {cache['warm_seconds']:8.3f} s"
        f"   speedup {cache['cache_speedup']:5.1f}x",
    ]
    emit("serving_throughput", "\n".join(lines))
    # Acceptance thresholds from the serving issue.
    assert throughput["throughput_speedup"] >= 2.0
    assert cache["cache_speedup"] >= 10.0


if __name__ == "__main__":
    print(json.dumps(run(), indent=2))
    print(f"wrote {BENCH_PATH}")

"""Continuous-scheduling bench: many-tenant throughput vs per-request runs.

One measurement, two serving strategies.  N concurrent tenants each submit
one forecast over the *same* history (different seeds — the draws differ,
the prompt does not).  The baseline serves them the pre-scheduler way: one
``execution="batched"`` forecast per request, each paying its own full
prompt ingest.  The continuous path submits all N to one
:class:`~repro.serving.ForecastEngine` with ``execution="continuous"`` —
requests share a single :class:`~repro.scheduling.ContinuousScheduler`
iteration loop, and the engine's :class:`~repro.scheduling.RadixPrefillTree`
turns every ingest after the first into an O(1) snapshot fork.

The workload is the regime the scheduler targets: a long history (ingest
dominates) and a short horizon, so cross-request prefix reuse — not decode
dedup — carries the win.  Every continuous response is asserted
byte-identical to its per-request baseline, so the curve measures pure
scheduling, never drift.

Run standalone to (re)generate ``BENCH_scheduler.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_scheduler.py

``--smoke`` runs one mid-size case (N=4), asserts continuous beats
per-request, and skips the JSON write — the CI entry point.  Through
pytest (``pytest benchmarks/bench_scheduler.py``) the full acceptance
threshold is asserted: >=2x throughput at N=16 concurrent specs.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import ForecastSpec, MultiCastForecaster
from repro.serving import ForecastEngine

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_scheduler.json"

PRESET = "llama2-7b-sim"  # the PPM substrate
HISTORY_LENGTH = 400  # long prompt: ingest dominates the per-request cost
HORIZON = 4  # short decode keeps the workload prefix-bound
NUM_SAMPLES = 2  # streams per request
TEMPERATURE = 0.3
CONCURRENCY = (1, 4, 16, 64)
MAX_RESIDENT_STREAMS = 64
REPEATS = 2  # best-of, to keep scheduler noise out of the ratios


def _history(n: int = HISTORY_LENGTH) -> np.ndarray:
    """A clean two-dimensional periodic series (period 12)."""
    t = np.arange(n)
    return np.column_stack(
        [np.sin(2 * np.pi * t / 12.0), np.cos(2 * np.pi * t / 12.0)]
    )


def _specs(concurrency: int) -> list[ForecastSpec]:
    """N tenants: identical history and knobs, per-tenant seeds."""
    return [
        ForecastSpec(
            series=_history(HISTORY_LENGTH),
            horizon=HORIZON,
            scheme="di",
            num_samples=NUM_SAMPLES,
            model=PRESET,
            temperature=TEMPERATURE,
            seed=1000 + index,
            execution="batched",
        )
        for index in range(concurrency)
    ]


def _baseline(specs: list[ForecastSpec]) -> tuple[float, list]:
    """Per-request batched serving: a cold forecaster per spec, in sequence."""
    start = time.perf_counter()
    results = [MultiCastForecaster().forecast(spec) for spec in specs]
    return time.perf_counter() - start, results


def _continuous(specs: list[ForecastSpec]) -> tuple[float, list, dict]:
    """All specs submitted at once to one shared continuous scheduler."""
    with ForecastEngine(
        num_workers=1,
        max_concurrent_requests=len(specs),
        max_resident_streams=MAX_RESIDENT_STREAMS,
    ) as engine:
        start = time.perf_counter()
        responses = engine.forecast_batch(
            [spec.replace(execution="continuous") for spec in specs]
        )
        seconds = time.perf_counter() - start
        snapshot = engine.metrics_snapshot()
    for response in responses:
        if not response.ok:
            raise AssertionError(f"continuous request failed: {response.error}")
    return seconds, responses, snapshot


def measure_concurrency(concurrency_levels=CONCURRENCY) -> dict:
    """End-to-end many-tenant wall time per strategy and concurrency level."""
    report: dict = {}
    for concurrency in concurrency_levels:
        specs = _specs(concurrency)
        baseline_seconds = float("inf")
        continuous_seconds = float("inf")
        snapshot: dict = {}
        for _ in range(REPEATS):
            seconds, references = _baseline(specs)
            baseline_seconds = min(baseline_seconds, seconds)
            seconds, responses, snapshot = _continuous(specs)
            continuous_seconds = min(continuous_seconds, seconds)
            for reference, response in zip(references, responses):
                result = response.output
                assert result.values.tobytes() == reference.values.tobytes()
                assert result.samples.tobytes() == reference.samples.tobytes()
        occupancies = [
            response.output.metadata["batch_occupancy"]
            for response in responses
        ]
        tree = snapshot["prefill_tree"]
        sched = snapshot["scheduler"]
        report[str(concurrency)] = {
            "requests": concurrency,
            "prompt_tokens": references[0].prompt_tokens,
            "generated_tokens": references[0].generated_tokens,
            "seconds": {
                "per_request_batched": baseline_seconds,
                "continuous": continuous_seconds,
            },
            "throughput_speedup": baseline_seconds / continuous_seconds,
            "mean_occupancy": float(
                np.mean([np.mean(curve) for curve in occupancies])
            ),
            "occupancy_curve": occupancies[0],
            "prefill_tree": {
                "hits": tree["hits"],
                "extends": tree["extends"],
                "misses": tree["misses"],
                "tokens_saved": tree["tokens_saved"],
            },
            "scheduler_steps": sched["steps"],
        }
    return report


def run() -> dict:
    report = {
        "workload": {
            "preset": PRESET,
            "history_length": HISTORY_LENGTH,
            "horizon": HORIZON,
            "num_samples": NUM_SAMPLES,
            "temperature": TEMPERATURE,
            "max_resident_streams": MAX_RESIDENT_STREAMS,
        },
        "concurrency": measure_concurrency(),
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def smoke() -> None:
    """CI entry point: one mid-size case, asserted, nothing written."""
    report = measure_concurrency(concurrency_levels=(4,))
    case = report["4"]
    seconds = case["seconds"]
    print(
        f"{PRESET} @ N=4: per-request {seconds['per_request_batched']:.3f}s, "
        f"continuous {seconds['continuous']:.3f}s, "
        f"speedup {case['throughput_speedup']:.2f}x, "
        f"tokens saved {case['prefill_tree']['tokens_saved']}"
    )
    assert case["throughput_speedup"] > 1.0, (
        "continuous scheduling must beat per-request batched serving"
    )


def test_scheduler_bench(emit):
    report = run()
    lines = [
        f"continuous scheduling on {PRESET} "
        f"(history {HISTORY_LENGTH}, horizon {HORIZON}, S={NUM_SAMPLES}):"
    ]
    for concurrency, case in report["concurrency"].items():
        seconds = case["seconds"]
        lines.append(
            f"  N={concurrency:>2}  per-request {seconds['per_request_batched']:7.3f} s  "
            f"continuous {seconds['continuous']:7.3f} s  "
            f"speedup {case['throughput_speedup']:5.2f}x  "
            f"saved {case['prefill_tree']['tokens_saved']:>6} tok  "
            f"occupancy {case['mean_occupancy']:5.2f}"
        )
    emit("scheduler", "\n".join(lines))
    case = report["concurrency"]["16"]
    # Acceptance threshold from the continuous-scheduling issue.
    assert case["throughput_speedup"] >= 2.0
    # Requests after the first fork the radix tree instead of re-ingesting.
    assert case["prefill_tree"]["misses"] == 1
    assert case["prefill_tree"]["hits"] == 15
    assert case["prefill_tree"]["tokens_saved"] >= 15 * case["prompt_tokens"]


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        smoke()
    else:
        print(json.dumps(run(), indent=2))
        print(f"wrote {BENCH_PATH}")

"""Table VI — forecasting RMSE on Weather (6 methods x 4 dimensions).

Paper values:

    MultiCast (DI)  3.711  2.43   3.025   6.888   LLMTIME  3.14   1.746  4.044  6.981
    MultiCast (VI)  3.26   2.122  2.387  11.352   ARIMA    3.324  2.686  4.331  6.067
    MultiCast (VC)  4.983  3.819  5.776   5.993   LSTM     3.524  1.796  2.708  5.559

Shapes asserted: the paper's takeaway that "the optimal multiplexing method
differs from dimension to dimension" holds among the LLM-based rows, and
MultiCast does not degrade with dimensionality (it stays within a bounded
factor of the per-dimension best everywhere).  Known deviation, recorded in
EXPERIMENTS.md: on this strongly *seasonal* dataset the LSTM wins every
dimension outright in our runs — seasonal extrapolation is exactly where
exact-suffix in-context induction (the PPM substrate) trails a real LLM's
soft pattern matching, so the absolute LLM-vs-classical gap is wider here
than in the paper.
"""

from repro.experiments import table_vi

LLM_ROWS = ("MultiCast (DI)", "MultiCast (VI)", "MultiCast (VC)", "LLMTIME")


def test_table_vi(benchmark, emit):
    table = benchmark.pedantic(table_vi, rounds=1, iterations=1)
    emit("table_vi", table.format())
    assert len(table.rows) == 6
    for row in table.rows:
        method = row[0]
        for dim_name, error in zip(("Tlog", "H2OC", "VPmax", "Tpot"), row[1:]):
            assert 0.2 < error < 20.0, (method, dim_name, error)
    # Among the LLM-based methods the per-dimension winner varies, the
    # paper's "optimal multiplexing method differs per dimension" takeaway.
    llm_rows = [row for row in table.rows if row[0] in LLM_ROWS]
    winners = {min(llm_rows, key=lambda r: r[column])[0] for column in range(1, 5)}
    assert len(winners) >= 2, f"expected varied LLM winners, got only {winners}"
    # No dimensionality collapse: best MultiCast stays within a bounded
    # factor of the overall best in every dimension.
    multicast_rows = [row for row in table.rows if row[0].startswith("MultiCast")]
    for column in range(1, 5):
        best_overall = min(row[column] for row in table.rows)
        best_multicast = min(row[column] for row in multicast_rows)
        assert best_multicast < 4.0 * best_overall, column

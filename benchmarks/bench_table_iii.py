"""Table III — LLM backend comparison (LLaMA2-sim vs Phi-2-sim).

Paper values (Gas Rate, MultiCast VI):

    MultiCast (LLaMA2 / 7B)   1.154   2.71
    MultiCast (Phi-2 / 2.7B)  2.106   4.676

Shape asserted: the LLaMA2 stand-in clearly beats the Phi-2 stand-in on
both dimensions, with a gap approaching the paper's ~2x.
"""

from repro.experiments import table_iii


def test_table_iii(benchmark, emit):
    table = benchmark.pedantic(table_iii, rounds=1, iterations=1)
    emit("table_iii", table.format())
    for dim in ("GasRate", "CO2"):
        llama = table.cell("MultiCast (LLaMA2 / 7B)", dim)
        phi = table.cell("MultiCast (Phi-2 / 2.7B)", dim)
        assert llama < phi, f"llama2-sim must beat phi2-sim on {dim}"
        assert phi / llama > 1.4, f"gap on {dim} should approach the paper's ~2x"

"""Beyond-paper bench: backend selection by in-context perplexity.

The paper selects its backend (Section IV-B) by running the full RMSE
comparison of Table III.  A far cheaper proxy is each model's in-context
perplexity on the history alone — no forecasting, no sampling.  This bench
shows the bits-per-token ranking agrees with the RMSE ranking for the two
backend presets, and records an honest negative result: the *uniform*
control model scores competitive bits-per-token on raw digit streams
(noisy low-order digits are genuinely uniform, and PPM's confident wrong
guesses there are penalised), so perplexity screening separates real
backends but must not include degenerate ones.
"""

from repro.data import gas_rate
from repro.evaluation import format_table
from repro.llm import bits_per_token, rank_models_by_perplexity


def test_model_selection_by_perplexity(benchmark, emit):
    def run():
        dataset = gas_rate()
        rows = []
        for name in ("llama2-7b-sim", "phi2-2.7b-sim", "ppm-recency-sim", "uniform-sim"):
            rows.append([
                name,
                bits_per_token(name, dataset.dimension("GasRate")),
                bits_per_token(name, dataset.dimension("CO2")),
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "model_selection_perplexity",
        format_table(
            ["Backend", "GasRate [bits/token]", "CO2 [bits/token]"],
            rows,
            title="Backend selection by in-context perplexity (Gas Rate)",
        ),
    )
    bits = {row[0]: (row[1], row[2]) for row in rows}
    # The cheap NLL probe reproduces Table III's ordering of the two
    # simulated backends on both dimensions.
    assert bits["llama2-7b-sim"][0] < bits["phi2-2.7b-sim"][0]
    assert bits["llama2-7b-sim"][1] < bits["phi2-2.7b-sim"][1]


def test_ranking_helper(benchmark):
    series = gas_rate().dimension("CO2")

    def run():
        return rank_models_by_perplexity(
            ["phi2-2.7b-sim", "llama2-7b-sim"], series
        )

    ranking = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ranking[0][0] == "llama2-7b-sim"

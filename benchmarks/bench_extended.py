"""Beyond-paper benches: extended method roster and paper-vs-measured reports."""

from repro.experiments import (
    PAPER_TABLE_IV,
    comparison_report,
    extended_accuracy_table,
    table_iv,
)
from repro.data import gas_rate


def test_extended_roster_gas_rate(benchmark, emit):
    """The full method roster (paper six + extensions) on Gas Rate."""
    from repro.experiments import EXTENDED_METHODS

    table = benchmark.pedantic(
        lambda: extended_accuracy_table(gas_rate()), rounds=1, iterations=1
    )
    emit("extended_gas_rate", table.format())
    assert len(table.rows) == len(EXTENDED_METHODS)
    errors = {row[0]: row[1] for row in table.rows}
    # The naive references anchor the table: every real method beats at
    # least one of them on the GasRate dimension.
    worst_reference = max(errors["naive"], errors["drift"])
    for method, error in errors.items():
        if method in ("naive", "drift"):
            continue
        assert error < worst_reference * 1.5, method


def test_paper_vs_measured_report(benchmark, emit):
    """Side-by-side table IV comparison from the structured paper values."""

    def run():
        measured = table_iv()
        return comparison_report(measured, PAPER_TABLE_IV, ["GasRate", "CO2"])

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("paper_vs_measured_table_iv", report)
    assert "paper" in report and "measured" in report

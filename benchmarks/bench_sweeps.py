"""Sweep-subsystem bench: trial throughput, resume cost, halving savings.

One MultiCast knob grid, three ways.  The same :class:`repro.sweeps.SweepSpec`
runs (a) in-process, (b) fanned out through a two-shard
:class:`~repro.sharding.ShardedEngine`, and (c) a second time with
``resume=True`` against the ledger the first run wrote — which must
re-execute zero trials and return the identical best configuration.  A
successive-halving variant of the same grid reports how many backtest
window evaluations early stopping saves over the flat sweep.

Run standalone to (re)generate ``BENCH_sweeps.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_sweeps.py

``--smoke`` runs a reduced grid and asserts the resume contract (zero
re-executed trials, identical best config, one ledger record per trial)
without writing JSON — the CI entry point.  Through pytest
(``pytest benchmarks/bench_sweeps.py``) the full report is generated and
the same contract asserted.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.sweeps import SweepRunner, SweepSpec

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweeps.json"

HISTORY_LENGTH = 48
HORIZON = 3
NUM_WINDOWS = 2
SEED = 0

#: The full bench grid: 3 * 3 * 2 * 2 = 36 trials.
FULL_SPACE = {
    "b": [1, 2, 3],
    "a": [3, 4, 5],
    "num_samples": [1, 2],
    "temperature": [0.7, 1.0],
}

#: The CI smoke grid: 2 * 2 = 4 trials.
SMOKE_SPACE = {"b": [1, 2], "a": [3, 4]}


def _series(n: int = HISTORY_LENGTH) -> np.ndarray:
    """A smooth two-dimensional random walk."""
    rng = np.random.default_rng(13)
    return np.cumsum(rng.normal(size=(n, 2)), axis=0) + 40.0


def _sweep(space, **overrides) -> SweepSpec:
    kwargs = dict(
        method="multicast-vi",
        space=space,
        horizon=HORIZON,
        num_windows=NUM_WINDOWS,
        seed=SEED,
        fixed={"model": "uniform-sim"},
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


def measure(space, *, shards: int = 2) -> dict:
    """Run the grid in-process, sharded, and resumed; check the contract."""
    from repro.sharding import ShardedEngine

    series = _series()
    sweep = _sweep(space)
    workdir = Path(tempfile.mkdtemp(prefix="bench_sweeps_"))
    ledger = workdir / "ledger.jsonl"

    start = time.perf_counter()
    local = SweepRunner(ledger=str(ledger)).run(sweep, series)
    local_seconds = time.perf_counter() - start

    start = time.perf_counter()
    with ShardedEngine(num_shards=shards) as engine:
        sharded = SweepRunner(
            engine, ledger=str(workdir / "sharded.jsonl")
        ).run(sweep, series)
    sharded_seconds = time.perf_counter() - start

    start = time.perf_counter()
    resumed = SweepRunner(ledger=str(ledger)).run(
        sweep, series, resume=True
    )
    resume_seconds = time.perf_counter() - start

    records = [
        json.loads(line) for line in ledger.read_text().splitlines()
    ]
    assert len(records) == sweep.total_trials, "one ledger record per trial"
    assert resumed.trials_run == 0, "resume must re-execute zero trials"
    assert resumed.best_index == local.best_index
    assert resumed.best_score == local.best_score
    assert sharded.best_index == local.best_index
    assert sharded.best_score == local.best_score

    halved = _sweep(space, num_windows=6, num_rungs=2, eta=3)
    halved_ledger = workdir / "halved.jsonl"
    SweepRunner(ledger=str(halved_ledger)).run(halved, series)
    halved_windows = sum(
        json.loads(line)["windows"]
        for line in halved_ledger.read_text().splitlines()
    )
    flat_windows = halved.total_trials * 6

    return {
        "trials": sweep.total_trials,
        "windows_per_trial": NUM_WINDOWS,
        "best_params": local.best_params,
        "best_score": local.best_score,
        "seconds": {
            "local": local_seconds,
            "sharded": sharded_seconds,
            "resume": resume_seconds,
        },
        "trials_per_second_local": sweep.total_trials / local_seconds,
        "resume_speedup_vs_local": local_seconds / resume_seconds,
        "halving": {
            "window_evaluations_flat": flat_windows,
            "window_evaluations_halved": halved_windows,
            "savings_fraction": 1.0 - halved_windows / flat_windows,
        },
    }


def run() -> dict:
    report = {
        "workload": {
            "method": "multicast-vi",
            "model": "uniform-sim",
            "history_length": HISTORY_LENGTH,
            "horizon": HORIZON,
            "num_windows": NUM_WINDOWS,
            "space": {k: list(v) for k, v in FULL_SPACE.items()},
        },
        "results": measure(FULL_SPACE),
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def smoke() -> None:
    """CI entry point: reduced grid, resume contract asserted, no JSON."""
    results = measure(SMOKE_SPACE)
    print(
        f"sweep smoke: {results['trials']} trials, "
        f"local {results['seconds']['local']:.2f}s, "
        f"sharded {results['seconds']['sharded']:.2f}s, "
        f"resume {results['seconds']['resume']:.3f}s "
        f"({results['resume_speedup_vs_local']:.1f}x), "
        f"halving saves "
        f"{results['halving']['savings_fraction']:.0%} of window evals"
    )
    assert results["resume_speedup_vs_local"] > 1.0, (
        "resuming a completed sweep must be faster than re-running it"
    )
    assert results["halving"]["savings_fraction"] > 0.0, (
        "successive halving must evaluate fewer windows than the flat sweep"
    )


def test_sweeps_bench(emit):
    report = run()
    results = report["results"]
    lines = [
        f"hyperparameter sweep over multicast-vi "
        f"({results['trials']} trials x {NUM_WINDOWS} windows, uniform-sim):",
        f"  local   {results['seconds']['local']:7.2f} s "
        f"({results['trials_per_second_local']:.1f} trials/s)",
        f"  sharded {results['seconds']['sharded']:7.2f} s (2 shards)",
        f"  resume  {results['seconds']['resume']:7.3f} s "
        f"({results['resume_speedup_vs_local']:.1f}x vs local)",
        f"  halving: {results['halving']['window_evaluations_halved']} "
        f"of {results['halving']['window_evaluations_flat']} window evals "
        f"({results['halving']['savings_fraction']:.0%} saved)",
        f"  best: {results['best_params']} "
        f"(rmse {results['best_score']:.4f})",
    ]
    emit("sweeps", "\n".join(lines))
    assert results["trials"] == 36


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        smoke()
    else:
        print(json.dumps(run(), indent=2))
        print(f"wrote {BENCH_PATH}")

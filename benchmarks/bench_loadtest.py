"""Gateway load-test bench: SLO behaviour of the async front door.

One harness (:func:`repro.loadtest.run_loadtest`), four regimes over a
synthetic ledger-shaped workload on the cheap ``uniform-sim`` model:

* **steady** — 10⁵ requests offered open-loop at a rate the in-process
  gateway sustains: deadline hit-rate should be ~1.0 and shed rate 0;
* **burst** — the same workload shape offered far faster than the engine
  can serve with a small ``max_pending``: the gateway must shed (typed
  ``Overloaded``, never a hang) while the admitted slice still meets
  its deadlines;
* **shards axis** — fixed-concurrency closed-loop throughput at
  0 (in-process), 1, 2 and 4 decode worker processes
  (:class:`~repro.sharding.ShardedEngine` behind the same gateway);
* **steady_sharded** — the 10⁵ steady section again at 4 shards,
  offered at 80% of the measured 4-shard closed-loop capacity.

Multi-process sharding only buys throughput when there are cores to run
the workers on; on a single-core host the IPC overhead makes it
strictly *slower* than in-process serving.  The bench therefore records
``cpu_count`` alongside every trajectory and only asserts the ≥2×
4-shard speedup when at least four cores are available — the recorded
numbers are measured, never extrapolated.

The workload repeats 50 distinct request shapes, so the run also
reports how much traffic the single-flight coalescer and the result
cache absorbed — the reason p50 sits far below a cold forecast.

Run standalone to (re)generate ``BENCH_loadtest.json`` at the repo
root::

    PYTHONPATH=src python benchmarks/bench_loadtest.py

``--smoke`` runs a small steady-state section and asserts **zero SLO
violations at trivial load** — the CI entry point; ``--smoke --shards 2``
runs the same section through a two-shard engine.  Through pytest
(``pytest benchmarks/bench_loadtest.py``) the full acceptance criteria
are asserted on the 10⁵-request steady case.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from repro.loadtest import LoadTestConfig, SLOThresholds, run_loadtest

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_loadtest.json"

MODEL = "uniform-sim"  # cheap substrate: the bench measures the gateway
REQUESTS = 100_000
DISTINCT = 50  # ~2000 arrivals per shape: real coalesce/cache pressure
RATE = 2000.0  # offered load for the steady open-loop case
DEADLINE = 2.0  # generous per-request deadline (seconds)
SHARD_AXIS = (0, 1, 2, 4)  # 0 = in-process baseline
STEADY_SLO = SLOThresholds(
    min_deadline_hit_rate=0.99, max_shed_rate=0.0, max_failed_rate=0.0
)


def _steady() -> dict:
    """10⁵ requests open-loop at a sustainable offered rate, in-process."""
    report = run_loadtest(
        LoadTestConfig(
            requests=REQUESTS,
            driver="open",
            rate=RATE,
            distinct=DISTINCT,
            model=MODEL,
            deadline_seconds=DEADLINE,
        )
    )
    return {"report": report.to_dict(), "violations": report.violations(STEADY_SLO)}


def _burst() -> dict:
    """Overload: tiny pending budget, effectively unbounded offered rate."""
    report = run_loadtest(
        LoadTestConfig(
            requests=2000,
            driver="open",
            rate=50_000.0,
            distinct=DISTINCT,
            model=MODEL,
            max_pending=8,
            use_result_cache=False,  # keep requests slow enough to pile up
            deadline_seconds=DEADLINE,
        )
    )
    return {"report": report.to_dict()}


def _closed(shards: int, requests: int = 3000) -> dict:
    """Sustainable throughput at fixed concurrency and ``shards`` workers."""
    report = run_loadtest(
        LoadTestConfig(
            requests=requests,
            driver="closed",
            concurrency=16,
            distinct=DISTINCT,
            model=MODEL,
            shards=shards,
        )
    )
    return {"report": report.to_dict()}


def _shards_axis() -> dict:
    """Closed-loop throughput across the shard axis, plus speedups."""
    axis = {str(shards): _closed(shards) for shards in SHARD_AXIS}
    single = axis["1"]["report"]["throughput_rps"]
    return {
        "axis": axis,
        "speedup_vs_one_shard": {
            str(shards): round(
                axis[str(shards)]["report"]["throughput_rps"] / single, 3
            )
            for shards in SHARD_AXIS
            if shards >= 1
        },
    }


def _steady_sharded(closed_capacity_rps: float) -> dict:
    """The 10⁵ steady section again, served by a four-shard engine.

    Offered at 80% of the shard count's *measured* closed-loop capacity,
    so the section is sustainable by construction wherever it runs —
    the throughput number, not the hit-rate, is what scales with cores.
    """
    rate = max(50.0, 0.8 * closed_capacity_rps)
    report = run_loadtest(
        LoadTestConfig(
            requests=REQUESTS,
            driver="open",
            rate=rate,
            distinct=DISTINCT,
            model=MODEL,
            deadline_seconds=DEADLINE,
            shards=4,
        )
    )
    return {
        "offered_rate_rps": round(rate, 1),
        "report": report.to_dict(),
        "violations": report.violations(STEADY_SLO),
    }


def run() -> dict:
    shards = _shards_axis()
    capacity_4 = shards["axis"]["4"]["report"]["throughput_rps"]
    report = {
        "workload": {
            "model": MODEL,
            "requests": REQUESTS,
            "distinct_shapes": DISTINCT,
            "offered_rate_rps": RATE,
            "deadline_seconds": DEADLINE,
            "cpu_count": os.cpu_count(),
        },
        "steady": _steady(),
        "burst": _burst(),
        "shards": shards,
        "steady_sharded": _steady_sharded(capacity_4),
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def smoke(shards: int = 0) -> None:
    """CI entry point: trivial load, zero SLO violations, nothing written."""
    report = run_loadtest(
        LoadTestConfig(
            requests=300,
            driver="open",
            rate=400.0,
            distinct=20,
            model=MODEL,
            deadline_seconds=DEADLINE,
            shards=shards,
        )
    )
    violations = report.violations(STEADY_SLO)
    print(report.summary())
    assert not violations, f"SLO violations at trivial load: {violations}"


def test_loadtest_bench(emit):
    report = run()
    steady = report["steady"]["report"]
    burst = report["burst"]["report"]
    axis = report["shards"]["axis"]
    sharded = report["steady_sharded"]["report"]
    emit(
        "loadtest",
        "\n".join(
            [
                f"gateway load test on {MODEL} "
                f"({REQUESTS} requests, {DISTINCT} shapes, "
                f"{report['workload']['cpu_count']} cores):",
                f"  steady @ {RATE:.0f} rps: "
                f"hit-rate {steady['deadline_hit_rate']:.4f}  "
                f"p50 {steady['latency_p50'] * 1e3:.2f} ms  "
                f"p99 {steady['latency_p99'] * 1e3:.2f} ms  "
                f"shed {steady['shed_rate']:.3f}  "
                f"coalesce {steady['coalesce_rate']:.3f}  "
                f"cached {steady['cache_hit_rate']:.3f}",
                f"  burst (max_pending=8): shed {burst['shed_rate']:.3f}  "
                f"admitted hit-rate {burst['deadline_hit_rate']:.4f}",
                "  closed (c=16) shards axis: "
                + "  ".join(
                    f"{shards}:{axis[str(shards)]['report']['throughput_rps']:.0f} rps"
                    for shards in SHARD_AXIS
                ),
                f"  steady @4 shards "
                f"(offered {report['steady_sharded']['offered_rate_rps']} rps): "
                f"{sharded['throughput_rps']:.0f} req/s  "
                f"hit-rate {sharded['deadline_hit_rate']:.4f}",
            ]
        ),
    )
    # Acceptance criteria: >= 10^5 steady requests, zero violations, shed
    # burst, absorbed repetition, and the full shard trajectory on record.
    assert steady["total"] >= REQUESTS
    assert not report["steady"]["violations"]
    assert burst["shed"] > 0
    assert steady["coalesce_rate"] + steady["cache_hit_rate"] > 0.5
    assert set(axis) == {str(shards) for shards in SHARD_AXIS}
    assert sharded["total"] >= REQUESTS
    # The >= 2x four-shard speedup needs four cores to exist; on smaller
    # hosts the trajectory is recorded but the claim is not asserted.
    if (os.cpu_count() or 1) >= 4:
        assert report["shards"]["speedup_vs_one_shard"]["4"] >= 2.0
        assert not report["steady_sharded"]["violations"]


if __name__ == "__main__":
    argv = sys.argv[1:]
    if "--smoke" in argv:
        num_shards = 0
        if "--shards" in argv:
            num_shards = int(argv[argv.index("--shards") + 1])
        smoke(shards=num_shards)
    else:
        print(json.dumps(run(), indent=2))
        print(f"wrote {BENCH_PATH}")

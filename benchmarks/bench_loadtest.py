"""Gateway load-test bench: SLO behaviour of the async front door.

One harness (:func:`repro.loadtest.run_loadtest`), three regimes over a
synthetic ledger-shaped workload on the cheap ``uniform-sim`` model:

* **steady** — 10⁴ requests offered open-loop at a rate the gateway
  sustains: deadline hit-rate should be ~1.0 and shed rate 0;
* **burst** — the same workload offered far faster than the engine can
  serve with a small ``max_pending``: the gateway must shed (typed
  ``Overloaded``, never a hang) while the admitted slice still meets
  its deadlines;
* **closed** — fixed-concurrency closed-loop, measuring sustainable
  throughput.

The workload repeats 50 distinct request shapes, so the run also
reports how much traffic the single-flight coalescer and the result
cache absorbed — the reason p50 sits far below a cold forecast.

Run standalone to (re)generate ``BENCH_loadtest.json`` at the repo
root::

    PYTHONPATH=src python benchmarks/bench_loadtest.py

``--smoke`` runs a small steady-state replay and asserts **zero SLO
violations at trivial load** — the CI entry point.  Through pytest
(``pytest benchmarks/bench_loadtest.py``) the full acceptance criteria
are asserted on the 10⁴-request steady case.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.loadtest import LoadTestConfig, SLOThresholds, run_loadtest

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_loadtest.json"

MODEL = "uniform-sim"  # cheap substrate: the bench measures the gateway
REQUESTS = 10_000
DISTINCT = 50  # ~200 arrivals per shape: real coalesce/cache pressure
RATE = 2000.0  # offered load for the steady open-loop case
DEADLINE = 2.0  # generous per-request deadline (seconds)
STEADY_SLO = SLOThresholds(
    min_deadline_hit_rate=0.99, max_shed_rate=0.0, max_failed_rate=0.0
)


def _steady() -> dict:
    """10⁴ requests open-loop at a sustainable offered rate."""
    report = run_loadtest(
        LoadTestConfig(
            requests=REQUESTS,
            driver="open",
            rate=RATE,
            distinct=DISTINCT,
            model=MODEL,
            deadline_seconds=DEADLINE,
        )
    )
    return {"report": report.to_dict(), "violations": report.violations(STEADY_SLO)}


def _burst() -> dict:
    """Overload: tiny pending budget, effectively unbounded offered rate."""
    report = run_loadtest(
        LoadTestConfig(
            requests=2000,
            driver="open",
            rate=50_000.0,
            distinct=DISTINCT,
            model=MODEL,
            max_pending=8,
            use_result_cache=False,  # keep requests slow enough to pile up
            deadline_seconds=DEADLINE,
        )
    )
    return {"report": report.to_dict()}


def _closed() -> dict:
    """Sustainable throughput at fixed concurrency."""
    report = run_loadtest(
        LoadTestConfig(
            requests=2000,
            driver="closed",
            concurrency=16,
            distinct=DISTINCT,
            model=MODEL,
        )
    )
    return {"report": report.to_dict()}


def run() -> dict:
    report = {
        "workload": {
            "model": MODEL,
            "requests": REQUESTS,
            "distinct_shapes": DISTINCT,
            "offered_rate_rps": RATE,
            "deadline_seconds": DEADLINE,
        },
        "steady": _steady(),
        "burst": _burst(),
        "closed": _closed(),
    }
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def smoke() -> None:
    """CI entry point: trivial load, zero SLO violations, nothing written."""
    report = run_loadtest(
        LoadTestConfig(
            requests=300,
            driver="open",
            rate=400.0,
            distinct=20,
            model=MODEL,
            deadline_seconds=DEADLINE,
        )
    )
    violations = report.violations(STEADY_SLO)
    print(report.summary())
    assert not violations, f"SLO violations at trivial load: {violations}"


def test_loadtest_bench(emit):
    report = run()
    steady = report["steady"]["report"]
    burst = report["burst"]["report"]
    closed = report["closed"]["report"]
    emit(
        "loadtest",
        "\n".join(
            [
                f"gateway load test on {MODEL} "
                f"({REQUESTS} requests, {DISTINCT} shapes):",
                f"  steady @ {RATE:.0f} rps: "
                f"hit-rate {steady['deadline_hit_rate']:.4f}  "
                f"p50 {steady['latency_p50'] * 1e3:.2f} ms  "
                f"p99 {steady['latency_p99'] * 1e3:.2f} ms  "
                f"shed {steady['shed_rate']:.3f}  "
                f"coalesce {steady['coalesce_rate']:.3f}  "
                f"cached {steady['cache_hit_rate']:.3f}",
                f"  burst (max_pending=8): shed {burst['shed_rate']:.3f}  "
                f"admitted hit-rate {burst['deadline_hit_rate']:.4f}",
                f"  closed (c=16): {closed['throughput_rps']:.0f} req/s  "
                f"p99 {closed['latency_p99'] * 1e3:.2f} ms",
            ]
        ),
    )
    # Acceptance criteria from the gateway issue: >= 10^4 replayed
    # requests reporting deadline hit-rate, p99, shed and coalesce rates.
    assert steady["total"] >= 10_000
    assert not report["steady"]["violations"]
    # Overload must shed at the door instead of queueing unboundedly.
    assert burst["shed"] > 0
    # Repeated shapes must be absorbed by coalescing and/or the cache.
    assert steady["coalesce_rate"] + steady["cache_hit_rate"] > 0.5


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        smoke()
    else:
        print(json.dumps(run(), indent=2))
        print(f"wrote {BENCH_PATH}")

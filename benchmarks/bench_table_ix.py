"""Table IX — increasing SAX alphabet size (Gas Rate, CO2 dimension).

Paper values (RMSE / seconds):

    MultiCast SAX (alphabetical)  0.983/77s  1.198/81s  1.273/83s
    MultiCast SAX (digital)       0.99/71s   1.21/75s   N/A
    MultiCast (raw)               0.781/1168s

Shapes asserted: execution time is essentially flat in the alphabet size
(the token count does not depend on it), RMSE does not improve with larger
alphabets (the paper sees it degrade), and digital SAX is N/A at size 20.
"""

from repro.experiments import table_ix


def test_table_ix(benchmark, emit):
    table = benchmark.pedantic(table_ix, rounds=1, iterations=1)
    emit("table_ix", table.format())
    seconds = [
        table.cell("MultiCast SAX (alphabetical) [sec]", a) for a in ("5", "10", "20")
    ]
    assert max(seconds) - min(seconds) <= 0.1 * max(seconds) + 1  # ~flat
    errors = [
        table.cell("MultiCast SAX (alphabetical)", a) for a in ("5", "10", "20")
    ]
    assert errors[0] <= max(errors[1], errors[2]) + 1e-9  # no gain from size
    assert table.cell("MultiCast SAX (digital)", "20") == "N/A"
    assert table.cell("MultiCast SAX (digital) [sec]", "20") == "N/A"
    raw_seconds = table.cell("MultiCast [sec]", "5")
    assert min(seconds) * 5 < raw_seconds

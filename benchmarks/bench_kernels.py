"""Micro-benchmarks of the pipeline kernels (statistical timing).

Unlike the table benches (single-shot full experiments), these measure the
hot inner pieces with pytest-benchmark's statistical machinery: multiplexer
round-trips, PPM prediction throughput, SAX encoding, and a single
constrained forecast.
"""

import numpy as np

from repro.core import ForecastSpec, MultiCastForecaster, get_multiplexer
from repro.data import gas_rate
from repro.encoding import DigitCodec
from repro.llm import PPMLanguageModel
from repro.sax import SaxAlphabet, SaxEncoder


def test_kernel_mux_roundtrip_di(benchmark):
    codes = np.random.default_rng(0).integers(0, 1000, size=(300, 4))
    codec = DigitCodec(3)
    mux = get_multiplexer("di")

    def run():
        return mux.demux(mux.mux(codes, codec), 4, codec)

    result = benchmark(run)
    assert np.array_equal(result, codes)


def test_kernel_ppm_ingest_and_predict(benchmark):
    rng = np.random.default_rng(1)
    context = rng.integers(0, 11, size=2000).tolist()

    def run():
        model = PPMLanguageModel(vocab_size=11, max_order=12)
        model.reset(context)
        return model.next_distribution()

    probs = benchmark(run)
    assert probs.sum() > 0.99


def test_kernel_ppm_generation_throughput(benchmark):
    rng = np.random.default_rng(2)
    context = (list(range(10)) + [10]) * 60

    def run():
        model = PPMLanguageModel(vocab_size=11, max_order=12)
        return model.generate(context, 200, np.random.default_rng(0))

    result = benchmark(run)
    assert len(result.tokens) == 200


def test_kernel_sax_encode(benchmark):
    x = np.sin(np.linspace(0, 40, 5000))
    encoder = SaxEncoder(6, SaxAlphabet.alphabetical(5)).fit(x)
    word = benchmark(encoder.encode, x)
    assert len(word) == encoder.segments_for(5000)


def test_kernel_single_forecast(benchmark):
    history, future = gas_rate().train_test_split()
    forecaster = MultiCastForecaster()
    spec = ForecastSpec(series=history, horizon=len(future),
                        scheme="di", num_samples=1)

    def run():
        return forecaster.forecast(spec)

    output = benchmark(run)
    assert output.values.shape == future.shape


def test_kernel_sax_forecast(benchmark):
    from repro.core import SaxConfig

    history, future = gas_rate().train_test_split()
    forecaster = MultiCastForecaster()
    spec = ForecastSpec(series=history, horizon=len(future),
                        scheme="di", num_samples=1, sax=SaxConfig())

    def run():
        return forecaster.forecast(spec)

    output = benchmark(run)
    assert output.values.shape == future.shape

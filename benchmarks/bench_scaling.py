"""Beyond-paper benches: dimensionality and context-length scaling studies."""

from repro.experiments import context_length_study, dimensionality_study


def test_dimensionality_study(benchmark, emit):
    """The Table V discussion, isolated: multiplexing burden vs d."""
    table = benchmark.pedantic(dimensionality_study, rounds=1, iterations=1)
    emit("scaling_dimensionality", table.format())
    # Contract: every cell finite; every method runs at every d.
    for row in table.rows:
        assert len(row) == 6
        assert all(v < 5.0 for v in row[1:]), row[0]


def test_context_length_study(benchmark, emit):
    table = benchmark.pedantic(context_length_study, rounds=1, iterations=1)
    emit("scaling_context_length", table.format())
    stationary = [row for row in table.rows if row[0].startswith("stationary")][0]
    trending_plain = [row for row in table.rows if row[0] == "trending, llama2-sim"][0]
    trending_recency = [
        row for row in table.rows if row[0] == "trending, recency-ppm"
    ][0]
    # Stationary: the longest context is the most accurate.
    assert stationary[-1] == min(stationary[1:])
    # Trending: plain PPM regresses with long context...
    assert trending_plain[-1] > trending_plain[1]
    # ...and recency weighting repairs most of that regression.
    assert trending_recency[-1] < trending_plain[-1]

"""Table I — dataset summary, plus generator throughput."""

from repro.data import gas_rate, load_paper_datasets
from repro.experiments import table_i


def test_table_i(benchmark, emit):
    """Regenerate Table I and check it against the paper's exact values."""
    table = benchmark.pedantic(table_i, rounds=1, iterations=1)
    emit("table_i", table.format())
    assert table.cell("gas_rate", "Length") == 296
    assert table.cell("electricity", "Length") == 242
    assert table.cell("weather", "Length") == 217


def test_dataset_generation_throughput(benchmark):
    """Generator speed — the substrate cost every experiment pays."""
    datasets = benchmark(load_paper_datasets)
    assert len(datasets) == 3


def test_gas_rate_generator(benchmark):
    dataset = benchmark(gas_rate)
    assert dataset.values.shape == (296, 2)

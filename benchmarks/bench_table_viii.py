"""Table VIII — increasing SAX segment length (Gas Rate, CO2 dimension).

Paper values (RMSE / seconds):

    MultiCast SAX (alphabetical)  1.089/148s  0.983/77s  0.888/54s
    MultiCast SAX (digital)       0.992/156s  0.99/71s   0.912/52s
    MultiCast (raw)               0.781/1168s

Shapes asserted: SAX is several-to-tens of times faster than raw MultiCast
(paper ratios 7.9x at w=3 to 22x at w=9), time falls as segments grow, and
quantization costs accuracy (SAX RMSE >= raw RMSE within tolerance).
"""

from repro.experiments import table_viii


def test_table_viii(benchmark, emit):
    table = benchmark.pedantic(table_viii, rounds=1, iterations=1)
    emit("table_viii", table.format())
    raw_seconds = table.cell("MultiCast [sec]", "3")
    raw_rmse = table.cell("MultiCast", "3")
    for kind in ("alphabetical", "digital"):
        seconds = [
            table.cell(f"MultiCast SAX ({kind}) [sec]", w) for w in ("3", "6", "9")
        ]
        assert seconds[0] > seconds[1] > seconds[2], kind
        assert seconds[0] * 5 < raw_seconds, kind      # >=5x at w=3 (paper 7.9x)
        assert seconds[2] * 10 < raw_seconds, kind     # >=10x at w=9 (paper 22x)
        for w in ("3", "6", "9"):
            error = table.cell(f"MultiCast SAX ({kind})", w)
            assert error > 0.8 * raw_rmse, (kind, w)   # quantization not free
            assert error < 5.0 * raw_rmse, (kind, w)   # but still usable

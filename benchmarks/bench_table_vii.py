"""Table VII — accuracy and execution time vs number of samples.

Paper values (Gas Rate, GasRate dimension; time under each RMSE):

    MultiCast (DI)  0.781/1036s   0.762/2050s   0.592/4159s
    MultiCast (VI)  0.965/1041s   1.302/2068s   0.877/4131s
    MultiCast (VC)  1.154/1168s   0.704/2468s   0.63/4981s
    LLMTIME         0.703/1023s   0.606/1939s   0.842/3684s

Shapes asserted: the time column doubles when the sample count doubles
(token arithmetic), and VC is the slowest MultiCast variant.  Known
deviation (EXPERIMENTS.md): exact token accounting puts DI/VI slightly
*below* LLMTime instead of ~1 % above.
"""

import pytest

from repro.experiments import table_vii


def test_table_vii(benchmark, emit):
    table = benchmark.pedantic(table_vii, rounds=1, iterations=1)
    emit("table_vii", table.format())
    for method in ("MultiCast (DI)", "MultiCast (VI)", "MultiCast (VC)", "LLMTIME"):
        t5 = table.cell(f"{method} [sec]", "5")
        t10 = table.cell(f"{method} [sec]", "10")
        t20 = table.cell(f"{method} [sec]", "20")
        assert t10 == pytest.approx(2 * t5, rel=0.05), method
        assert t20 == pytest.approx(4 * t5, rel=0.05), method
        # Magnitudes land in the paper's regime (~1000 s at 5 samples).
        assert 500 < t5 < 2500, (method, t5)
    assert table.cell("MultiCast (VC) [sec]", "5") > table.cell(
        "MultiCast (DI) [sec]", "5"
    )
    # All RMSE cells stay in the paper's neighbourhood.
    for method in ("MultiCast (DI)", "MultiCast (VI)", "MultiCast (VC)", "LLMTIME"):
        for count in ("5", "10", "20"):
            assert 0.2 < table.cell(method, count) < 3.0, (method, count)

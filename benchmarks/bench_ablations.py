"""Ablations of the design choices DESIGN.md calls out.

Not paper tables — these quantify the internal decisions of the pipeline:

* structured grammar constraint vs plain vocabulary mask + lenient repair;
* median vs mean vs trimmed-mean sample aggregation;
* PPM context order (the model-capacity knob behind the backend presets);
* fixed dimension order (VI) vs rotating order (BI extension);
* SAX reconstruction level: interval midpoint vs truncated-Gaussian mean;
* digit budget b (2/3/4 digits per value).
"""

import numpy as np

from repro.core import ForecastSpec, MultiCastConfig, MultiCastForecaster, SaxConfig
from repro.data import gas_rate
from repro.evaluation import format_table
from repro.llm import ModelSpec, PPMLanguageModel, TokenCostModel, register_model
from repro.metrics import rmse


def _gas_split():
    return gas_rate().train_test_split()


def _forecast_rmse(config: MultiCastConfig) -> tuple[float, float]:
    history, future = _gas_split()
    output = MultiCastForecaster().forecast(
        ForecastSpec.from_config(config, series=history, horizon=len(future))
    )
    return (
        rmse(future[:, 0], output.values[:, 0]),
        rmse(future[:, 1], output.values[:, 1]),
    )


def test_ablation_constraint(benchmark, emit):
    """Structured grammar vs plain [0-9,] mask with lenient parsing."""

    def run():
        rows = []
        for structured in (True, False):
            errors = _forecast_rmse(
                MultiCastConfig(
                    scheme="di", num_samples=5, structured_constraint=structured
                )
            )
            rows.append([
                "grammar" if structured else "vocabulary-mask + repair",
                *errors,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_constraint",
        format_table(["Constraint", "GasRate", "CO2"], rows,
                     title="Ablation: structured constraint"),
    )
    # Both must produce usable forecasts; the grammar never hurts structure.
    for row in rows:
        assert row[1] < 3.0 and row[2] < 9.0


def test_ablation_aggregation(benchmark, emit):
    """Median (paper) vs mean vs trimmed mean."""

    def run():
        rows = []
        for method in ("median", "mean", "trimmed_mean"):
            errors = _forecast_rmse(
                MultiCastConfig(scheme="di", num_samples=9, aggregation=method)
            )
            rows.append([method, *errors])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_aggregation",
        format_table(["Aggregation", "GasRate", "CO2"], rows,
                     title="Ablation: sample aggregation"),
    )
    errors = {row[0]: row[1] for row in rows}
    assert max(errors.values()) < 3.0


def test_ablation_ppm_order(benchmark, emit):
    """The model-capacity knob: deeper context helps until it saturates."""

    def run():
        rows = []
        for order in (0, 1, 2, 4, 8, 12, 16):
            name = f"ablation-ppm-{order}"
            register_model(
                ModelSpec(
                    name=name,
                    factory=lambda v, o=order: PPMLanguageModel(v, max_order=o),
                    temperature=1.0,
                    cost=TokenCostModel(0.5),
                ),
                overwrite=True,
            )
            errors = _forecast_rmse(
                MultiCastConfig(scheme="di", num_samples=5, model=name)
            )
            rows.append([order, *errors])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_ppm_order",
        format_table(["PPM order", "GasRate", "CO2"], rows,
                     title="Ablation: in-context model depth"),
    )
    shallow = np.mean([rows[0][1], rows[0][2]])
    deep = np.mean([rows[-1][1], rows[-1][2]])
    assert deep < shallow, "context depth should pay off on patterned data"


def test_ablation_dimension_order(benchmark, emit):
    """Fixed (VI) vs rotating (BI) dimension order in the stream."""

    def run():
        rows = []
        for scheme in ("vi", "bi"):
            errors = _forecast_rmse(MultiCastConfig(scheme=scheme, num_samples=5))
            rows.append([scheme.upper(), *errors])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_dimension_order",
        format_table(["Scheme", "GasRate", "CO2"], rows,
                     title="Ablation: dimension order (VI vs BI extension)"),
    )
    for row in rows:
        assert np.isfinite(row[1]) and np.isfinite(row[2])


def test_ablation_sax_reconstruction(benchmark, emit):
    """Interval midpoint vs truncated-Gaussian conditional mean."""

    def run():
        rows = []
        for mode in ("midpoint", "expected"):
            errors = _forecast_rmse(
                MultiCastConfig(
                    scheme="di",
                    num_samples=5,
                    sax=SaxConfig(reconstruction=mode),
                )
            )
            rows.append([mode, *errors])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_sax_reconstruction",
        format_table(["Reconstruction", "GasRate", "CO2"], rows,
                     title="Ablation: SAX symbol reconstruction level"),
    )
    for row in rows:
        assert row[1] < 4.0 and row[2] < 9.0


def test_ablation_digit_budget(benchmark, emit):
    """Digits per value: resolution vs tokens (and context reach)."""

    def run():
        rows = []
        history, future = _gas_split()
        for digits in (2, 3, 4):
            config = MultiCastConfig(scheme="di", num_samples=5, num_digits=digits)
            output = MultiCastForecaster().forecast(
                ForecastSpec.from_config(config, series=history, horizon=len(future))
            )
            rows.append([
                digits,
                rmse(future[:, 0], output.values[:, 0]),
                rmse(future[:, 1], output.values[:, 1]),
                output.generated_tokens,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_digit_budget",
        format_table(["Digits", "GasRate", "CO2", "Tokens"], rows,
                     title="Ablation: digit budget per value"),
    )
    tokens = [row[3] for row in rows]
    assert tokens[0] < tokens[1] < tokens[2], "token cost grows with digits"


def test_ablation_deseasonalize(benchmark, emit):
    """The seasonal-stripping extension on the weather dataset.

    Quantifies the Table VI deviation recorded in EXPERIMENTS.md: with the
    deterministic seasonal component handled classically, the in-context
    substrate forecasts weather at paper-comparable levels.
    """
    from repro.data import weather
    from repro.evaluation import evaluate_method

    def run():
        dataset = weather()
        rows = []
        for label, options in (
            ("paper pipeline", {}),
            ("deseasonalize=auto", {"deseasonalize": "auto"}),
        ):
            result = evaluate_method(
                "multicast-di", dataset, seed=0, num_samples=5, **options
            )
            rows.append([label, *(result.rmse_per_dim[n] for n in dataset.dim_names)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_deseasonalize",
        format_table(
            ["Pipeline", "Tlog", "H2OC", "VPmax", "Tpot"],
            rows,
            title="Ablation: classical seasonal stripping (weather)",
        ),
    )
    plain = np.mean(rows[0][1:])
    adjusted = np.mean(rows[1][1:])
    assert adjusted < 0.7 * plain


def test_ablation_backend_families(benchmark, emit):
    """PPM vs CTW vs recency-PPM vs n-gram as the in-context substrate."""

    def run():
        rows = []
        for name in ("llama2-7b-sim", "ctw-sim", "ppm-recency-sim", "ngram-sim"):
            errors = _forecast_rmse(
                MultiCastConfig(scheme="di", num_samples=5, model=name)
            )
            rows.append([name, *errors])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_backends",
        format_table(["Backend", "GasRate", "CO2"], rows,
                     title="Ablation: in-context model family"),
    )
    errors = {row[0]: (row[1], row[2]) for row in rows}
    # All principled substrates land in the same accuracy regime.
    for name, (gas, co2) in errors.items():
        assert gas < 3.0 and co2 < 6.0, name

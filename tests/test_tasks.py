"""Tests for the zero-shot task extensions (imputation, anomaly, changepoint)."""

import numpy as np
import pytest

from repro.core import MultiCastConfig
from repro.exceptions import DataError
from repro.tasks import (
    anomaly_scores,
    changepoint_scores,
    detect_anomalies,
    detect_changepoints,
    impute,
)
from repro.tasks.imputation import _missing_runs

FAST = MultiCastConfig(num_samples=3, seed=0)


def _sine(n=200, period=20.0, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    return np.sin(2 * np.pi * np.arange(n) / period) + noise * rng.normal(size=n)


class TestMissingRuns:
    def test_single_run(self):
        mask = np.array([False, True, True, False])
        assert _missing_runs(mask) == [(1, 3)]

    def test_multiple_runs(self):
        mask = np.array([True, False, True, True, False, True])
        assert _missing_runs(mask) == [(0, 1), (2, 4), (5, 6)]

    def test_no_runs(self):
        assert _missing_runs(np.zeros(4, bool)) == []

    def test_all_missing(self):
        assert _missing_runs(np.ones(3, bool)) == [(0, 3)]


class TestImpute:
    def test_clean_periodic_gap_recovered_near_exactly(self):
        x = _sine()
        mask = np.zeros(200, bool)
        mask[100:110] = True
        corrupted = x.copy()
        corrupted[mask] = 0.0
        filled = impute(corrupted, mask, MultiCastConfig(num_samples=5, seed=0))
        gap_rmse = float(np.sqrt(((filled[mask] - x[mask]) ** 2).mean()))
        mean_fill = float(np.sqrt(((x[mask] - x[~mask].mean()) ** 2).mean()))
        assert gap_rmse < 0.2 * mean_fill

    def test_observed_values_untouched(self):
        x = _sine(noise=0.05)
        mask = np.zeros(200, bool)
        mask[50:60] = True
        filled = impute(x, mask, FAST)
        assert np.array_equal(filled[~mask], x[~mask])

    def test_gap_at_series_start_uses_backward_pass_only(self):
        x = _sine()
        mask = np.zeros(200, bool)
        mask[:8] = True
        filled = impute(x, mask, FAST)
        assert np.isfinite(filled).all()
        assert np.abs(filled[:8]).max() < 2.0  # stays in signal range

    def test_gap_at_series_end_uses_forward_pass_only(self):
        x = _sine()
        mask = np.zeros(200, bool)
        mask[-8:] = True
        filled = impute(x, mask, FAST)
        assert np.isfinite(filled[-8:]).all()

    def test_multiple_gaps(self):
        x = _sine()
        mask = np.zeros(200, bool)
        mask[40:45] = True
        mask[120:130] = True
        filled = impute(x, mask, FAST)
        assert np.isfinite(filled).all()
        assert np.array_equal(filled[~mask], x[~mask])

    def test_no_gaps_returns_copy(self):
        x = _sine(50)
        filled = impute(x, np.zeros(50, bool), FAST)
        assert np.array_equal(filled, x)
        assert filled is not x

    def test_multivariate_with_shared_mask(self):
        x = np.stack([_sine(), 5.0 + _sine(period=10.0)], axis=1)
        mask = np.zeros(200, bool)
        mask[80:88] = True
        filled = impute(x, mask, FAST)
        assert filled.shape == x.shape
        assert np.array_equal(filled[~mask], x[~mask])

    def test_multivariate_with_per_dimension_mask(self):
        x = np.stack([_sine(), _sine(period=10.0)], axis=1)
        mask = np.zeros((200, 2), bool)
        mask[30:35, 0] = True  # only dimension 0 has a gap
        filled = impute(x, mask, FAST)
        assert np.array_equal(filled[:, 1], x[:, 1])

    def test_fully_missing_rejected(self):
        with pytest.raises(DataError):
            impute(np.zeros(10), np.ones(10, bool), FAST)

    def test_mask_shape_mismatch_rejected(self):
        with pytest.raises(DataError):
            impute(np.zeros(10), np.zeros(5, bool), FAST)

    def test_reproducible(self):
        x = _sine(noise=0.05)
        mask = np.zeros(200, bool)
        mask[90:96] = True
        a = impute(x, mask, MultiCastConfig(num_samples=3, seed=9))
        b = impute(x, mask, MultiCastConfig(num_samples=3, seed=9))
        assert np.array_equal(a, b)


class TestAnomaly:
    def test_injected_spike_scores_high(self):
        x = _sine(noise=0.03)
        x[150] += 3.0
        scores = anomaly_scores(x)
        assert scores[150] > np.quantile(scores[20:], 0.95)

    def test_detect_flags_the_spike(self):
        x = _sine(noise=0.03, seed=1)
        x[120] += 3.5
        hits = detect_anomalies(x, threshold_quantile=0.99)
        assert 120 in hits or 121 in hits

    def test_scores_shape(self):
        x = _sine(80)
        assert anomaly_scores(x).shape == (80,)

    def test_multivariate_takes_dimension_maximum(self):
        clean = _sine()
        spiked = _sine(period=10.0)
        spiked = spiked.copy()
        spiked[140] += 4.0
        multi = np.stack([clean, spiked], axis=1)
        scores = anomaly_scores(multi)
        uni = anomaly_scores(spiked)
        assert scores[140] >= uni[140] - 1e-9

    def test_warmup_excluded_from_detection(self):
        x = _sine()
        hits = detect_anomalies(x, threshold_quantile=0.9, warmup=10)
        assert (hits >= 10).all()

    def test_validation(self):
        with pytest.raises(DataError):
            anomaly_scores(np.ones(2))
        with pytest.raises(DataError):
            anomaly_scores(np.array([1.0, np.nan, 2.0, 3.0]))
        with pytest.raises(DataError):
            detect_anomalies(_sine(), threshold_quantile=1.5)
        with pytest.raises(DataError):
            detect_anomalies(_sine(50), warmup=50)


class TestChangepoint:
    def test_detects_a_regime_change(self):
        rng = np.random.default_rng(2)
        left = np.sin(2 * np.pi * np.arange(100) / 20.0)
        right = 2.5 + np.sin(2 * np.pi * np.arange(80) / 7.0)
        x = np.concatenate([left, right]) + 0.05 * rng.normal(size=180)
        hits = detect_changepoints(x, window=20)
        assert len(hits) >= 1
        assert any(abs(h - 100) <= 5 for h in hits)

    def test_stationary_series_scores_low_everywhere(self):
        x = _sine(noise=0.02, seed=3)
        scores = changepoint_scores(x, window=20)
        hits = detect_changepoints(x, window=20, threshold_quantile=0.999)
        # No hard assertion on zero hits (quantile always flags something
        # if threshold < max), but the score landscape should be flat-ish.
        active = scores[scores != 0.0]
        assert active.std() < 2.0
        assert len(hits) <= 2

    def test_min_separation_collapses_neighbouring_peaks(self):
        rng = np.random.default_rng(4)
        x = np.concatenate([np.zeros(60), np.ones(60) * 4.0]) + 0.05 * rng.normal(
            size=120
        )
        hits = detect_changepoints(x, window=15, min_separation=30)
        assert len(hits) <= 2

    def test_scores_zero_outside_valid_range(self):
        x = _sine(100)
        scores = changepoint_scores(x, window=20)
        assert np.allclose(scores[:20], 0.0)
        assert np.allclose(scores[81:], 0.0)

    def test_validation(self):
        with pytest.raises(DataError):
            changepoint_scores(np.zeros((10, 2)), window=4)
        with pytest.raises(DataError):
            changepoint_scores(_sine(30), window=20)
        with pytest.raises(DataError):
            changepoint_scores(_sine(100), window=2)
        with pytest.raises(DataError):
            detect_changepoints(_sine(100), window=20, threshold_quantile=0.0)

"""Tests for paper-values data, comparison reports, extended roster, CLI extras."""

import numpy as np
import pytest

from repro.cli import main
from repro.data import gas_rate
from repro.evaluation import TableResult
from repro.exceptions import DataError
from repro.experiments import (
    EXTENDED_METHODS,
    PAPER_TABLE_III,
    PAPER_TABLE_IV,
    PAPER_TABLE_V,
    PAPER_TABLE_VI,
    PAPER_TABLE_VII_SECONDS,
    PAPER_TABLE_VIII,
    PAPER_TABLE_IX,
    comparison_report,
    extended_accuracy_table,
)


class TestPaperValues:
    def test_table_iii_gap_is_about_2x(self):
        """The digitised numbers themselves carry the paper's claim."""
        llama = PAPER_TABLE_III["MultiCast (LLaMA2 / 7B)"]
        phi = PAPER_TABLE_III["MultiCast (Phi-2 / 2.7B)"]
        for dim in ("GasRate", "CO2"):
            assert 1.5 < phi[dim] / llama[dim] < 2.1

    def test_accuracy_tables_have_six_methods(self):
        for table in (PAPER_TABLE_IV, PAPER_TABLE_V, PAPER_TABLE_VI):
            assert len(table) == 6

    def test_table_vii_time_doubles_in_the_paper_too(self):
        for method, seconds in PAPER_TABLE_VII_SECONDS.items():
            assert seconds[10] == pytest.approx(2 * seconds[5], rel=0.25), method
            assert seconds[20] == pytest.approx(4 * seconds[5], rel=0.25), method

    def test_table_viii_speedup_ratios(self):
        raw_seconds = PAPER_TABLE_VIII["MultiCast"][1]
        for kind in ("alphabetical", "digital"):
            cells = PAPER_TABLE_VIII[f"MultiCast SAX ({kind})"]
            assert raw_seconds / cells[3][1] > 7.0
            assert raw_seconds / cells[9][1] > 20.0

    def test_table_ix_digital_na(self):
        assert PAPER_TABLE_IX["MultiCast SAX (digital)"][20] is None

    def test_comparison_report_renders(self):
        measured = TableResult("Table IV", "demo", ["Model", "GasRate", "CO2"])
        for label in PAPER_TABLE_IV:
            measured.add_row(label, 1.0, 2.0)
        report = comparison_report(measured, PAPER_TABLE_IV, ["GasRate", "CO2"])
        assert "GasRate (paper)" in report
        assert "GasRate (measured)" in report
        assert "ARIMA" in report

    def test_comparison_report_missing_row_raises(self):
        measured = TableResult("T", "demo", ["Model", "GasRate", "CO2"])
        measured.add_row("only-this", 1.0, 2.0)
        with pytest.raises(DataError):
            comparison_report(measured, PAPER_TABLE_IV, ["GasRate"])


class TestExtendedRoster:
    def test_method_list_superset_of_paper(self):
        for method in ("multicast-di", "llmtime", "arima", "lstm"):
            assert method in EXTENDED_METHODS
        for extension in ("holt-winters", "theta", "multicast-bi"):
            assert extension in EXTENDED_METHODS

    def test_subset_run(self):
        table = extended_accuracy_table(
            gas_rate(n=120),
            num_samples=2,
            methods=("naive", "drift", "theta"),
        )
        assert len(table.rows) == 3
        assert table.header[-1] == "time [s]"
        for row in table.rows:
            assert np.isfinite(row[1]) and np.isfinite(row[2])


class TestCliExtras:
    def test_plan_command(self, capsys):
        assert main(["plan", "--dataset", "gas_rate", "--num-samples", "3"]) == 0
        out = capsys.readouterr().out
        assert "prompt tokens" in out
        assert "simulated inference" in out

    def test_plan_with_sax_is_cheaper(self, capsys):
        main(["plan", "--num-samples", "5"])
        raw = capsys.readouterr().out
        main(["plan", "--num-samples", "5", "--sax-segment", "6"])
        sax = capsys.readouterr().out

        def total(text):
            line = [l for l in text.splitlines() if "billing total" in l][0]
            return int(line.split()[2])

        assert total(sax) * 5 < total(raw)

    def test_backtest_command(self, capsys):
        code = main([
            "backtest", "--dataset", "gas_rate", "--method", "theta",
            "--horizon", "15", "--windows", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "RMSE[GasRate]" in out
        assert "±" in out

    def test_backtest_too_many_windows_errors_cleanly(self, capsys):
        code = main([
            "backtest", "--dataset", "gas_rate", "--horizon", "100",
            "--windows", "5",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

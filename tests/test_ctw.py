"""Tests for the Context Tree Weighting language model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import GenerationError
from repro.llm import CTWLanguageModel, PPMLanguageModel
from repro.llm.ctw import _log_add, _Node


class TestLogAdd:
    def test_matches_numpy(self):
        for a, b in ((0.0, 0.0), (-1.0, -5.0), (-700.0, -700.0), (-3.0, -900.0)):
            assert _log_add(a, b) == pytest.approx(np.logaddexp(a, b))

    def test_commutative(self):
        assert _log_add(-2.0, -7.0) == pytest.approx(_log_add(-7.0, -2.0))


class TestKtEstimator:
    def test_fresh_node_is_uniform(self):
        node = _Node(4)
        assert node.kt_probability(0, 4) == pytest.approx(0.25)

    def test_counts_shift_the_estimate(self):
        node = _Node(2)
        node.counts[0] = 3
        node.total = 3
        # (3 + 1/2) / (3 + 1) = 0.875 — the classic binary KT value.
        assert node.kt_probability(0, 2) == pytest.approx(0.875)

    def test_sums_to_one(self):
        node = _Node(5)
        node.counts[:] = [2, 0, 1, 4, 0]
        node.total = 7
        total = sum(node.kt_probability(s, 5) for s in range(5))
        assert total == pytest.approx(1.0)


class TestCTW:
    def test_distribution_proper(self):
        model = CTWLanguageModel(vocab_size=7, depth=4)
        model.reset([1, 2, 3] * 15)
        probs = model.next_distribution()
        assert probs.sum() == pytest.approx(1.0)
        assert (probs > 0).all()

    def test_learns_a_cycle(self):
        model = CTWLanguageModel(vocab_size=5, depth=4)
        model.reset([0, 1, 2] * 20)
        assert model.next_distribution()[0] > 0.8

    def test_greedy_generation_continues_cycle(self):
        model = CTWLanguageModel(vocab_size=5, depth=4)
        result = model.generate(
            [0, 1, 2] * 15, 9, np.random.default_rng(0), temperature=0.0
        )
        assert result.tokens == [0, 1, 2] * 3

    def test_incremental_equals_batch(self):
        rng = np.random.default_rng(0)
        tokens = rng.integers(0, 4, size=80).tolist()
        incremental = CTWLanguageModel(4, depth=3)
        incremental.reset(tokens[:40])
        for t in tokens[40:]:
            incremental.advance(t)
        batch = CTWLanguageModel(4, depth=3)
        batch.reset(tokens)
        assert np.allclose(
            incremental.next_distribution(), batch.next_distribution()
        )

    def test_beats_ppm_code_length_on_noisy_structure(self):
        """CTW's Bayesian mixture out-compresses PPM's escape heuristic."""
        rng = np.random.default_rng(1)
        clean = [7, 3, 1, 10] * 80
        noise = rng.integers(0, 10, size=len(clean))
        stream = [
            int(c) if rng.random() > 0.1 else int(n)
            for c, n in zip(clean, noise)
        ]
        ctw = CTWLanguageModel(11, depth=6)
        ppm = PPMLanguageModel(11, max_order=6)
        ctw_bits = ctw.sequence_nll(stream[40:], stream[:40]).mean() / math.log(2)
        ppm_bits = ppm.sequence_nll(stream[40:], stream[:40]).mean() / math.log(2)
        assert ctw_bits < ppm_bits

    def test_beats_uniform_code_length_on_iid_skewed_data(self):
        """On memoryless skewed data CTW converges to the KT estimate."""
        rng = np.random.default_rng(2)
        stream = rng.choice(4, size=400, p=[0.7, 0.1, 0.1, 0.1]).tolist()
        model = CTWLanguageModel(4, depth=4)
        bits = model.sequence_nll(stream[100:], stream[:100]).mean() / math.log(2)
        assert bits < 2.0  # uniform costs log2(4) = 2 bits

    def test_mixing_weight_in_unit_interval(self):
        model = CTWLanguageModel(4, depth=3)
        model.reset([0, 1, 2, 3] * 10)
        assert 0.0 <= model._root.mixing_weight() <= 1.0

    def test_registered_preset_forecasts(self):
        from repro.core import ForecastSpec, MultiCastForecaster
        from repro.data import synthetic_multivariate

        history = synthetic_multivariate(n=90, num_dims=2, seed=0).values
        spec = ForecastSpec(series=history, horizon=6, model="ctw-sim", num_samples=2)
        output = MultiCastForecaster().forecast(spec)
        assert output.values.shape == (6, 2)
        assert np.isfinite(output.values).all()

    def test_invalid_args(self):
        with pytest.raises(GenerationError):
            CTWLanguageModel(vocab_size=4, depth=0)
        model = CTWLanguageModel(vocab_size=4, depth=2)
        model.reset([])
        with pytest.raises(GenerationError):
            model.advance(4)


@given(st.lists(st.integers(min_value=0, max_value=3), max_size=80))
@settings(max_examples=40, deadline=None)
def test_ctw_distribution_proper_property(context):
    model = CTWLanguageModel(vocab_size=4, depth=3)
    model.reset(context)
    probs = model.next_distribution()
    assert probs.sum() == pytest.approx(1.0, abs=1e-9)
    assert (probs > 0).all()


@given(st.lists(st.integers(min_value=0, max_value=2), min_size=4, max_size=50))
@settings(max_examples=30, deadline=None)
def test_ctw_sequence_probability_consistency_property(tokens):
    """Chain rule: the product of predictive probs equals exp(root log_pw).

    This pins the incremental bookkeeping to the definition of CTW: the
    weighted sequence probability at the root must equal the product of the
    one-step predictive probabilities actually served.
    """
    model = CTWLanguageModel(vocab_size=3, depth=2)
    model.reset([])
    log_prob = 0.0
    for token in tokens:
        probs = model.next_distribution()
        log_prob += math.log(probs[token])
        model.advance(token)
    assert log_prob == pytest.approx(model._root.log_pw, abs=1e-6)
